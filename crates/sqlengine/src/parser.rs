//! Recursive-descent parser producing [`crate::ast`] nodes.
//!
//! Operator precedence (loosest to tightest):
//! `OR` < `AND` < `NOT` < comparisons / `IS NULL` < `+ -` < `* /` <
//! unary `-` < `**` (right-associative, so `-x**2 = -(x**2)`, the
//! Teradata/Fortran rule the paper's generated SQL assumes).

use crate::ast::{
    BinOp, ColumnDef, Expr, InsertSource, OrderKey, Select, SelectItem, Statement, TableRef,
    UnaryOp,
};
use crate::error::{Error, Result};
use crate::lexer::{lex, Spanned, Token};
use crate::value::{DataType, Value};

/// Words that cannot be used as bare aliases or column names.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "by", "order", "insert", "into", "values", "update", "set",
    "delete", "create", "drop", "table", "primary", "key", "and", "or", "not", "null", "is",
    "case", "when", "then", "else", "end", "as", "having", "limit", "if", "exists", "asc", "desc",
    "distinct", "on", "join", "inner", "left", "right",
];

/// Parse a string of one or more `;`-separated statements.
pub fn parse(sql: &str) -> Result<Vec<Statement>> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    loop {
        while p.eat(&Token::Semicolon) {}
        if p.at_end() {
            break;
        }
        stmts.push(p.statement()?);
        if !p.at_end() && !p.check(&Token::Semicolon) {
            return Err(p.err("expected ';' between statements"));
        }
    }
    Ok(stmts)
}

/// Parse exactly one statement.
pub fn parse_one(sql: &str) -> Result<Statement> {
    let mut stmts = parse(sql)?;
    if stmts.len() > 1 {
        return Err(Error::Parse {
            pos: 0,
            message: format!("expected one statement, found {}", stmts.len()),
        });
    }
    stmts.pop().ok_or_else(|| Error::Parse {
        pos: 0,
        message: "empty statement".into(),
    })
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.tok)
    }

    fn cur_pos(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|s| s.pos)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            pos: self.cur_pos(),
            message: message.into(),
        }
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn check(&self, t: &Token) -> bool {
        self.peek() == Some(t)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.check(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    /// Is the current token the keyword `kw` (already lowercase)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw:?}, found {:?}", self.peek())))
        }
    }

    /// Consume an identifier that is not reserved.
    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(s)) if !RESERVED.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    // ----- statements -------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("create") {
            self.create_table()
        } else if self.eat_kw("drop") {
            self.drop_table()
        } else if self.eat_kw("insert") {
            self.insert()
        } else if self.eat_kw("update") {
            self.update()
        } else if self.eat_kw("delete") {
            self.delete()
        } else if self.at_kw("select") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_kw("explain") {
            let analyze = self.eat_kw("analyze");
            let inner = self.statement()?;
            Ok(if analyze {
                Statement::ExplainAnalyze(Box::new(inner))
            } else {
                Statement::Explain(Box::new(inner))
            })
        } else {
            Err(self.err("expected a statement keyword"))
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("table")?;
        let if_not_exists = if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.ident("table name")?;
        self.expect(&Token::LParen, "'('")?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.eat_kw("primary") {
                self.expect_kw("key")?;
                self.expect(&Token::LParen, "'('")?;
                loop {
                    primary_key.push(self.ident("primary key column")?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen, "')'")?;
            } else {
                let cname = self.ident("column name")?;
                let ty = self.data_type()?;
                // Inline `PRIMARY KEY` on a single column.
                if self.eat_kw("primary") {
                    self.expect_kw("key")?;
                    primary_key.push(cname.clone());
                }
                columns.push(ColumnDef { name: cname, ty });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(Statement::CreateTable {
            name,
            columns,
            primary_key,
            if_not_exists,
        })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let Some(Token::Ident(t)) = self.peek() else {
            return Err(self.err("expected a type name"));
        };
        let ty = match t.as_str() {
            "bigint" | "int" | "integer" => DataType::BigInt,
            "double" | "float" | "real" | "numeric" | "decimal" => DataType::Double,
            "varchar" | "char" | "text" => DataType::Varchar,
            other => return Err(self.err(format!("unknown type {other:?}"))),
        };
        self.pos += 1;
        // Optional PRECISION keyword / length parens: DOUBLE PRECISION,
        // VARCHAR(30), DECIMAL(10,2).
        self.eat_kw("precision");
        if self.eat(&Token::LParen) {
            while !self.eat(&Token::RParen) {
                if self.advance().is_none() {
                    return Err(self.err("unterminated type parameters"));
                }
            }
        }
        Ok(ty)
    }

    fn drop_table(&mut self) -> Result<Statement> {
        self.expect_kw("table")?;
        let if_exists = if self.eat_kw("if") {
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.ident("table name")?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident("table name")?;
        // Optional column list: distinguish `(c1, c2)` from `VALUES`/`SELECT`.
        let mut columns = None;
        if self.check(&Token::LParen) {
            // Lookahead: a column list is `( ident [, ident]* )` followed by
            // VALUES or SELECT.
            let save = self.pos;
            self.pos += 1;
            let mut cols = Vec::new();
            let ok = loop {
                match self.peek() {
                    Some(Token::Ident(s)) if !RESERVED.contains(&s.as_str()) => {
                        cols.push(s.clone());
                        self.pos += 1;
                        if self.eat(&Token::Comma) {
                            continue;
                        }
                        break self.eat(&Token::RParen);
                    }
                    _ => break false,
                }
            };
            if ok && (self.at_kw("values") || self.at_kw("select")) {
                columns = Some(cols);
            } else {
                self.pos = save;
            }
        }
        let source = if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen, "'('")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen, "')'")?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.at_kw("select") {
            InsertSource::Select(Box::new(self.select()?))
        } else {
            return Err(self.err("expected VALUES or SELECT after INSERT INTO"));
        };
        Ok(Statement::Insert {
            table,
            columns,
            source,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident("table name")?;
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                from.push(self.table_ref()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident("column name")?;
            self.expect(&Token::Eq, "'='")?;
            assignments.push((col, self.expr()?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            from,
            assignments,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("from")?;
        let table = self.ident("table name")?;
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident("table name")?;
        let alias = if self.eat_kw("as") {
            Some(self.ident("table alias")?)
        } else {
            match self.peek() {
                Some(Token::Ident(s)) if !RESERVED.contains(&s.as_str()) => {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(TableRef { table, alias })
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let mut items = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else if matches!(self.peek(), Some(Token::Ident(_)))
                && self.peek2() == Some(&Token::Dot)
                && self.tokens.get(self.pos + 2).map(|s| &s.tok) == Some(&Token::Star)
            {
                let t = match self.advance() {
                    Some(Token::Ident(t)) => t,
                    _ => return Err(self.err("expected table qualifier before '.*'")),
                };
                self.pos += 2; // consume `.` and `*`
                items.push(SelectItem::QualifiedWildcard(t));
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident("output alias")?)
                } else {
                    match self.peek() {
                        Some(Token::Ident(s)) if !RESERVED.contains(&s.as_str()) => {
                            let a = s.clone();
                            self.pos += 1;
                            Some(a)
                        }
                        _ => None,
                    }
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                from.push(self.table_ref()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.advance() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.err("expected a non-negative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(Select {
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    // ----- expressions ------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.add_sub()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Neq) => Some(BinOp::Neq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_sub()?;
            return Ok(Expr::bin(op, left, right));
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        Ok(left)
    }

    fn add_sub(&mut self) -> Result<Expr> {
        let mut left = self.mul_div()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_div()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn mul_div(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::bin(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            // Fold literal negation so `-0.5` is a literal, not an op.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Double(d)) => Expr::Literal(Value::Double(-d)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&Token::Plus) {
            return self.unary();
        }
        self.power()
    }

    fn power(&mut self) -> Result<Expr> {
        let base = self.primary()?;
        if self.eat(&Token::StarStar) {
            // Right-associative; exponent may itself be signed (`x**-2`).
            let exp = self.unary()?;
            return Ok(Expr::bin(BinOp::Pow, base, exp));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(Token::Number(x)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Double(x)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::from(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                match name.as_str() {
                    "null" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Null));
                    }
                    "case" => {
                        self.pos += 1;
                        return self.case_expr();
                    }
                    _ => {}
                }
                if RESERVED.contains(&name.as_str()) {
                    return Err(self.err(format!("unexpected keyword {name:?} in expression")));
                }
                self.pos += 1;
                // Function call?
                if self.check(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.eat(&Token::Star) {
                        // COUNT(*) — encoded as zero-arg count.
                        self.expect(&Token::RParen, "')'")?;
                        return Ok(Expr::Func { name, args });
                    }
                    if !self.check(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen, "')'")?;
                    return Ok(Expr::Func { name, args });
                }
                // Qualified column?
                if self.eat(&Token::Dot) {
                    let col = self.ident("column name")?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut whens = Vec::new();
        while self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let result = self.expr()?;
            whens.push((cond, result));
        }
        if whens.is_empty() {
            return Err(self.err("CASE requires at least one WHEN arm"));
        }
        let else_expr = if self.eat_kw("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(Expr::Case { whens, else_expr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table_with_compound_key() {
        let s =
            parse_one("CREATE TABLE Y (RID BIGINT, v BIGINT, val DOUBLE, PRIMARY KEY (RID, v))")
                .unwrap();
        match s {
            Statement::CreateTable {
                name,
                columns,
                primary_key,
                if_not_exists,
            } => {
                assert_eq!(name, "y");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[2].ty, DataType::Double);
                assert_eq!(primary_key, vec!["rid", "v"]);
                assert!(!if_not_exists);
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_inline_primary_key() {
        let s = parse_one("CREATE TABLE W (i BIGINT PRIMARY KEY, w DOUBLE)").unwrap();
        match s {
            Statement::CreateTable { primary_key, .. } => {
                assert_eq!(primary_key, vec!["i"]);
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_multi_row_values() {
        let s = parse_one("INSERT INTO W VALUES (1, 0.5), (2, 0.5)").unwrap();
        match s {
            Statement::Insert {
                source: InsertSource::Values(rows),
                ..
            } => assert_eq!(rows.len(), 2),
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_insert_select_with_group_by() {
        let sql = "INSERT INTO YD SELECT RID, C.i, sum((Y.val-C.val)**2/R.val) AS d \
                   FROM Y, C, R WHERE Y.v = C.v AND C.v = R.v GROUP BY RID, C.i";
        let s = parse_one(sql).unwrap();
        match s {
            Statement::Insert {
                table,
                source: InsertSource::Select(sel),
                ..
            } => {
                assert_eq!(table, "yd");
                assert_eq!(sel.from.len(), 3);
                assert_eq!(sel.group_by.len(), 2);
                assert!(sel.items.iter().any(|i| matches!(
                    i,
                    SelectItem::Expr { alias: Some(a), .. } if a == "d"
                )));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn power_binds_tighter_than_neg_and_is_right_assoc() {
        let e = match parse_one("SELECT -x**2").unwrap() {
            Statement::Select(s) => match &s.items[0] {
                SelectItem::Expr { expr, .. } => expr.clone(),
                _ => panic!(),
            },
            _ => panic!(),
        };
        assert_eq!(
            e,
            Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(Expr::bin(BinOp::Pow, Expr::col("x"), Expr::int(2))),
            }
        );
        let e2 = match parse_one("SELECT a**b**c").unwrap() {
            Statement::Select(s) => match &s.items[0] {
                SelectItem::Expr { expr, .. } => expr.clone(),
                _ => panic!(),
            },
            _ => panic!(),
        };
        assert_eq!(
            e2,
            Expr::bin(
                BinOp::Pow,
                Expr::col("a"),
                Expr::bin(BinOp::Pow, Expr::col("b"), Expr::col("c"))
            )
        );
    }

    #[test]
    fn negative_literal_folds() {
        let e = match parse_one("SELECT -0.5").unwrap() {
            Statement::Select(s) => match &s.items[0] {
                SelectItem::Expr { expr, .. } => expr.clone(),
                _ => panic!(),
            },
            _ => panic!(),
        };
        assert_eq!(e, Expr::num(-0.5));
    }

    #[test]
    fn parses_case_when_without_else() {
        let sql = "SELECT CASE WHEN sump > 0 THEN ln(sump) END FROM YP";
        let s = parse_one(sql).unwrap();
        match s {
            Statement::Select(sel) => match &sel.items[0] {
                SelectItem::Expr {
                    expr: Expr::Case { whens, else_expr },
                    ..
                } => {
                    assert_eq!(whens.len(), 1);
                    assert!(else_expr.is_none());
                }
                other => panic!("wrong item {other:?}"),
            },
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_update_from() {
        let sql = "UPDATE GMM FROM R SET detR = R.y1 * R.y2, sqrtdetR = detR ** 0.5";
        let s = parse_one(sql).unwrap();
        match s {
            Statement::Update {
                table,
                from,
                assignments,
                where_clause,
            } => {
                assert_eq!(table, "gmm");
                assert_eq!(from.len(), 1);
                assert_eq!(assignments.len(), 2);
                assert!(where_clause.is_none());
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_delete_where() {
        let s = parse_one("DELETE FROM YD WHERE RID < 100").unwrap();
        match s {
            Statement::Delete {
                table,
                where_clause,
            } => {
                assert_eq!(table, "yd");
                assert!(where_clause.is_some());
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn parses_drop_if_exists() {
        let s = parse_one("DROP TABLE IF EXISTS YD").unwrap();
        assert_eq!(
            s,
            Statement::DropTable {
                name: "yd".into(),
                if_exists: true
            }
        );
    }

    #[test]
    fn parses_count_star_and_order_limit() {
        let s = parse_one("SELECT i, count(*) FROM X GROUP BY i ORDER BY i DESC LIMIT 5").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.order_by.len(), 1);
                assert!(sel.order_by[0].desc);
                assert_eq!(sel.limit, Some(5));
                assert!(matches!(
                    &sel.items[1],
                    SelectItem::Expr {
                        expr: Expr::Func { name, args },
                        ..
                    } if name == "count" && args.is_empty()
                ));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn multiple_statements_split_on_semicolons() {
        let stmts = parse("DROP TABLE IF EXISTS a; SELECT 1; ;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn select_without_from() {
        let s = parse_one("SELECT 1 + 2 AS three").unwrap();
        match s {
            Statement::Select(sel) => assert!(sel.from.is_empty()),
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn insert_with_column_list() {
        let s = parse_one("INSERT INTO W (i, w) VALUES (1, 0.25)").unwrap();
        match s {
            Statement::Insert { columns, .. } => {
                assert_eq!(columns, Some(vec!["i".into(), "w".into()]));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn table_alias_forms() {
        let s = parse_one("SELECT a.x FROM Y AS a, Z b").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.from[0].visible_name(), "a");
                assert_eq!(sel.from[1].visible_name(), "b");
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn is_null_and_is_not_null() {
        let s = parse_one("SELECT x FROM t WHERE x IS NOT NULL AND y IS NULL").unwrap();
        match s {
            Statement::Select(sel) => {
                let w = sel.where_clause.unwrap();
                assert!(matches!(w, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("SELECT FROM").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }

    #[test]
    fn reserved_word_rejected_as_table() {
        assert!(parse("SELECT x FROM select").is_err());
    }

    #[test]
    fn parses_nested_function_calls() {
        let s = parse_one("SELECT exp(-0.5 * ln(abs(x))) FROM t").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(
                    &sel.items[0],
                    SelectItem::Expr {
                        expr: Expr::Func { name, .. },
                        ..
                    } if name == "exp"
                ));
            }
            other => panic!("wrong statement {other:?}"),
        }
    }
}

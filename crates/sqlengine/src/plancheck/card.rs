//! Symbolic cardinalities: multivariate polynomials in `(n, p, k)`.
//!
//! The static cost model of SQLEM (paper §3.3–§3.6) talks about table
//! sizes as closed-form functions of the data-set size `n`, the
//! dimensionality `p` and the cluster count `k`: the points table has
//! `n` rows, its vertical form `pn`, the distance table `kn`, the
//! squared-differences temporary `kpn`. [`Card`] represents exactly
//! these quantities — a polynomial with non-negative integer
//! coefficients over the three symbols — so the abstract interpreter
//! in the `interp` module can thread them through joins, `GROUP BY` and
//! DDL without ever fixing a concrete data-set size.

use std::collections::BTreeMap;
use std::fmt;

/// Exponents of one monomial `n^a · p^b · k^c`.
type Mono = (u32, u32, u32);

/// A cardinality: a polynomial in `(n, p, k)` with non-negative
/// `i128` coefficients, stored as a monomial → coefficient map.
///
/// The arithmetic mirrors what relational operators do to row counts:
/// [`Card::add`] for appends, [`Card::mul`] for cross products,
/// [`Card::div_exact`] for equi-join selectivity (`|A ⋈ B| =
/// |A|·|B| / max(d_A, d_B)`). All operations are exact — when a
/// division does not divide evenly the caller falls back to an upper
/// bound instead of inventing fractional rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Card {
    terms: BTreeMap<Mono, i128>,
}

impl Card {
    /// The zero cardinality (an empty table).
    pub fn zero() -> Card {
        Card {
            terms: BTreeMap::new(),
        }
    }

    /// A constant cardinality.
    pub fn constant(c: usize) -> Card {
        let mut terms = BTreeMap::new();
        if c > 0 {
            terms.insert((0, 0, 0), c as i128);
        }
        Card { terms }
    }

    /// The symbol `n` (data-set size).
    pub fn n() -> Card {
        Card::monomial(1, 1, 0, 0)
    }

    /// The symbol `p` (dimensionality).
    pub fn p() -> Card {
        Card::monomial(1, 0, 1, 0)
    }

    /// The symbol `k` (cluster count).
    pub fn k() -> Card {
        Card::monomial(1, 0, 0, 1)
    }

    /// A single monomial `coeff · n^a p^b k^c`.
    pub fn monomial(coeff: i128, a: u32, b: u32, c: u32) -> Card {
        let mut terms = BTreeMap::new();
        if coeff != 0 {
            terms.insert((a, b, c), coeff);
        }
        Card { terms }
    }

    /// Is this exactly zero?
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Sum of two cardinalities (e.g. consecutive INSERTs).
    pub fn add(&self, other: &Card) -> Card {
        let mut terms = self.terms.clone();
        for (m, c) in &other.terms {
            let e = terms.entry(*m).or_insert(0);
            *e += c;
            if *e == 0 {
                terms.remove(m);
            }
        }
        Card { terms }
    }

    /// Product of two cardinalities (cross join).
    pub fn mul(&self, other: &Card) -> Card {
        let mut terms: BTreeMap<Mono, i128> = BTreeMap::new();
        for ((a1, b1, c1), x) in &self.terms {
            for ((a2, b2, c2), y) in &other.terms {
                let m = (a1 + a2, b1 + b2, c1 + c2);
                let e = terms.entry(m).or_insert(0);
                *e += x * y;
                if *e == 0 {
                    terms.remove(&m);
                }
            }
        }
        Card { terms }
    }

    /// Exact division by a single-monomial divisor. Returns `None` when
    /// the divisor has several terms, is zero, or does not divide every
    /// term of `self` evenly — the join-cardinality caller then keeps
    /// the undivided upper bound.
    pub fn div_exact(&self, divisor: &Card) -> Option<Card> {
        if divisor.terms.len() != 1 {
            return None;
        }
        let ((da, db, dc), dcoeff) = divisor.terms.iter().next().map(|(m, c)| (*m, *c))?;
        let mut terms = BTreeMap::new();
        for ((a, b, c), coeff) in &self.terms {
            if a < &da || b < &db || c < &dc || coeff % dcoeff != 0 {
                return None;
            }
            terms.insert((a - da, b - db, c - dc), coeff / dcoeff);
        }
        Some(Card { terms })
    }

    /// Evaluate at concrete `(n, p, k)`.
    pub fn eval(&self, n: usize, p: usize, k: usize) -> u128 {
        let mut total: i128 = 0;
        for ((a, b, c), coeff) in &self.terms {
            let m = (n as i128).pow(*a) * (p as i128).pow(*b) * (k as i128).pow(*c);
            total += coeff * m;
        }
        total.max(0) as u128
    }

    /// Substitute concrete `p` and `k`, leaving `n` symbolic: returns
    /// the coefficients of the resulting univariate polynomial in `n`,
    /// index `i` holding the coefficient of `n^i`. This is the form the
    /// scan classifier works on — generated scripts fix `p` and `k` at
    /// generation time while `n` stays a free symbol.
    pub fn poly_in_n(&self, p: usize, k: usize) -> Vec<i128> {
        let mut coeffs: Vec<i128> = Vec::new();
        for ((a, b, c), coeff) in &self.terms {
            let idx = *a as usize;
            if coeffs.len() <= idx {
                coeffs.resize(idx + 1, 0);
            }
            coeffs[idx] += coeff * (p as i128).pow(*b) * (k as i128).pow(*c);
        }
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        coeffs
    }

    /// Total ordering for symbolic min/max, valid in the large-`n`
    /// regime the cost model lives in (`n ≫ p, k ≥ 1`): compare by
    /// evaluating at a generic point with a huge `n` and distinct prime
    /// `p`, `k`. Two different polynomials arising from row counts
    /// cannot collide at this point in practice; exact ties compare
    /// equal, which is all min/max needs.
    fn order_key(&self) -> u128 {
        self.eval(1 << 40, 1009, 1013)
    }

    /// Symbolic maximum of two cardinalities under the large-`n` order.
    pub fn max(&self, other: &Card) -> Card {
        if self.order_key() >= other.order_key() {
            self.clone()
        } else {
            other.clone()
        }
    }

    /// Symbolic minimum of two cardinalities under the large-`n` order.
    pub fn min(&self, other: &Card) -> Card {
        if self.order_key() <= other.order_key() {
            self.clone()
        } else {
            other.clone()
        }
    }
}

impl fmt::Display for Card {
    /// Canonical compact rendering: monomials in descending `(n, p, k)`
    /// exponent order, variables written `n`, `p`, `k` with `^e` for
    /// exponents above one — `kpn`, `2kn`, `n + 3`, `0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        let mut first = true;
        for ((a, b, c), coeff) in self.terms.iter().rev() {
            if !first {
                f.write_str(" + ")?;
            }
            first = false;
            let vars = (*a, *b, *c) != (0, 0, 0);
            if *coeff != 1 || !vars {
                write!(f, "{coeff}")?;
            }
            for (sym, e) in [("k", c), ("p", b), ("n", a)] {
                match e {
                    0 => {}
                    1 => f.write_str(sym)?,
                    _ => write!(f, "{sym}^{e}")?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_matches_evaluation() {
        let pn = Card::p().mul(&Card::n());
        let kn = Card::k().mul(&Card::n());
        assert_eq!(pn.eval(100, 4, 3), 400);
        assert_eq!(pn.add(&kn).eval(100, 4, 3), 700);
        assert_eq!(pn.mul(&Card::k()).eval(10, 2, 3), 60);
    }

    #[test]
    fn exact_division_of_join_cardinalities() {
        // |Y ⋈ CR on v| = pn·p / p = pn.
        let num = Card::p().mul(&Card::n()).mul(&Card::p());
        let q = num.div_exact(&Card::p()).unwrap();
        assert_eq!(q, Card::p().mul(&Card::n()));
        // kn·kn / (n·k) = kn, done in two steps.
        let num = Card::k().mul(&Card::n()).mul(&Card::k()).mul(&Card::n());
        let q = num.div_exact(&Card::n()).unwrap().div_exact(&Card::k());
        assert_eq!(q, Some(Card::k().mul(&Card::n())));
        // Non-exact division is refused.
        assert_eq!(Card::n().div_exact(&Card::p()), None);
        assert_eq!(
            Card::n().add(&Card::p()).div_exact(&Card::constant(2)),
            None
        );
    }

    #[test]
    fn poly_in_n_substitutes_p_and_k() {
        let kpn = Card::k().mul(&Card::p()).mul(&Card::n());
        assert_eq!(kpn.poly_in_n(4, 3), vec![0, 12]);
        assert_eq!(Card::n().poly_in_n(4, 3), vec![0, 1]);
        assert_eq!(Card::k().mul(&Card::p()).poly_in_n(4, 3), vec![12]);
        assert_eq!(Card::zero().poly_in_n(4, 3), Vec::<i128>::new());
    }

    #[test]
    fn symbolic_min_max_prefers_higher_degree() {
        let n = Card::n();
        let pn = Card::p().mul(&Card::n());
        assert_eq!(n.max(&pn), pn);
        assert_eq!(n.min(&pn), n);
        assert_eq!(n.max(&n), n);
        assert_eq!(Card::p().max(&Card::constant(1)), Card::p());
    }

    #[test]
    fn display_is_compact_and_ordered() {
        assert_eq!(Card::zero().to_string(), "0");
        assert_eq!(Card::constant(7).to_string(), "7");
        assert_eq!(Card::n().to_string(), "n");
        assert_eq!(Card::p().mul(&Card::n()).to_string(), "pn");
        assert_eq!(Card::k().mul(&Card::p()).mul(&Card::n()).to_string(), "kpn");
        let two_kn = Card::constant(2).mul(&Card::k()).mul(&Card::n());
        assert_eq!(two_kn.to_string(), "2kn");
        assert_eq!(Card::n().add(&Card::constant(3)).to_string(), "n + 3");
        assert_eq!(Card::n().mul(&Card::n()).to_string(), "n^2");
    }
}

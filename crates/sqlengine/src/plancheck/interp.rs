//! The abstract interpreter: symbolic row counts threaded through DML.
//!
//! [`SymState`] holds, for every live table, a symbolic row count
//! ([`Card`]) and per-column distinct-value counts. Applying a
//! statement produces a [`StmtEffect`]: the driver scans the engine
//! will perform (the quantity SQLEM's §3 cost model counts) and the
//! statement's output cardinality, while the state is updated exactly
//! the way the executor would update the stored tables:
//!
//! * `CREATE TABLE` → an empty table; `DROP TABLE` → gone;
//! * `INSERT … VALUES` → rows grow by the literal row count;
//! * `INSERT … SELECT` → one driver scan of the first FROM table
//!   (the engine's left-deep hash-join pipeline streams `from[0]` and
//!   builds hash tables over the rest — see `exec::select`), rows grow
//!   by the derived SELECT cardinality;
//! * `UPDATE` → one driver scan of the target, row count unchanged,
//!   distinct info for assigned columns discarded;
//! * `DELETE` (no WHERE) → one driver scan, row count drops to zero.
//!
//! Join cardinalities use the textbook equi-join estimate
//! `|A ⋈ B| = |A|·|B| / max(d_A(c), d_B(c))`, which is *exact* for the
//! foreign-key-style joins the SQLEM generators emit (every `RID`
//! matches, every dimension index matches). Divisions that do not come
//! out even fall back to the undivided upper bound rather than
//! fabricating fractional rows.

use std::collections::{BTreeMap, BTreeSet};

use crate::analyze::{SchemaProvider, SymbolicCatalog};
use crate::ast::{BinOp, Expr, InsertSource, Select, SelectItem, Statement};
use crate::resource::{row_width_bytes, AGG_STATE_BYTES, ENTRY_OVERHEAD_BYTES};

use super::card::Card;

/// Symbolic per-table facts: row count and per-column distinct counts.
#[derive(Debug, Clone, PartialEq)]
pub struct TableCard {
    /// Symbolic row count.
    pub rows: Card,
    /// Distinct-value count per column; columns without an entry
    /// default to the row count (exact for primary keys, an upper
    /// bound otherwise).
    pub distinct: BTreeMap<String, Card>,
    /// For columns fed exclusively by literal values so far: the exact
    /// value set, so repeated literals across statements (chunked
    /// `VALUES` inserts, per-cluster `SELECT {j}, …` appends) are not
    /// double-counted. Dropped the moment a non-literal append touches
    /// the column.
    lit_values: BTreeMap<String, BTreeSet<String>>,
}

impl TableCard {
    fn empty() -> TableCard {
        TableCard {
            rows: Card::zero(),
            distinct: BTreeMap::new(),
            lit_values: BTreeMap::new(),
        }
    }

    /// Distinct count of `column`, defaulting to the row count.
    pub fn distinct_of(&self, column: &str) -> Card {
        self.distinct
            .get(column)
            .cloned()
            .unwrap_or_else(|| self.rows.clone())
    }
}

/// What applying one statement does, besides updating the state.
#[derive(Debug, Clone, Default)]
pub struct StmtEffect {
    /// Driver scans `(table, symbolic rows)` — the non-build scans the
    /// engine's telemetry records for this statement.
    pub scans: Vec<(String, Card)>,
    /// Rows the statement produces (SELECT output / INSERT row count).
    pub output_rows: Option<Card>,
}

/// How a projected column's distinct count combines when the same
/// INSERT target receives several appends.
#[derive(Debug, Clone)]
enum ItemDistinct {
    /// A constant expression: one distinct value per statement. While
    /// every append to the column is literal, the exact value set is
    /// tracked in [`TableCard::lit_values`] (the
    /// `INSERT INTO c SELECT {j}, …` pattern, and chunked `VALUES`
    /// inserts whose values repeat across chunks); when the set is
    /// unavailable the merge falls back to sum.
    Literal,
    /// A plain column reference: the same source produces the same
    /// value set on every append (the score step's `X` pivots) — merge
    /// by max.
    Column(Card),
    /// Anything else: bounded only by the output row count.
    Other,
}

/// Symbolic table state for one script interpretation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymState {
    tables: BTreeMap<String, TableCard>,
}

impl SymState {
    /// Empty state.
    pub fn new() -> SymState {
        SymState::default()
    }

    /// Declare externally loaded contents for `table` (the bulk load
    /// the driver performs outside the generated script).
    pub fn load(&mut self, table: &str, rows: Card, distinct: &[(String, Card)]) {
        let entry = self
            .tables
            .entry(table.to_ascii_lowercase())
            .or_insert_with(TableCard::empty);
        entry.rows = rows;
        entry.distinct = distinct
            .iter()
            .map(|(c, d)| (c.to_ascii_lowercase(), d.clone()))
            .collect();
        entry.lit_values.clear();
    }

    /// Current facts about `table`, if it exists.
    pub fn table(&self, table: &str) -> Option<&TableCard> {
        self.tables.get(&table.to_ascii_lowercase())
    }

    /// Apply `stmt` to the state. `catalog` must reflect the symbolic
    /// schemas *after* this statement's DDL effect (the caller runs
    /// [`SymbolicCatalog::apply`] first); only schema lookups are done
    /// through it, never row counts.
    pub fn apply(&mut self, stmt: &Statement, catalog: &SymbolicCatalog) -> StmtEffect {
        let mut effect = StmtEffect::default();
        match stmt {
            Statement::CreateTable {
                name,
                if_not_exists,
                ..
            } => {
                let lname = name.to_ascii_lowercase();
                if !(*if_not_exists && self.tables.contains_key(&lname)) {
                    self.tables.insert(lname, TableCard::empty());
                }
            }
            Statement::DropTable { name, .. } => {
                self.tables.remove(&name.to_ascii_lowercase());
            }
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                let lname = table.to_ascii_lowercase();
                let dest: Vec<String> = match columns {
                    Some(cols) => cols.iter().map(|c| c.to_ascii_lowercase()).collect(),
                    None => catalog
                        .table_schema(&lname)
                        .map(|s| s.columns().iter().map(|c| c.name.clone()).collect())
                        .unwrap_or_default(),
                };
                match source {
                    InsertSource::Values(rows) => {
                        let added = Card::constant(rows.len());
                        let mut items = Vec::with_capacity(dest.len());
                        for (i, _) in dest.iter().enumerate() {
                            let mut uniq: Vec<&Expr> = Vec::new();
                            let mut lits: Option<BTreeSet<String>> = Some(BTreeSet::new());
                            for row in rows {
                                if let Some(e) = row.get(i) {
                                    if !uniq.contains(&e) {
                                        uniq.push(e);
                                    }
                                    match e {
                                        Expr::Literal(v) => {
                                            if let Some(set) = lits.as_mut() {
                                                set.insert(format!("{v:?}"));
                                            }
                                        }
                                        _ => lits = None,
                                    }
                                }
                            }
                            items.push((ItemDistinct::Literal, Card::constant(uniq.len()), lits));
                        }
                        self.append(&lname, &dest, added, &items);
                        effect.output_rows = Some(Card::constant(rows.len()));
                    }
                    InsertSource::Select(sel) => {
                        let d = self.derive_select(sel, catalog);
                        effect.scans = d.scans;
                        let items: Vec<(ItemDistinct, Card, Option<BTreeSet<String>>)> = d
                            .item_distinct
                            .iter()
                            .zip(&d.item_lits)
                            .map(|(i, lit)| {
                                let card = match i {
                                    ItemDistinct::Literal => Card::constant(1).min(&d.out_rows),
                                    ItemDistinct::Column(c) => c.min(&d.out_rows),
                                    ItemDistinct::Other => d.out_rows.clone(),
                                };
                                let set = lit.as_ref().map(|s| BTreeSet::from([s.clone()]));
                                (i.clone(), card, set)
                            })
                            .collect();
                        self.append(&lname, &dest, d.out_rows.clone(), &items);
                        effect.output_rows = Some(d.out_rows);
                    }
                }
            }
            Statement::Update {
                table, assignments, ..
            } => {
                let lname = table.to_ascii_lowercase();
                let rows = self
                    .tables
                    .get(&lname)
                    .map(|t| t.rows.clone())
                    .unwrap_or_else(Card::zero);
                effect.scans.push((lname.clone(), rows));
                if let Some(t) = self.tables.get_mut(&lname) {
                    for (col, _) in assignments {
                        t.distinct.remove(&col.to_ascii_lowercase());
                        t.lit_values.remove(&col.to_ascii_lowercase());
                    }
                }
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let lname = table.to_ascii_lowercase();
                let rows = self
                    .tables
                    .get(&lname)
                    .map(|t| t.rows.clone())
                    .unwrap_or_else(Card::zero);
                effect.scans.push((lname.clone(), rows));
                if where_clause.is_none() {
                    if let Some(t) = self.tables.get_mut(&lname) {
                        t.rows = Card::zero();
                        t.distinct.clear();
                        t.lit_values.clear();
                    }
                }
            }
            Statement::Select(sel) => {
                let d = self.derive_select(sel, catalog);
                effect.scans = d.scans;
                effect.output_rows = Some(d.out_rows);
            }
            Statement::Explain(_) => {}
            Statement::ExplainAnalyze(inner) => return self.apply(inner, catalog),
        }
        effect
    }

    /// Symbolic peak working-memory footprint, in bytes, of executing
    /// `stmt` against the current state — the static counterpart of the
    /// runtime [`crate::ResourceTracker`] charges, under the same
    /// deterministic logical size model ([`crate::resource`]).
    ///
    /// Must be derived against the state *before* [`SymState::apply`]
    /// updates it. The result is a conservative upper bound: join build
    /// sides assume every build row introduces a fresh single-column
    /// hash key, and numeric cell widths are exact while strings add
    /// unmodeled length bytes. What is summed mirrors the executor's
    /// charge sites: join builds and broadcasts, merged GROUP BY
    /// tables, materialized SELECT output, staged INSERT batches and
    /// UPDATE…FROM cross products. Committed table storage is not
    /// counted, matching the runtime budget's scope.
    pub fn footprint(&self, stmt: &Statement, catalog: &SymbolicCatalog) -> Card {
        let bytes = |b: u64| Card::constant(b as usize);
        match stmt {
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                // `staged insert`: the full incoming batch is buffered
                // and charged row-by-row before the table is touched.
                let staged_arity = match columns {
                    Some(cols) => cols.len(),
                    None => catalog
                        .table_schema(table)
                        .map(|s| s.columns().len())
                        .unwrap_or(0),
                };
                match source {
                    InsertSource::Values(rows) => {
                        Card::constant(rows.len()).mul(&bytes(row_width_bytes(staged_arity)))
                    }
                    InsertSource::Select(sel) => {
                        // The producing SELECT's working set is live at
                        // the same time as the staging buffer.
                        let (working, out_rows) = self.select_footprint(sel, catalog);
                        working.add(&out_rows.mul(&bytes(row_width_bytes(staged_arity))))
                    }
                }
            }
            Statement::Select(sel) => self.select_footprint(sel, catalog).0,
            Statement::Update { from, .. } => {
                // `update from`: the FROM cross product is materialized
                // stage by stage; every intermediate combination row is
                // charged at its width so far.
                let mut fp = Card::zero();
                let mut prod = Card::constant(1);
                let mut arity = 0usize;
                for tref in from {
                    let rows = self
                        .table(&tref.table)
                        .map(|t| t.rows.clone())
                        .unwrap_or_else(Card::zero);
                    prod = prod.mul(&rows);
                    arity += catalog
                        .table_schema(&tref.table)
                        .map(|s| s.columns().len())
                        .unwrap_or(0);
                    fp = fp.add(&prod.mul(&bytes(row_width_bytes(arity))));
                }
                fp
            }
            Statement::ExplainAnalyze(inner) => self.footprint(inner, catalog),
            _ => Card::zero(),
        }
    }

    /// Footprint of one SELECT: `(working bytes, output rows)`.
    fn select_footprint(&self, sel: &Select, catalog: &SymbolicCatalog) -> (Card, Card) {
        let bytes = |b: u64| Card::constant(b as usize);
        let mut fp = Card::zero();
        // Join build sides: every FROM table after the driver is
        // hashed or broadcast. Upper bound: each build row costs one
        // entry slot plus a fresh single-column key row.
        for tref in sel.from.iter().skip(1) {
            let rows = self
                .table(&tref.table)
                .map(|t| t.rows.clone())
                .unwrap_or_else(Card::zero);
            fp = fp.add(&rows.mul(&bytes(ENTRY_OVERHEAD_BYTES + row_width_bytes(1))));
        }
        let d = self.derive_select(sel, catalog);
        let aggregated = !sel.group_by.is_empty()
            || sel
                .items
                .iter()
                .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
            || sel.having.as_ref().is_some_and(|h| h.contains_aggregate());
        if aggregated {
            // `group table`: the merged AggSink — one key row, one
            // entry slot and one accumulator state per aggregate item
            // for every group.
            let n_aggs = sel
                .items
                .iter()
                .filter(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
                .count()
                .max(1);
            let per_group = row_width_bytes(sel.group_by.len())
                + ENTRY_OVERHEAD_BYTES
                + n_aggs as u64 * AGG_STATE_BYTES;
            fp = fp.add(&d.out_rows.mul(&bytes(per_group)));
        } else {
            // `select output`: every materialized row, at the
            // projection's width (hidden ORDER BY columns included).
            let width = self.item_count(sel, catalog) + sel.order_by.len();
            fp = fp.add(&d.out_rows.mul(&bytes(row_width_bytes(width))));
        }
        (fp, d.out_rows)
    }

    /// Number of output columns a SELECT's item list expands to.
    fn item_count(&self, sel: &Select, catalog: &SymbolicCatalog) -> usize {
        sel.items
            .iter()
            .map(|item| match item {
                SelectItem::Wildcard => sel
                    .from
                    .iter()
                    .map(|t| {
                        catalog
                            .table_schema(&t.table)
                            .map(|s| s.columns().len())
                            .unwrap_or(0)
                    })
                    .sum(),
                SelectItem::QualifiedWildcard(q) => sel
                    .from
                    .iter()
                    .find(|t| t.visible_name().eq_ignore_ascii_case(q))
                    .and_then(|t| catalog.table_schema(&t.table))
                    .map(|s| s.columns().len())
                    .unwrap_or(0),
                SelectItem::Expr { .. } => 1,
            })
            .sum()
    }

    /// Append `added` rows to `table`, merging per-column distincts.
    fn append(
        &mut self,
        table: &str,
        dest: &[String],
        added: Card,
        items: &[(ItemDistinct, Card, Option<BTreeSet<String>>)],
    ) {
        let entry = self
            .tables
            .entry(table.to_string())
            .or_insert_with(TableCard::empty);
        let old_rows = entry.rows.clone();
        entry.rows = entry.rows.add(&added);
        for (col, (kind, d, lits)) in dest.iter().zip(items) {
            let old = entry
                .distinct
                .get(col)
                .cloned()
                .unwrap_or_else(|| old_rows.clone());
            let merged = match kind {
                ItemDistinct::Literal => {
                    // The exact value-set union applies only while the
                    // column's entire history is literal: either we
                    // already track a set for it, or it had no rows.
                    let trusted = entry.lit_values.contains_key(col) || old_rows.is_zero();
                    match (lits, trusted) {
                        (Some(set), true) => {
                            let stored = entry.lit_values.entry(col.clone()).or_default();
                            stored.extend(set.iter().cloned());
                            Card::constant(stored.len())
                        }
                        _ => {
                            entry.lit_values.remove(col);
                            old.add(d)
                        }
                    }
                }
                ItemDistinct::Column(_) | ItemDistinct::Other => {
                    entry.lit_values.remove(col);
                    old.max(d)
                }
            };
            entry.distinct.insert(col.clone(), merged.min(&entry.rows));
        }
    }

    /// Derive driver scans, output cardinality and per-item distinct
    /// counts for a SELECT.
    fn derive_select(&self, sel: &Select, catalog: &SymbolicCatalog) -> SelectDerivation {
        let mut scans = Vec::new();
        // Visible-name → base-table map for column resolution.
        let from: Vec<(String, String)> = sel
            .from
            .iter()
            .map(|t| (t.visible_name().to_string(), t.table.clone()))
            .collect();
        if let Some((_, base)) = from.first() {
            let rows = self
                .table(base)
                .map(|t| t.rows.clone())
                .unwrap_or_else(Card::zero);
            scans.push((base.clone(), rows));
        }
        // Cross-product cardinality, then equi-join selectivities.
        let mut join = from.iter().fold(Card::constant(1), |acc, (_, base)| {
            acc.mul(
                &self
                    .table(base)
                    .map(|t| t.rows.clone())
                    .unwrap_or_else(Card::zero),
            )
        });
        if let Some(w) = &sel.where_clause {
            let mut preds = Vec::new();
            conjuncts(w, &mut preds);
            for pred in preds {
                if let Expr::Binary {
                    op: BinOp::Eq,
                    left,
                    right,
                } = pred
                {
                    let divisor = match (&**left, &**right) {
                        (Expr::Column { .. }, Expr::Column { .. }) => {
                            let l = self.column_distinct(left, &from, catalog);
                            let r = self.column_distinct(right, &from, catalog);
                            match (l, r) {
                                (Some((lt, ld)), Some((rt, rd))) if lt != rt => Some(ld.max(&rd)),
                                _ => None,
                            }
                        }
                        (Expr::Column { .. }, Expr::Literal(_)) => {
                            self.column_distinct(left, &from, catalog).map(|(_, d)| d)
                        }
                        (Expr::Literal(_), Expr::Column { .. }) => {
                            self.column_distinct(right, &from, catalog).map(|(_, d)| d)
                        }
                        _ => None,
                    };
                    if let Some(d) = divisor {
                        if let Some(q) = join.div_exact(&d) {
                            join = q;
                        }
                    }
                }
            }
        }
        // Output cardinality: GROUP BY → Π distinct(key); a bare
        // aggregate → exactly one row; otherwise the join cardinality.
        let aggregated = sel
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()));
        let mut out_rows = if !sel.group_by.is_empty() {
            let mut prod = Card::constant(1);
            let mut resolved = true;
            for key in &sel.group_by {
                match self.column_distinct(key, &from, catalog) {
                    Some((_, d)) => prod = prod.mul(&d),
                    None => {
                        resolved = false;
                        break;
                    }
                }
            }
            if resolved {
                prod.min(&join)
            } else {
                join.clone()
            }
        } else if aggregated {
            Card::constant(1)
        } else {
            join.clone()
        };
        if let Some(limit) = sel.limit {
            out_rows = out_rows.min(&Card::constant(limit));
        }
        // Per-item distinct facts for INSERT propagation, plus the
        // rendered literal value for constant items (wildcards expand
        // to several column items, so positions must stay aligned).
        let mut item_distinct = Vec::new();
        let mut item_lits = Vec::new();
        for item in &sel.items {
            match item {
                SelectItem::Wildcard => {
                    for (_, base) in &from {
                        if let Some(schema) = catalog.table_schema(base) {
                            for c in schema.columns() {
                                let d = self
                                    .table(base)
                                    .map(|t| t.distinct_of(&c.name))
                                    .unwrap_or_else(Card::zero);
                                item_distinct.push(ItemDistinct::Column(d));
                                item_lits.push(None);
                            }
                        }
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    if let Some((_, base)) = from.iter().find(|(v, _)| v == q) {
                        if let Some(schema) = catalog.table_schema(base) {
                            for c in schema.columns() {
                                let d = self
                                    .table(base)
                                    .map(|t| t.distinct_of(&c.name))
                                    .unwrap_or_else(Card::zero);
                                item_distinct.push(ItemDistinct::Column(d));
                                item_lits.push(None);
                            }
                        }
                    }
                }
                SelectItem::Expr { expr, .. } => {
                    let (kind, lit) = match expr {
                        Expr::Literal(v) => (ItemDistinct::Literal, Some(format!("{v:?}"))),
                        Expr::Column { .. } => match self.column_distinct(expr, &from, catalog) {
                            Some((_, d)) => (ItemDistinct::Column(d), None),
                            None => (ItemDistinct::Other, None),
                        },
                        _ => (ItemDistinct::Other, None),
                    };
                    item_distinct.push(kind);
                    item_lits.push(lit);
                }
            }
        }
        SelectDerivation {
            scans,
            out_rows,
            item_distinct,
            item_lits,
        }
    }

    /// Resolve a plain column expression to `(base table, distinct)`.
    /// Returns `None` for non-columns, lateral aliases and ambiguous
    /// references (the analyzer has already vetted real ambiguity).
    fn column_distinct(
        &self,
        e: &Expr,
        from: &[(String, String)],
        catalog: &SymbolicCatalog,
    ) -> Option<(String, Card)> {
        let Expr::Column { table, name } = e else {
            return None;
        };
        let base = match table {
            Some(q) => {
                let (_, base) = from.iter().find(|(v, _)| v == q)?;
                let schema = catalog.table_schema(base)?;
                schema.column_index(name)?;
                base.clone()
            }
            None => {
                let mut hits = from.iter().filter(|(_, base)| {
                    catalog
                        .table_schema(base)
                        .is_some_and(|s| s.column_index(name).is_some())
                });
                let first = hits.next()?;
                if hits.next().is_some() {
                    return None;
                }
                first.1.clone()
            }
        };
        let d = self.table(&base)?.distinct_of(name);
        Some((base, d))
    }
}

/// One SELECT's derived facts.
struct SelectDerivation {
    scans: Vec<(String, Card)>,
    out_rows: Card,
    item_distinct: Vec<ItemDistinct>,
    /// Rendered literal value per item, aligned with `item_distinct`;
    /// `None` for anything that is not a plain literal.
    item_lits: Vec<Option<String>>,
}

/// Split a predicate on AND into its conjuncts.
fn conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            conjuncts(left, out);
            conjuncts(right, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::Limits;
    use crate::parser::parse_one;

    fn apply_sql(state: &mut SymState, catalog: &mut SymbolicCatalog, sql: &str) -> StmtEffect {
        let stmt = parse_one(sql).unwrap();
        catalog.apply(&stmt, &Limits::default()).unwrap();
        state.apply(&stmt, catalog)
    }

    #[test]
    fn equi_join_with_group_by_derives_exact_cards() {
        let mut cat = SymbolicCatalog::new();
        let mut st = SymState::new();
        apply_sql(
            &mut st,
            &mut cat,
            "CREATE TABLE y (rid BIGINT, v BIGINT, val DOUBLE, PRIMARY KEY (rid, v))",
        );
        apply_sql(
            &mut st,
            &mut cat,
            "CREATE TABLE cr (v BIGINT PRIMARY KEY, c1 DOUBLE, r DOUBLE)",
        );
        apply_sql(
            &mut st,
            &mut cat,
            "CREATE TABLE yd (rid BIGINT PRIMARY KEY, d1 DOUBLE)",
        );
        // The driver loads y with pn rows (n points, p dims per point).
        let pn = Card::p().mul(&Card::n());
        st.load(
            "y",
            pn.clone(),
            &[("rid".into(), Card::n()), ("v".into(), Card::p())],
        );
        st.load("cr", Card::p(), &[("v".into(), Card::p())]);
        let effect = apply_sql(
            &mut st,
            &mut cat,
            "INSERT INTO yd SELECT rid, sum(val) FROM y, cr WHERE y.v = cr.v GROUP BY rid",
        );
        // One driver scan of the pn-row table, n output rows.
        assert_eq!(effect.scans, vec![("y".to_string(), pn)]);
        assert_eq!(effect.output_rows, Some(Card::n()));
        assert_eq!(st.table("yd").unwrap().rows, Card::n());
        assert_eq!(st.table("yd").unwrap().distinct_of("rid"), Card::n());
    }

    #[test]
    fn bare_aggregate_produces_one_row_and_literal_appends_sum() {
        let mut cat = SymbolicCatalog::new();
        let mut st = SymState::new();
        apply_sql(
            &mut st,
            &mut cat,
            "CREATE TABLE z (rid BIGINT PRIMARY KEY, y1 DOUBLE)",
        );
        apply_sql(
            &mut st,
            &mut cat,
            "CREATE TABLE c (i BIGINT PRIMARY KEY, y1 DOUBLE)",
        );
        st.load("z", Card::n(), &[("rid".into(), Card::n())]);
        for j in 1..=3 {
            let effect = apply_sql(
                &mut st,
                &mut cat,
                &format!("INSERT INTO c SELECT {j}, sum(y1) FROM z"),
            );
            assert_eq!(effect.scans, vec![("z".to_string(), Card::n())]);
            assert_eq!(effect.output_rows, Some(Card::constant(1)));
        }
        let c = st.table("c").unwrap();
        assert_eq!(c.rows, Card::constant(3));
        // Three distinct literal cluster indexes, tracked exactly.
        assert_eq!(c.distinct_of("i"), Card::constant(3));
    }

    #[test]
    fn delete_resets_and_update_scans_target() {
        let mut cat = SymbolicCatalog::new();
        let mut st = SymState::new();
        apply_sql(&mut st, &mut cat, "CREATE TABLE w (w1 DOUBLE, llh DOUBLE)");
        apply_sql(&mut st, &mut cat, "INSERT INTO w VALUES (0.5, 0.0)");
        assert_eq!(st.table("w").unwrap().rows, Card::constant(1));
        let eff = apply_sql(&mut st, &mut cat, "UPDATE w SET w1 = w1 * 2.0");
        assert_eq!(eff.scans, vec![("w".to_string(), Card::constant(1))]);
        let eff = apply_sql(&mut st, &mut cat, "DELETE FROM w");
        assert_eq!(eff.scans, vec![("w".to_string(), Card::constant(1))]);
        assert!(st.table("w").unwrap().rows.is_zero());
    }

    #[test]
    fn column_appends_merge_by_max_not_sum() {
        let mut cat = SymbolicCatalog::new();
        let mut st = SymState::new();
        apply_sql(
            &mut st,
            &mut cat,
            "CREATE TABLE yx (rid BIGINT PRIMARY KEY, x1 DOUBLE, x2 DOUBLE)",
        );
        apply_sql(
            &mut st,
            &mut cat,
            "CREATE TABLE x (rid BIGINT, i BIGINT, x DOUBLE, PRIMARY KEY (rid, i))",
        );
        st.load("yx", Card::n(), &[("rid".into(), Card::n())]);
        apply_sql(&mut st, &mut cat, "INSERT INTO x SELECT rid, 1, x1 FROM yx");
        apply_sql(&mut st, &mut cat, "INSERT INTO x SELECT rid, 2, x2 FROM yx");
        let x = st.table("x").unwrap();
        // 2n rows, but still only n distinct RIDs and 2 distinct i.
        assert_eq!(x.rows, Card::constant(2).mul(&Card::n()));
        assert_eq!(x.distinct_of("rid"), Card::n());
        assert_eq!(x.distinct_of("i"), Card::constant(2));
    }

    #[test]
    fn chunked_literal_inserts_do_not_double_count_distincts() {
        let mut cat = SymbolicCatalog::new();
        let mut st = SymState::new();
        apply_sql(
            &mut st,
            &mut cat,
            "CREATE TABLE c (i BIGINT, j BIGINT, v DOUBLE)",
        );
        // The driver chunks large VALUES loads; the same cluster index
        // reappears in later chunks and must not inflate the distinct
        // count.
        apply_sql(
            &mut st,
            &mut cat,
            "INSERT INTO c VALUES (1, 1, 0.5), (1, 2, 0.25), (2, 1, 0.75)",
        );
        apply_sql(
            &mut st,
            &mut cat,
            "INSERT INTO c VALUES (2, 2, 0.5), (3, 1, 0.25), (3, 2, 0.125)",
        );
        let c = st.table("c").unwrap();
        assert_eq!(c.rows, Card::constant(6));
        // i values {1,2,3}, j values {1,2} — exact across both chunks.
        assert_eq!(c.distinct_of("i"), Card::constant(3));
        assert_eq!(c.distinct_of("j"), Card::constant(2));
    }

    #[test]
    fn footprint_sums_join_build_group_table_and_staging() {
        let mut cat = SymbolicCatalog::new();
        let mut st = SymState::new();
        apply_sql(
            &mut st,
            &mut cat,
            "CREATE TABLE y (rid BIGINT, v BIGINT, val DOUBLE, PRIMARY KEY (rid, v))",
        );
        apply_sql(
            &mut st,
            &mut cat,
            "CREATE TABLE cr (v BIGINT PRIMARY KEY, c1 DOUBLE)",
        );
        apply_sql(
            &mut st,
            &mut cat,
            "CREATE TABLE yd (rid BIGINT PRIMARY KEY, d1 DOUBLE)",
        );
        st.load(
            "y",
            Card::p().mul(&Card::n()),
            &[("rid".into(), Card::n()), ("v".into(), Card::p())],
        );
        st.load("cr", Card::p(), &[("v".into(), Card::p())]);
        let stmt = parse_one(
            "INSERT INTO yd SELECT rid, sum(val) FROM y, cr WHERE y.v = cr.v GROUP BY rid",
        )
        .unwrap();
        let fp = st.footprint(&stmt, &cat);
        // Build side: p rows, each an entry slot plus a single-key row.
        // Group table: n groups, each a key row, an entry slot and one
        // accumulator. Staging: n rows at the target's two-column width.
        let build = (ENTRY_OVERHEAD_BYTES + row_width_bytes(1)) as u128;
        let per_group = (row_width_bytes(1) + ENTRY_OVERHEAD_BYTES + AGG_STATE_BYTES) as u128;
        let staged = row_width_bytes(2) as u128;
        assert_eq!(fp.eval(1000, 4, 3), 4 * build + 1000 * (per_group + staged));
    }

    #[test]
    fn footprint_of_values_insert_and_update_from() {
        let mut cat = SymbolicCatalog::new();
        let mut st = SymState::new();
        apply_sql(&mut st, &mut cat, "CREATE TABLE w (w1 DOUBLE, llh DOUBLE)");
        let ins = parse_one("INSERT INTO w VALUES (0.5, 0.0), (1.0, 2.0)").unwrap();
        // Two staged rows at the table's two-column width.
        assert_eq!(
            st.footprint(&ins, &cat).eval(1, 1, 1),
            2 * row_width_bytes(2) as u128
        );
        apply_sql(
            &mut st,
            &mut cat,
            "INSERT INTO w VALUES (0.5, 0.0), (1.0, 2.0)",
        );
        apply_sql(&mut st, &mut cat, "CREATE TABLE m (f DOUBLE, g DOUBLE)");
        apply_sql(&mut st, &mut cat, "INSERT INTO m VALUES (3.0, 4.0)");
        let upd = parse_one("UPDATE w FROM m SET w1 = m.f").unwrap();
        // The FROM cross product (target excluded) is one m row staged
        // at m's two-column width.
        assert_eq!(
            st.footprint(&upd, &cat).eval(1, 1, 1),
            row_width_bytes(2) as u128
        );
    }

    #[test]
    fn footprint_of_plain_select_counts_materialized_output() {
        let mut cat = SymbolicCatalog::new();
        let mut st = SymState::new();
        apply_sql(
            &mut st,
            &mut cat,
            "CREATE TABLE z (rid BIGINT PRIMARY KEY, y1 DOUBLE)",
        );
        st.load("z", Card::n(), &[("rid".into(), Card::n())]);
        let sel = parse_one("SELECT rid, y1 FROM z ORDER BY y1").unwrap();
        // n output rows at width 2 plus one hidden sort column.
        assert_eq!(
            st.footprint(&sel, &cat).eval(500, 1, 1),
            500 * row_width_bytes(3) as u128
        );
    }
}

//! Table lifecycle analysis over a linear script.
//!
//! Each table moves through `absent → created → dropped`; this pass
//! walks the whole script once and flags the transitions that indicate
//! generator bugs:
//!
//! * **work-table leak** — created by the script, still live at the
//!   end (a failed cleanup section, or none at all);
//! * **use-before-create** — referenced at index `i`, created only at
//!   some `j > i` (a statement-ordering bug);
//! * **read-after-drop** — referenced after its `DROP TABLE`;
//! * **double-create** — plain `CREATE TABLE` over a live table.
//!
//! Tables matching a declared persistent prefix (SQLEM's `ckpt*`
//! checkpoint tables) are exempt from leak detection: surviving the
//! session is their whole point.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::ast::{InsertSource, Statement};

use super::{find_ident_pos, Diagnostic, DiagnosticKind, ScriptStmt};

/// Lifecycle state of one table during the walk.
enum State {
    /// Live; `Some(i)` when statement `i` of this script created it.
    Live(Option<usize>),
    /// Dropped by an earlier statement.
    Dropped,
}

/// Tables a statement reads or writes (not counting DDL targets).
fn used_tables(stmt: &Statement, out: &mut Vec<String>) {
    match stmt {
        Statement::CreateTable { .. } | Statement::DropTable { .. } => {}
        Statement::Insert { table, source, .. } => {
            out.push(table.to_ascii_lowercase());
            if let InsertSource::Select(sel) = source {
                for t in &sel.from {
                    out.push(t.table.to_ascii_lowercase());
                }
            }
        }
        Statement::Update { table, from, .. } => {
            out.push(table.to_ascii_lowercase());
            for t in from {
                out.push(t.table.to_ascii_lowercase());
            }
        }
        Statement::Delete { table, .. } => out.push(table.to_ascii_lowercase()),
        Statement::Select(sel) => {
            for t in &sel.from {
                out.push(t.table.to_ascii_lowercase());
            }
        }
        // Plain EXPLAIN never touches data; EXPLAIN ANALYZE does.
        Statement::Explain(_) => {}
        Statement::ExplainAnalyze(inner) => used_tables(inner, out),
    }
}

/// Run the lifecycle pass. `parsed[i]` holds the parsed statements of
/// `stmts[i]` (empty when parsing failed — those are reported
/// elsewhere); `preexisting` are tables live before the script runs.
pub(super) fn check(
    parsed: &[Vec<Statement>],
    stmts: &[ScriptStmt],
    preexisting: &BTreeSet<String>,
    persistent_prefixes: &[String],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // First creation index per table, for use-before-create.
    let mut creates: BTreeMap<String, usize> = BTreeMap::new();
    for (i, group) in parsed.iter().enumerate() {
        for stmt in group {
            if let Statement::CreateTable { name, .. } = stmt {
                creates.entry(name.to_ascii_lowercase()).or_insert(i);
            }
        }
    }

    let mut state: BTreeMap<String, State> = preexisting
        .iter()
        .map(|t| (t.clone(), State::Live(None)))
        .collect();

    for (i, group) in parsed.iter().enumerate() {
        let script_stmt = &stmts[i];
        let diag = |kind: DiagnosticKind, table: &str| Diagnostic {
            severity: kind.severity(),
            kind,
            stmt: Some(i),
            purpose: script_stmt.purpose.clone(),
            pos: find_ident_pos(&script_stmt.sql, table),
        };
        for stmt in group {
            let mut used = Vec::new();
            used_tables(stmt, &mut used);
            used.dedup();
            for t in used {
                match state.get(&t) {
                    Some(State::Live(_)) => {}
                    Some(State::Dropped) => {
                        diags.push(diag(DiagnosticKind::ReadAfterDrop { table: t.clone() }, &t));
                    }
                    None => {
                        // Only a lifecycle problem when the script does
                        // create it, later; a table that never exists is
                        // a plain unknown-table semantic error.
                        if creates.get(&t).is_some_and(|&j| j > i) {
                            diags.push(diag(
                                DiagnosticKind::UseBeforeCreate { table: t.clone() },
                                &t,
                            ));
                        }
                    }
                }
            }
            match stmt {
                Statement::CreateTable {
                    name,
                    if_not_exists,
                    ..
                } => {
                    let t = name.to_ascii_lowercase();
                    match state.get(&t) {
                        Some(State::Live(_)) if !*if_not_exists => {
                            diags.push(diag(DiagnosticKind::DoubleCreate { table: t.clone() }, &t));
                        }
                        Some(State::Live(_)) => {}
                        _ => {
                            state.insert(t, State::Live(Some(i)));
                        }
                    }
                }
                Statement::DropTable { name, .. } => {
                    state.insert(name.to_ascii_lowercase(), State::Dropped);
                }
                _ => {}
            }
        }
    }

    // Anything the script created and left live at the end is a leak,
    // unless it is declared persistent.
    for (t, s) in &state {
        if let State::Live(Some(created_at)) = s {
            if persistent_prefixes
                .iter()
                .any(|p| t.starts_with(p.as_str()))
            {
                continue;
            }
            let script_stmt = &stmts[*created_at];
            diags.push(Diagnostic {
                severity: DiagnosticKind::WorkTableLeak { table: t.clone() }.severity(),
                kind: DiagnosticKind::WorkTableLeak { table: t.clone() },
                stmt: Some(*created_at),
                purpose: script_stmt.purpose.clone(),
                pos: find_ident_pos(&script_stmt.sql, t),
            });
        }
    }
    diags
}

//! Expression safety lints: division-by-zero reachability and
//! non-finite literals.
//!
//! The SQLEM generators lean on two §2.5 numeric safeguards — the
//! `1.0E-100` underflow guard in the inverse-distance fallback and the
//! `CASE WHEN r = 0 THEN 1 ELSE r END` zero-covariance skip. This pass
//! walks every expression with a small *guard environment* so those
//! idioms are recognized as provably safe, while a denominator with no
//! guard at all is reported:
//!
//! * a **literal zero** denominator is an error — it divides by zero
//!   on every row;
//! * a denominator that is provably non-zero (non-zero literal, `exp`,
//!   `x + ε` with a positive literal ε, a CASE whose every arm is
//!   non-zero, or an expression the enclosing CASE condition guards)
//!   is clean;
//! * anything else is a warning — reachable division by zero if the
//!   data cooperates (e.g. `sum(x)` over an empty cluster).
//!
//! Non-finite double literals (`NaN`, `inf`) are errors outright: the
//! engine's parser would never produce them from text, so one in a
//! generated AST means a poisoned parameter write.

use crate::ast::{BinOp, Expr, InsertSource, Select, Statement, UnaryOp};
use crate::value::Value;

use super::DiagnosticKind;

/// A lint hit: the kind plus an identifier to locate in the source.
#[derive(PartialEq)]
pub(super) struct LintHit {
    pub kind: DiagnosticKind,
    /// Identifier worth searching for in the SQL text (column name of
    /// the offending denominator), if there is one.
    pub token: Option<String>,
}

/// Lint every expression of `stmt`.
pub(super) fn check(stmt: &Statement, out: &mut Vec<LintHit>) {
    let mut guards: Vec<&Expr> = Vec::new();
    match stmt {
        Statement::CreateTable { .. } | Statement::DropTable { .. } => {}
        Statement::Insert { source, .. } => match source {
            InsertSource::Values(rows) => {
                for row in rows {
                    for e in row {
                        walk(e, &mut guards, out);
                    }
                }
            }
            InsertSource::Select(sel) => check_select(sel, out),
        },
        Statement::Update {
            assignments,
            where_clause,
            ..
        } => {
            for (_, e) in assignments {
                walk(e, &mut guards, out);
            }
            if let Some(w) = where_clause {
                walk(w, &mut guards, out);
            }
        }
        Statement::Delete { where_clause, .. } => {
            if let Some(w) = where_clause {
                walk(w, &mut guards, out);
            }
        }
        Statement::Select(sel) => check_select(sel, out),
        Statement::Explain(_) => {}
        Statement::ExplainAnalyze(inner) => check(inner, out),
    }
}

fn check_select(sel: &Select, out: &mut Vec<LintHit>) {
    let mut guards: Vec<&Expr> = Vec::new();
    for item in &sel.items {
        if let crate::ast::SelectItem::Expr { expr, .. } = item {
            walk(expr, &mut guards, out);
        }
    }
    for e in sel
        .where_clause
        .iter()
        .chain(&sel.group_by)
        .chain(sel.having.iter())
        .chain(sel.order_by.iter().map(|k| &k.expr))
    {
        walk(e, &mut guards, out);
    }
}

/// Recursive expression walk carrying the guard environment: the
/// expressions known non-zero in the current CASE context.
fn walk<'a>(e: &'a Expr, guards: &mut Vec<&'a Expr>, out: &mut Vec<LintHit>) {
    match e {
        Expr::Literal(v) => {
            if let Value::Double(d) = v {
                if !d.is_finite() {
                    out.push(LintHit {
                        kind: DiagnosticKind::NonFiniteLiteral {
                            literal: format!("{d}"),
                        },
                        token: None,
                    });
                }
            }
        }
        Expr::Column { .. } => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => walk(expr, guards, out),
        Expr::Binary { op, left, right } => {
            walk(left, guards, out);
            if *op == BinOp::Div {
                if is_zero_literal(right) {
                    out.push(LintHit {
                        kind: DiagnosticKind::DivisionByZero {
                            denominator: right.to_string(),
                        },
                        token: first_column(right).or_else(|| literal_token(right)),
                    });
                } else if !provably_nonzero(right, guards) {
                    out.push(LintHit {
                        kind: DiagnosticKind::UnprovenDivisor {
                            denominator: right.to_string(),
                        },
                        token: first_column(right),
                    });
                }
            }
            walk(right, guards, out);
        }
        Expr::Func { args, .. } => {
            for a in args {
                walk(a, guards, out);
            }
        }
        Expr::Case { whens, else_expr } => {
            // Walking arm i, every earlier single-conjunct `x = 0`
            // condition is known false, so those x are non-zero.
            let mut falsified: Vec<&'a Expr> = Vec::new();
            for (cond, result) in whens {
                walk(cond, guards, out);
                let depth = guards.len();
                guards.extend(falsified.iter().copied());
                guards.extend(guards_from_condition(cond));
                walk(result, guards, out);
                guards.truncate(depth);
                if let Some(x) = eq_zero_subject(cond) {
                    falsified.push(x);
                }
            }
            if let Some(els) = else_expr {
                let depth = guards.len();
                guards.extend(falsified.iter().copied());
                walk(els, guards, out);
                guards.truncate(depth);
            }
        }
    }
}

/// Expressions a CASE condition proves non-zero inside its THEN arm:
/// `x > c` (c ≥ 0), `c < x`, and `x <> 0`.
fn guards_from_condition(cond: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    let mut preds = Vec::new();
    split_and(cond, &mut preds);
    for p in preds {
        if let Expr::Binary { op, left, right } = p {
            match op {
                BinOp::Gt | BinOp::Ge if is_nonneg_guard_bound(right, *op) => out.push(&**left),
                BinOp::Lt | BinOp::Le if is_nonneg_guard_bound(left, *op) => out.push(&**right),
                BinOp::Neq if is_zero_literal(right) => out.push(&**left),
                BinOp::Neq if is_zero_literal(left) => out.push(&**right),
                _ => {}
            }
        }
    }
    out
}

/// Is `bound` a literal making `x OP bound` imply `x ≠ 0`? For strict
/// comparisons any literal ≥ 0 works; for inclusive ones it must be
/// positive.
fn is_nonneg_guard_bound(bound: &Expr, op: BinOp) -> bool {
    let v = match bound {
        Expr::Literal(Value::Int(i)) => *i as f64,
        Expr::Literal(Value::Double(d)) => *d,
        _ => return false,
    };
    match op {
        BinOp::Gt | BinOp::Lt => v >= 0.0,
        BinOp::Ge | BinOp::Le => v > 0.0,
        _ => false,
    }
}

/// For a single-conjunct condition `x = 0`, return `x`.
fn eq_zero_subject(cond: &Expr) -> Option<&Expr> {
    if let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = cond
    {
        if is_zero_literal(right) {
            return Some(left);
        }
        if is_zero_literal(left) {
            return Some(right);
        }
    }
    None
}

fn split_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        split_and(left, out);
        split_and(right, out);
    } else {
        out.push(e);
    }
}

fn is_zero_literal(e: &Expr) -> bool {
    matches!(e, Expr::Literal(Value::Int(0)))
        || matches!(e, Expr::Literal(Value::Double(d)) if *d == 0.0)
}

fn is_positive_literal(e: &Expr) -> bool {
    match e {
        Expr::Literal(Value::Int(i)) => *i > 0,
        Expr::Literal(Value::Double(d)) => *d > 0.0,
        _ => false,
    }
}

/// Can the expression be proven non-zero under `guards`?
fn provably_nonzero(e: &Expr, guards: &[&Expr]) -> bool {
    if guards.contains(&e) {
        return true;
    }
    match e {
        Expr::Literal(Value::Int(i)) => *i != 0,
        Expr::Literal(Value::Double(d)) => d.is_finite() && *d != 0.0,
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => provably_nonzero(expr, guards),
        // The §2.5 underflow guard: `d + 1.0E-100` with d ≥ 0 by
        // construction (sums of squares over positive covariances).
        Expr::Binary {
            op: BinOp::Add,
            left,
            right,
        } => is_positive_literal(left) || is_positive_literal(right),
        // exp(x) > 0 for every finite x.
        Expr::Func { name, .. } if name == "exp" => true,
        // A CASE is non-zero when every reachable arm is, each under
        // the guards its own condition (and the falsified earlier
        // conditions) provide. Without an ELSE the result can be NULL;
        // NULL propagates through division as NULL, never a
        // divide-by-zero, so it is acceptable here.
        Expr::Case { whens, else_expr } => {
            let mut falsified: Vec<&Expr> = Vec::new();
            for (cond, result) in whens {
                let mut arm_guards: Vec<&Expr> = guards.to_vec();
                arm_guards.extend(falsified.iter().copied());
                arm_guards.extend(guards_from_condition(cond));
                if !provably_nonzero(result, &arm_guards) {
                    return false;
                }
                if let Some(x) = eq_zero_subject(cond) {
                    falsified.push(x);
                }
            }
            if let Some(els) = else_expr {
                let mut els_guards: Vec<&Expr> = guards.to_vec();
                els_guards.extend(falsified.iter().copied());
                if !provably_nonzero(els, &els_guards) {
                    return false;
                }
            }
            true
        }
        _ => false,
    }
}

/// A searchable rendering of a bare literal (the `0` of `x / 0`), so
/// even a column-free denominator gets a byte position.
fn literal_token(e: &Expr) -> Option<String> {
    match e {
        Expr::Literal(Value::Int(i)) => Some(i.to_string()),
        _ => None,
    }
}

/// First column name mentioned by an expression, for positioning.
fn first_column(e: &Expr) -> Option<String> {
    match e {
        Expr::Literal(_) => None,
        Expr::Column { name, .. } => Some(name.clone()),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => first_column(expr),
        Expr::Binary { left, right, .. } => first_column(left).or_else(|| first_column(right)),
        Expr::Func { args, .. } => args.iter().find_map(first_column),
        Expr::Case { whens, else_expr } => whens
            .iter()
            .find_map(|(c, r)| first_column(c).or_else(|| first_column(r)))
            .or_else(|| else_expr.as_deref().and_then(first_column)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_one;

    fn hits(sql: &str) -> Vec<DiagnosticKind> {
        let stmt = parse_one(sql).unwrap();
        let mut out = Vec::new();
        check(&stmt, &mut out);
        out.into_iter().map(|h| h.kind).collect()
    }

    #[test]
    fn literal_zero_denominator_is_an_error() {
        let h = hits("SELECT a / 0 FROM t");
        assert!(matches!(h[0], DiagnosticKind::DivisionByZero { .. }));
        let h = hits("SELECT a / 0.0 FROM t");
        assert!(matches!(h[0], DiagnosticKind::DivisionByZero { .. }));
    }

    #[test]
    fn underflow_guard_and_exp_are_provably_safe() {
        assert!(hits("SELECT 1 / (d1 + 1.0E-100) FROM yd").is_empty());
        assert!(hits("SELECT x / exp(d1) FROM yd").is_empty());
        assert!(hits("SELECT a / 2.0 FROM t").is_empty());
    }

    #[test]
    fn zero_covariance_skip_case_is_provably_safe() {
        // Fig. 9's guard: CASE WHEN r = 0 THEN 1 ELSE r END.
        assert!(
            hits("SELECT (y1 - c1) ** 2 / CASE WHEN r1 = 0 THEN 1 ELSE r1 END FROM z, cr")
                .is_empty()
        );
    }

    #[test]
    fn case_condition_guards_its_own_arm() {
        // Fig. 5's fallback: the sump > 0 arm divides by sump safely...
        assert!(hits("SELECT CASE WHEN sump > 0 THEN p1 / sump ELSE 0.0 END FROM yp").is_empty());
        // ...but dividing by sump outside the guard is unproven.
        let h = hits("SELECT p1 / sump FROM yp");
        assert!(matches!(h[0], DiagnosticKind::UnprovenDivisor { .. }));
    }

    #[test]
    fn unguarded_aggregate_denominator_warns() {
        let h = hits("SELECT sum(x1 * y1) / sum(x1) FROM z, yx");
        assert_eq!(h.len(), 1);
        assert!(matches!(h[0], DiagnosticKind::UnprovenDivisor { .. }));
    }
}

//! Static script analysis: prove what a generated SQL script will do
//! before executing a single statement.
//!
//! SQLEM turns one EM iteration into dozens of generated statements
//! (paper §2.4–§2.6); a bug in the generator surfaces at runtime as a
//! leaked work table, a lost WAL record, or a cost blow-up. This module
//! is an *abstract interpreter* over a whole script: it threads a
//! symbolic catalog ([`crate::analyze::SymbolicCatalog`]) and a
//! symbolic table state ([`SymState`]) through every statement and
//! emits a typed [`ScriptReport`] containing
//!
//! * **symbolic scan derivation** — per-statement driver scans as
//!   closed-form [`Card`] polynomials in `(n, p, k)`, the quantity the
//!   engine's runtime `ExecMetrics` measures (§3.3 cost model);
//! * **lifecycle diagnostics** — work-table leaks, use-before-create,
//!   read-after-drop, double-create (the `lifecycle` module);
//! * **mutation classification** — an independent re-derivation of the
//!   WAL layer's mutating/read-only split, cross-checked
//!   statement-for-statement (the `mutation` module);
//! * **expression safety lints** — statement-size capacity overflow,
//!   division-by-zero reachability through the §2.5 guard idioms,
//!   non-finite literals (the `lints` module);
//! * **a steady-state proof** — the declared iteration span is replayed
//!   twice on the symbolic state; only when the second replay repeats
//!   the first exactly (same state, same scans) is the per-iteration
//!   derivation sound for *every* iteration, not just the first.
//!
//! The checker never executes anything and needs no data: callers
//! describe the externally loaded tables symbolically via
//! [`ScriptSpec::loads`] (e.g. "`z` has `n` rows with `n` distinct
//! `rid`") and get back exact per-iteration scan counts as functions of
//! `(n, p, k)`.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

use crate::analyze::{AnalyzeError, Limits, SymbolicCatalog};
use crate::ast::Statement;
use crate::error::Error;
use crate::parser;

pub mod card;
mod interp;
mod lifecycle;
mod lints;
mod mutation;

pub use card::Card;
pub use interp::{StmtEffect, SymState, TableCard};
pub use mutation::{classify, MutationClass};

/// One statement of a script, with its provenance.
#[derive(Debug, Clone)]
pub struct ScriptStmt {
    /// Generator-assigned purpose label (`e1`, `m-c`, `drop:yd`, …).
    pub purpose: String,
    /// The SQL text.
    pub sql: String,
    /// What the script author believes about mutation, if anything;
    /// checked against the derived classification.
    pub expected_mutating: Option<bool>,
}

impl ScriptStmt {
    /// A statement with no mutation expectation.
    pub fn new(purpose: impl Into<String>, sql: impl Into<String>) -> ScriptStmt {
        ScriptStmt {
            purpose: purpose.into(),
            sql: sql.into(),
            expected_mutating: None,
        }
    }
}

/// Symbolic contents of a table loaded outside the script (the bulk
/// load the driver performs through its own insert path).
#[derive(Debug, Clone)]
pub struct TableLoad {
    /// Table name.
    pub table: String,
    /// Symbolic row count.
    pub rows: Card,
    /// Known per-column distinct counts; unlisted columns default to
    /// the row count.
    pub distinct: Vec<(String, Card)>,
}

/// A script plus the symbolic facts needed to interpret it.
#[derive(Debug, Clone, Default)]
pub struct ScriptSpec {
    /// The statements, in execution order.
    pub statements: Vec<ScriptStmt>,
    /// `(index, load)` pairs: the load happens immediately *before*
    /// statement `index` executes.
    pub loads: Vec<(usize, TableLoad)>,
    /// Statement range executed once per EM iteration; triggers the
    /// steady-state replay and per-iteration scan derivation.
    pub iteration: Option<Range<usize>>,
    /// Table-name prefixes exempt from leak detection (checkpoints).
    pub persistent_prefixes: Vec<String>,
}

/// The environment a script is checked against.
#[derive(Debug, Clone)]
pub struct CheckEnv {
    /// Schemas live before the script starts.
    pub catalog: SymbolicCatalog,
    /// Complexity ceilings (a real parser's capacity, §3.3).
    pub limits: Limits,
    /// Maximum statement length in bytes; `0` disables the check.
    pub max_statement_len: usize,
}

impl Default for CheckEnv {
    fn default() -> CheckEnv {
        CheckEnv {
            catalog: SymbolicCatalog::new(),
            limits: Limits::default(),
            max_statement_len: 0,
        }
    }
}

/// Diagnostic severity. Only [`Severity::Error`] findings make
/// [`ScriptReport::ok`] false.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Worth reporting, not grounds for rejection.
    Warning,
    /// The script is wrong; do not execute it.
    Error,
}

/// What a diagnostic is about.
#[derive(Debug, Clone, PartialEq)]
pub enum DiagnosticKind {
    /// The statement does not parse.
    Parse(String),
    /// The analyzer rejected the statement (unknown table/column,
    /// type error, complexity ceiling, …).
    Semantic(AnalyzeError),
    /// Statement text exceeds the configured parser capacity.
    TooLong {
        /// Actual length in bytes.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// A script-created table is still live when the script ends.
    WorkTableLeak {
        /// The leaked table.
        table: String,
    },
    /// A table is referenced before the statement that creates it.
    UseBeforeCreate {
        /// The table.
        table: String,
    },
    /// A table is referenced after its `DROP TABLE`.
    ReadAfterDrop {
        /// The table.
        table: String,
    },
    /// Plain `CREATE TABLE` over a live table.
    DoubleCreate {
        /// The table.
        table: String,
    },
    /// The derived mutation class disagrees with the expected one (the
    /// WAL layer's own classifier, or the script author's annotation).
    MutationMismatch {
        /// What the reference says.
        expected: bool,
        /// What [`classify`] derived.
        derived: bool,
    },
    /// A denominator that is literally zero.
    DivisionByZero {
        /// Rendered denominator expression.
        denominator: String,
    },
    /// A denominator that cannot be proven non-zero (reachable
    /// division by zero if the data cooperates).
    UnprovenDivisor {
        /// Rendered denominator expression.
        denominator: String,
    },
    /// A non-finite floating-point literal (`NaN`, `inf`).
    NonFiniteLiteral {
        /// Rendered literal.
        literal: String,
    },
    /// Replaying the iteration span did not reach a fixpoint, so no
    /// per-iteration cost derivation is sound.
    NonSteadyState {
        /// What kept changing.
        detail: String,
    },
}

impl DiagnosticKind {
    /// The severity this kind reports at.
    pub fn severity(&self) -> Severity {
        match self {
            DiagnosticKind::UnprovenDivisor { .. } => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagnosticKind::Parse(m) => write!(f, "parse error: {m}"),
            DiagnosticKind::Semantic(e) => write!(f, "semantic error: {e}"),
            DiagnosticKind::TooLong { len, max } => {
                write!(f, "statement length {len} exceeds the parser limit {max}")
            }
            DiagnosticKind::WorkTableLeak { table } => {
                write!(f, "work table `{table}` is never dropped")
            }
            DiagnosticKind::UseBeforeCreate { table } => {
                write!(f, "table `{table}` is used before it is created")
            }
            DiagnosticKind::ReadAfterDrop { table } => {
                write!(f, "table `{table}` is used after being dropped")
            }
            DiagnosticKind::DoubleCreate { table } => {
                write!(f, "table `{table}` is created twice")
            }
            DiagnosticKind::MutationMismatch { expected, derived } => write!(
                f,
                "mutation classification drift: expected mutating={expected}, derived \
                 mutating={derived}"
            ),
            DiagnosticKind::DivisionByZero { denominator } => {
                write!(f, "division by literal zero: {denominator}")
            }
            DiagnosticKind::UnprovenDivisor { denominator } => {
                write!(f, "denominator not provably non-zero: {denominator}")
            }
            DiagnosticKind::NonFiniteLiteral { literal } => {
                write!(f, "non-finite literal: {literal}")
            }
            DiagnosticKind::NonSteadyState { detail } => {
                write!(f, "iteration span is not a fixpoint: {detail}")
            }
        }
    }
}

/// One finding, positioned in the script.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// What was found.
    pub kind: DiagnosticKind,
    /// Index of the statement it anchors to, if any.
    pub stmt: Option<usize>,
    /// Purpose label of that statement.
    pub purpose: String,
    /// Byte offset within the statement's SQL, when locatable.
    pub pos: Option<usize>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.severity {
            Severity::Warning => f.write_str("warning: ")?,
            Severity::Error => f.write_str("error: ")?,
        }
        write!(f, "{}", self.kind)?;
        if let Some(i) = self.stmt {
            write!(f, " [stmt {i} `{}`", self.purpose)?;
            if let Some(p) = self.pos {
                write!(f, ", byte {p}")?;
            }
            f.write_str("]")?;
        }
        Ok(())
    }
}

/// Per-statement derived facts.
#[derive(Debug, Clone)]
pub struct StmtReport {
    /// Statement index in the script.
    pub index: usize,
    /// Purpose label.
    pub purpose: String,
    /// SQL text length in bytes.
    pub bytes: usize,
    /// Leaf terms measured by the analyzer (0 when analysis failed).
    pub terms: usize,
    /// Derived mutation flag.
    pub mutating: bool,
    /// Driver scans `(table, symbolic rows)` this statement performs.
    pub scans: Vec<(String, Card)>,
    /// Symbolic output cardinality, for row-producing statements.
    pub output_rows: Option<Card>,
    /// Symbolic peak working-memory footprint in bytes — the static
    /// counterpart of the runtime [`crate::ResourceTracker`] charges
    /// (see [`SymState::footprint`]).
    pub footprint: Card,
}

/// One driver scan inside the iteration span.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanEvent {
    /// Statement index (within the whole script).
    pub stmt: usize,
    /// Purpose label of that statement.
    pub purpose: String,
    /// Scanned table.
    pub table: String,
    /// Symbolic rows scanned.
    pub rows: Card,
}

/// The per-iteration cost derivation, valid only when `steady`.
#[derive(Debug, Clone)]
pub struct IterationDerivation {
    /// Did the replay reach a fixpoint (second replay identical to the
    /// first, state and scans both)?
    pub steady: bool,
    /// Driver scans of one steady-state iteration, in order.
    pub scans: Vec<ScanEvent>,
}

/// Everything the static analysis derived about one script.
#[derive(Debug, Clone)]
pub struct ScriptReport {
    /// Per-statement facts, one per [`ScriptSpec::statements`] entry.
    pub statements: Vec<StmtReport>,
    /// All findings, in script order.
    pub diagnostics: Vec<Diagnostic>,
    /// Steady-state iteration derivation, when a span was declared.
    pub iteration: Option<IterationDerivation>,
}

impl ScriptReport {
    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// No error-severity findings?
    pub fn ok(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Symbolic peak working-memory footprint of the whole script: the
    /// statement-wise maximum of [`StmtReport::footprint`] under the
    /// large-`n` order. Statements run one at a time and every tracker
    /// releases its charges at statement end, so the script's peak is
    /// its worst statement. External bulk loads
    /// ([`ScriptSpec::loads`]) are *not* included — their staging
    /// footprint belongs to the driver that performs them (and shrinks
    /// when the driver chunks the load).
    pub fn peak_footprint(&self) -> Card {
        self.statements
            .iter()
            .fold(Card::zero(), |acc, s| acc.max(&s.footprint))
    }

    /// Deterministic human-readable rendering (used by golden
    /// snapshots and the CLI `analyze` subcommand).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "statements: {}", self.statements.len());
        for s in &self.statements {
            let flag = if s.mutating { "M" } else { "-" };
            let _ = write!(
                out,
                "[{:>3}] {:<12} {flag} {:>6}B {:>5}t",
                s.index, s.purpose, s.bytes, s.terms
            );
            if !s.scans.is_empty() {
                let scans: Vec<String> = s.scans.iter().map(|(t, c)| format!("{t}={c}")).collect();
                let _ = write!(out, "  scan {}", scans.join(", "));
            }
            if let Some(rows) = &s.output_rows {
                let _ = write!(out, "  out {rows}");
            }
            out.push('\n');
        }
        if let Some(iter) = &self.iteration {
            let _ = writeln!(
                out,
                "iteration: {}",
                if iter.steady {
                    "steady state proven"
                } else {
                    "NOT steady"
                }
            );
            for ev in &iter.scans {
                let _ = writeln!(
                    out,
                    "  [{:>3}] {:<12} scan {} ({})",
                    ev.stmt, ev.purpose, ev.table, ev.rows
                );
            }
        }
        let _ = writeln!(out, "diagnostics: {}", self.diagnostics.len());
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        out
    }
}

/// Byte offset of identifier `ident` in `sql` (case-insensitive,
/// word-boundary match), for positioning diagnostics.
pub(crate) fn find_ident_pos(sql: &str, ident: &str) -> Option<usize> {
    if ident.is_empty() {
        return None;
    }
    let hay = sql.to_ascii_lowercase();
    let needle = ident.to_ascii_lowercase();
    let bytes = hay.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut start = 0;
    while let Some(off) = hay[start..].find(&needle) {
        let i = start + off;
        let end = i + needle.len();
        let before_ok = i == 0 || !is_ident(bytes[i - 1]);
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return Some(i);
        }
        start = i + 1;
    }
    None
}

/// Check a whole script statically. Never executes anything.
pub fn check_script(spec: &ScriptSpec, env: &CheckEnv) -> ScriptReport {
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    // Parse every statement up front; lifecycle analysis needs the
    // whole script at once.
    let mut parsed: Vec<Vec<Statement>> = Vec::with_capacity(spec.statements.len());
    for (i, s) in spec.statements.iter().enumerate() {
        if env.max_statement_len > 0 && s.sql.len() > env.max_statement_len {
            diagnostics.push(Diagnostic {
                severity: Severity::Error,
                kind: DiagnosticKind::TooLong {
                    len: s.sql.len(),
                    max: env.max_statement_len,
                },
                stmt: Some(i),
                purpose: s.purpose.clone(),
                pos: Some(env.max_statement_len),
            });
            // Still parsed and interpreted: an oversized statement is a
            // capacity problem, not a semantic one.
        }
        match parser::parse(&s.sql) {
            Ok(stmts) => parsed.push(stmts),
            Err(e) => {
                let (pos, message) = match e {
                    Error::Lex { pos, message } | Error::Parse { pos, message } => {
                        (Some(pos), message)
                    }
                    other => (None, other.to_string()),
                };
                diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    kind: DiagnosticKind::Parse(message),
                    stmt: Some(i),
                    purpose: s.purpose.clone(),
                    pos,
                });
                parsed.push(Vec::new());
            }
        }
    }

    // Lifecycle pass over the whole script.
    let preexisting: BTreeSet<String> = env.catalog.tables().map(|(n, _)| n.to_string()).collect();
    diagnostics.extend(lifecycle::check(
        &parsed,
        &spec.statements,
        &preexisting,
        &spec.persistent_prefixes,
    ));

    // Main walk: thread catalog + symbolic state through the script.
    let mut catalog = env.catalog.clone();
    let mut state = SymState::new();
    let mut statements: Vec<StmtReport> = Vec::with_capacity(spec.statements.len());
    // Statement indexes whose analysis succeeded — the only ones the
    // steady-state replay re-executes.
    let mut analyzed_ok: Vec<bool> = vec![false; spec.statements.len()];

    let mut iteration: Option<IterationDerivation> = None;
    for (i, script_stmt) in spec.statements.iter().enumerate() {
        // The steady-state replay runs the moment the main walk leaves
        // the iteration span — before cleanup statements tear the work
        // tables down.
        if spec.iteration.as_ref().is_some_and(|span| span.end == i) {
            let span = spec.iteration.clone().unwrap();
            iteration = Some(derive_iteration(
                &span,
                &parsed,
                &analyzed_ok,
                spec,
                &mut state,
                &mut catalog,
                &mut diagnostics,
            ));
        }
        for (_, load) in spec.loads.iter().filter(|(at, _)| *at == i) {
            state.load(&load.table, load.rows.clone(), &load.distinct);
        }
        let mut report = StmtReport {
            index: i,
            purpose: script_stmt.purpose.clone(),
            bytes: script_stmt.sql.len(),
            terms: 0,
            mutating: false,
            scans: Vec::new(),
            output_rows: None,
            footprint: Card::zero(),
        };
        let mut ok = !parsed[i].is_empty();
        for stmt in &parsed[i] {
            // Mutation classification, cross-checked two ways: against
            // the WAL layer's own classifier and against the script
            // author's annotation.
            let derived = mutation::classify(stmt);
            report.mutating |= derived.is_mutating();
            if derived.is_mutating() != crate::engine::is_mutating(stmt) {
                diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    kind: DiagnosticKind::MutationMismatch {
                        expected: crate::engine::is_mutating(stmt),
                        derived: derived.is_mutating(),
                    },
                    stmt: Some(i),
                    purpose: script_stmt.purpose.clone(),
                    pos: Some(0),
                });
            }

            // Expression safety lints. The same denominator repeated
            // across adjacent select items (one per dimension/cluster)
            // reports once.
            let mut hits = Vec::new();
            lints::check(stmt, &mut hits);
            hits.dedup();
            for hit in hits {
                diagnostics.push(Diagnostic {
                    severity: hit.kind.severity(),
                    kind: hit.kind,
                    stmt: Some(i),
                    purpose: script_stmt.purpose.clone(),
                    pos: hit
                        .token
                        .as_deref()
                        .and_then(|t| find_ident_pos(&script_stmt.sql, t)),
                });
            }

            // Semantic analysis + DDL replay. On failure, retry with
            // unbounded limits so DDL effects still apply — otherwise a
            // single over-limit CREATE cascades into bogus
            // unknown-table errors downstream.
            match catalog.apply(stmt, &env.limits) {
                Ok(rep) => report.terms = report.terms.max(rep.complexity.terms),
                Err(e) => {
                    ok = false;
                    diagnostics.push(Diagnostic {
                        severity: Severity::Error,
                        kind: DiagnosticKind::Semantic(e.clone().locate(&script_stmt.sql)),
                        stmt: Some(i),
                        purpose: script_stmt.purpose.clone(),
                        pos: e.locate(&script_stmt.sql).pos,
                    });
                    if let Ok(rep) = catalog.apply(stmt, &Limits::unbounded()) {
                        report.terms = report.terms.max(rep.complexity.terms);
                        ok = true;
                    }
                }
            }

            // Abstract interpretation: footprint against the pre-state,
            // then scans + state transfer. Statements sharing one
            // script entry execute sequentially, each under its own
            // tracker, so their footprints combine by max.
            let fp = state.footprint(stmt, &catalog);
            report.footprint = report.footprint.max(&fp);
            let effect = state.apply(stmt, &catalog);
            report.scans.extend(effect.scans);
            if effect.output_rows.is_some() {
                report.output_rows = effect.output_rows;
            }
        }
        if let Some(exp) = script_stmt.expected_mutating {
            if exp != report.mutating {
                diagnostics.push(Diagnostic {
                    severity: Severity::Error,
                    kind: DiagnosticKind::MutationMismatch {
                        expected: exp,
                        derived: report.mutating,
                    },
                    stmt: Some(i),
                    purpose: script_stmt.purpose.clone(),
                    pos: Some(0),
                });
            }
        }
        analyzed_ok[i] = ok;
        statements.push(report);
    }

    // A span ending exactly at the script's end never hit the in-loop
    // trigger; replay it now.
    if iteration.is_none() {
        if let Some(span) = spec.iteration.clone() {
            iteration = Some(derive_iteration(
                &span,
                &parsed,
                &analyzed_ok,
                spec,
                &mut state,
                &mut catalog,
                &mut diagnostics,
            ));
        }
    }

    ScriptReport {
        statements,
        diagnostics,
        iteration,
    }
}

/// Steady-state proof: replay the iteration span twice on the current
/// state. The main walk already executed it once (warm-up); if replay B
/// and replay C agree on both the resulting state and the scan
/// sequence, every later iteration repeats replay C exactly — that is
/// the per-iteration derivation. Disagreement is a
/// [`DiagnosticKind::NonSteadyState`] error.
#[allow(clippy::too_many_arguments)]
fn derive_iteration(
    span: &Range<usize>,
    parsed: &[Vec<Statement>],
    analyzed_ok: &[bool],
    spec: &ScriptSpec,
    state: &mut SymState,
    catalog: &mut SymbolicCatalog,
    diagnostics: &mut Vec<Diagnostic>,
) -> IterationDerivation {
    let replay = |state: &mut SymState, catalog: &mut SymbolicCatalog| -> Vec<ScanEvent> {
        let mut scans = Vec::new();
        for i in span.clone() {
            if !analyzed_ok.get(i).copied().unwrap_or(false) {
                continue;
            }
            for stmt in &parsed[i] {
                // DDL must replay for schema coherence; analysis errors
                // were already reported in the main walk.
                let _ = catalog.apply(stmt, &Limits::unbounded());
                let effect = state.apply(stmt, catalog);
                for (table, rows) in effect.scans {
                    scans.push(ScanEvent {
                        stmt: i,
                        purpose: spec.statements[i].purpose.clone(),
                        table,
                        rows,
                    });
                }
            }
        }
        scans
    };
    let scans_b = replay(state, catalog);
    let state_b = state.clone();
    let scans_c = replay(state, catalog);
    let steady = state_b == *state && scans_b == scans_c;
    if !steady {
        let detail = if scans_b != scans_c {
            "scan sequence differs between consecutive iterations".to_string()
        } else {
            "table cardinalities keep growing across iterations".to_string()
        };
        diagnostics.push(Diagnostic {
            severity: Severity::Error,
            kind: DiagnosticKind::NonSteadyState { detail },
            stmt: Some(span.start),
            purpose: spec
                .statements
                .get(span.start)
                .map(|s| s.purpose.clone())
                .unwrap_or_default(),
            pos: None,
        });
    }
    IterationDerivation {
        steady,
        scans: scans_c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmts(list: &[(&str, &str)]) -> Vec<ScriptStmt> {
        list.iter().map(|(p, s)| ScriptStmt::new(*p, *s)).collect()
    }

    #[test]
    fn clean_script_with_cleanup_passes() {
        let spec = ScriptSpec {
            statements: stmts(&[
                (
                    "create:t",
                    "CREATE TABLE t (a BIGINT PRIMARY KEY, b DOUBLE)",
                ),
                ("fill", "INSERT INTO t VALUES (1, 2.0), (2, 3.0)"),
                ("read", "SELECT sum(b) FROM t"),
                ("drop:t", "DROP TABLE t"),
            ]),
            ..ScriptSpec::default()
        };
        let report = check_script(&spec, &CheckEnv::default());
        assert!(report.ok(), "unexpected findings: {:?}", report.diagnostics);
        assert!(report.statements[2].scans[0].1 == Card::constant(2));
        assert!(!report.statements[2].mutating);
        assert!(report.statements[1].mutating);
    }

    #[test]
    fn script_peak_footprint_is_statement_wise_max() {
        use crate::resource::{row_width_bytes, AGG_STATE_BYTES, ENTRY_OVERHEAD_BYTES};
        let spec = ScriptSpec {
            statements: stmts(&[
                (
                    "create:t",
                    "CREATE TABLE t (a BIGINT PRIMARY KEY, b DOUBLE)",
                ),
                ("fill", "INSERT INTO t VALUES (1, 2.0), (2, 3.0)"),
                ("read", "SELECT sum(b) FROM t"),
                ("drop:t", "DROP TABLE t"),
            ]),
            ..ScriptSpec::default()
        };
        let report = check_script(&spec, &CheckEnv::default());
        assert!(report.statements[0].footprint.is_zero());
        // The fill stages two rows at the table's two-column width.
        let fill = 2 * row_width_bytes(2) as u128;
        assert_eq!(report.statements[1].footprint.eval(1, 1, 1), fill);
        // The bare aggregate keeps one zero-key group with one state.
        let read = (row_width_bytes(0) + ENTRY_OVERHEAD_BYTES + AGG_STATE_BYTES) as u128;
        assert_eq!(report.statements[2].footprint.eval(1, 1, 1), read);
        assert_eq!(report.peak_footprint().eval(1, 1, 1), fill.max(read));
    }

    #[test]
    fn leaked_table_and_read_after_drop_are_errors() {
        let spec = ScriptSpec {
            statements: stmts(&[
                ("create:t", "CREATE TABLE t (a BIGINT)"),
                ("create:u", "CREATE TABLE u (a BIGINT)"),
                ("drop:u", "DROP TABLE u"),
                ("read", "SELECT a FROM u"),
            ]),
            ..ScriptSpec::default()
        };
        let report = check_script(&spec, &CheckEnv::default());
        let kinds: Vec<&DiagnosticKind> = report.errors().map(|d| &d.kind).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, DiagnosticKind::WorkTableLeak { table } if table == "t")));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, DiagnosticKind::ReadAfterDrop { table } if table == "u")));
    }

    #[test]
    fn persistent_prefix_exempts_checkpoints_from_leaks() {
        let spec = ScriptSpec {
            statements: stmts(&[("create:ckptc", "CREATE TABLE ckptc (a BIGINT)")]),
            persistent_prefixes: vec!["ckpt".into()],
            ..ScriptSpec::default()
        };
        assert!(check_script(&spec, &CheckEnv::default()).ok());
    }

    #[test]
    fn iteration_replay_proves_fixpoint_for_delete_insert_cycle() {
        let n = Card::n();
        let spec = ScriptSpec {
            statements: stmts(&[
                (
                    "create:z",
                    "CREATE TABLE z (rid BIGINT PRIMARY KEY, y1 DOUBLE)",
                ),
                (
                    "create:d",
                    "CREATE TABLE d (rid BIGINT PRIMARY KEY, v DOUBLE)",
                ),
                ("e:clear", "DELETE FROM d"),
                ("e:fill", "INSERT INTO d SELECT rid, y1 * 2.0 FROM z"),
                ("drop:d", "DROP TABLE d"),
                ("drop:z", "DROP TABLE z"),
            ]),
            loads: vec![(
                2,
                TableLoad {
                    table: "z".into(),
                    rows: n.clone(),
                    distinct: vec![("rid".into(), n.clone())],
                },
            )],
            iteration: Some(2..4),
            ..ScriptSpec::default()
        };
        let report = check_script(&spec, &CheckEnv::default());
        assert!(report.ok(), "unexpected findings: {:?}", report.diagnostics);
        let iter = report.iteration.as_ref().unwrap();
        assert!(iter.steady);
        // One steady iteration: DELETE scans d (n rows), INSERT scans z.
        assert_eq!(iter.scans.len(), 2);
        assert_eq!(iter.scans[0].table, "d");
        assert_eq!(iter.scans[0].rows, n);
        assert_eq!(iter.scans[1].table, "z");
        assert_eq!(iter.scans[1].rows, n);
    }

    #[test]
    fn growing_iteration_span_is_rejected_as_non_steady() {
        let spec = ScriptSpec {
            statements: stmts(&[
                ("create:t", "CREATE TABLE t (a BIGINT)"),
                ("grow", "INSERT INTO t VALUES (1)"),
                ("drop:t", "DROP TABLE t"),
            ]),
            iteration: Some(1..2),
            ..ScriptSpec::default()
        };
        let report = check_script(&spec, &CheckEnv::default());
        assert!(!report.iteration.as_ref().unwrap().steady);
        assert!(report
            .errors()
            .any(|d| matches!(d.kind, DiagnosticKind::NonSteadyState { .. })));
    }

    #[test]
    fn oversized_statement_reports_too_long_but_still_interprets() {
        let spec = ScriptSpec {
            statements: stmts(&[
                ("create:t", "CREATE TABLE t (a BIGINT)"),
                ("fill", "INSERT INTO t VALUES (1), (2), (3)"),
                ("drop:t", "DROP TABLE t"),
            ]),
            ..ScriptSpec::default()
        };
        let env = CheckEnv {
            max_statement_len: 30,
            ..CheckEnv::default()
        };
        let report = check_script(&spec, &env);
        assert!(report
            .errors()
            .any(|d| matches!(d.kind, DiagnosticKind::TooLong { len: 34, max: 30 })));
        // The statement was still interpreted: t received 3 rows.
        assert_eq!(report.statements[1].output_rows, Some(Card::constant(3)));
    }

    #[test]
    fn semantic_error_is_positioned_and_reported() {
        let spec = ScriptSpec {
            statements: stmts(&[("read", "SELECT a FROM missing")]),
            ..ScriptSpec::default()
        };
        let report = check_script(&spec, &CheckEnv::default());
        let diag = report.errors().next().unwrap();
        assert!(matches!(diag.kind, DiagnosticKind::Semantic(_)));
        assert_eq!(diag.pos, Some(14));
    }

    #[test]
    fn find_ident_pos_respects_word_boundaries() {
        assert_eq!(find_ident_pos("SELECT a FROM yd", "y"), None);
        assert_eq!(find_ident_pos("SELECT a FROM yd", "yd"), Some(14));
        assert_eq!(find_ident_pos("DROP TABLE IF EXISTS T2", "t2"), Some(21));
        assert_eq!(find_ident_pos("SELECT 1", "t"), None);
    }
}

//! Static mutation classification.
//!
//! The WAL layer decides per statement whether durability framing is
//! needed ([`crate::engine::is_mutating`]); a misclassification there
//! would silently skip logging and lose data on crash recovery. This
//! module re-derives the classification from first principles — *what
//! does the statement write?* — so the script checker can compare the
//! two answers statement-for-statement and flag any drift as an
//! analysis-time error instead of a recovery-time surprise.

use crate::ast::Statement;

/// What executing a statement writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationClass {
    /// Changes the catalog (CREATE/DROP TABLE).
    Catalog {
        /// The table created or dropped.
        table: String,
    },
    /// Changes rows of one table (INSERT/UPDATE/DELETE).
    Data {
        /// The written table.
        table: String,
    },
    /// Writes nothing (SELECT, EXPLAIN).
    ReadOnly,
}

impl MutationClass {
    /// Does this class require WAL framing on a durable database?
    pub fn is_mutating(&self) -> bool {
        !matches!(self, MutationClass::ReadOnly)
    }
}

/// Classify a statement by its write target.
pub fn classify(stmt: &Statement) -> MutationClass {
    match stmt {
        Statement::CreateTable { name, .. } | Statement::DropTable { name, .. } => {
            MutationClass::Catalog {
                table: name.to_ascii_lowercase(),
            }
        }
        Statement::Insert { table, .. }
        | Statement::Update { table, .. }
        | Statement::Delete { table, .. } => MutationClass::Data {
            table: table.to_ascii_lowercase(),
        },
        Statement::Select(_) | Statement::Explain(_) => MutationClass::ReadOnly,
        // EXPLAIN ANALYZE executes its inner statement for real.
        Statement::ExplainAnalyze(inner) => classify(inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::is_mutating;
    use crate::parser::parse_one;

    /// The independent derivation must agree with the WAL layer's own
    /// classifier on every statement shape, including nesting.
    #[test]
    fn classification_agrees_with_wal_layer() {
        let samples = [
            "CREATE TABLE t (a BIGINT)",
            "DROP TABLE IF EXISTS t",
            "INSERT INTO t VALUES (1)",
            "INSERT INTO t SELECT a FROM u",
            "UPDATE t SET a = 1",
            "DELETE FROM t WHERE a = 0",
            "SELECT a FROM t",
            "EXPLAIN SELECT a FROM t",
            "EXPLAIN ANALYZE SELECT a FROM t",
            "EXPLAIN ANALYZE INSERT INTO t VALUES (2)",
        ];
        for sql in samples {
            let stmt = parse_one(sql).unwrap();
            assert_eq!(
                classify(&stmt).is_mutating(),
                is_mutating(&stmt),
                "classification drift on {sql:?}"
            );
        }
    }

    #[test]
    fn write_targets_are_reported() {
        let stmt = parse_one("INSERT INTO YX SELECT rid FROM yp").unwrap();
        assert_eq!(classify(&stmt), MutationClass::Data { table: "yx".into() });
        let stmt = parse_one("EXPLAIN ANALYZE DELETE FROM w").unwrap();
        assert_eq!(classify(&stmt), MutationClass::Data { table: "w".into() });
    }
}

//! Memory budgets and per-statement resource accounting.
//!
//! The paper ran SQLEM inside a parallel DBMS whose workload manager
//! bounded every query's footprint; this module gives the engine the
//! same governance. A [`MemoryBudget`] is a shared, optionally-chained
//! byte limit (per-namespace budgets chain to a server-global parent); a
//! [`ResourceTracker`] accounts one statement's working memory against
//! it and releases everything when the statement finishes.
//!
//! Sizes follow a **deterministic logical model**, not allocator truth:
//! a scalar cell costs [`VALUE_BYTES`], a string adds its UTF-8 length,
//! a row adds [`ROW_OVERHEAD_BYTES`], and hash-table entries add
//! [`ENTRY_OVERHEAD_BYTES`]. The model is platform-independent so the
//! peak-memory gauge in [`crate::ExecMetrics`] is bit-identical across
//! machines and across serial vs parallel execution: charges are
//! **monotone** for the life of a statement (nothing is released until
//! the statement ends), so the statement's peak equals its total — an
//! order-independent sum that does not depend on worker interleaving.
//!
//! What is charged: join build sides and broadcast index tables
//! (`exec/select.rs`), materialized output rows, merged GROUP BY tables
//! (`exec/aggregate.rs`), staged INSERT/UPDATE buffers (`exec/dml.rs`)
//! and bulk-load staging (`Database::bulk_insert`). Committed table
//! storage is *not* charged — the budget governs transient working
//! memory, which is what concurrent sessions contend for.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::Value;

/// Logical size of one scalar cell ([`Value`]), in bytes.
pub const VALUE_BYTES: u64 = 16;

/// Logical per-row overhead (vector header + length), in bytes.
pub const ROW_OVERHEAD_BYTES: u64 = 24;

/// Logical per-entry overhead of a hash-table slot (join build map,
/// GROUP BY table), in bytes.
pub const ENTRY_OVERHEAD_BYTES: u64 = 16;

/// Logical size of one aggregate accumulator state, in bytes.
pub const AGG_STATE_BYTES: u64 = 32;

/// Logical size of one [`Value`] under the accounting model.
pub fn value_bytes(v: &Value) -> u64 {
    match v {
        Value::Str(s) => VALUE_BYTES + s.len() as u64,
        _ => VALUE_BYTES,
    }
}

/// Logical size of one row (cells plus [`ROW_OVERHEAD_BYTES`]).
pub fn row_bytes(row: &[Value]) -> u64 {
    ROW_OVERHEAD_BYTES + row.iter().map(value_bytes).sum::<u64>()
}

/// Logical size of a row of `arity` scalar cells — the symbolic-width
/// counterpart of [`row_bytes`], shared with the plancheck footprint
/// model so static predictions and runtime charges use the same ruler.
pub fn row_width_bytes(arity: usize) -> u64 {
    ROW_OVERHEAD_BYTES + arity as u64 * VALUE_BYTES
}

struct BudgetInner {
    /// Byte limit; `u64::MAX` means "track but never reject".
    limit: u64,
    used: AtomicU64,
    peak: AtomicU64,
    parent: Option<MemoryBudget>,
}

/// A shared byte budget, cloneable across threads and sessions.
///
/// Budgets chain: charging a namespace budget also charges its parent
/// (the server-global budget), and either level can reject. All
/// counters are atomic; a clone observes the same live state.
#[derive(Clone)]
pub struct MemoryBudget {
    inner: Arc<BudgetInner>,
}

impl std::fmt::Debug for MemoryBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryBudget")
            .field("limit", &self.inner.limit)
            .field("used", &self.used())
            .field("peak", &self.peak())
            .finish()
    }
}

impl MemoryBudget {
    /// A budget capped at `limit_bytes`.
    pub fn new(limit_bytes: u64) -> Self {
        MemoryBudget {
            inner: Arc::new(BudgetInner {
                limit: limit_bytes,
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                parent: None,
            }),
        }
    }

    /// A budget that tracks usage but never rejects a charge — useful
    /// to observe peak footprint without governing it.
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// A child budget capped at `limit_bytes` whose charges also count
    /// against (and can be rejected by) `parent`.
    pub fn child_of(parent: &MemoryBudget, limit_bytes: u64) -> Self {
        MemoryBudget {
            inner: Arc::new(BudgetInner {
                limit: limit_bytes,
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                parent: Some(parent.clone()),
            }),
        }
    }

    /// The configured limit in bytes (`u64::MAX` when unlimited).
    pub fn limit(&self) -> u64 {
        self.inner.limit
    }

    /// Bytes currently charged at this level.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::SeqCst)
    }

    /// High-water mark of [`MemoryBudget::used`] since creation.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::SeqCst)
    }

    /// Charge `bytes` at this level only; returns the new total, or the
    /// total that would have resulted if it exceeds the limit.
    fn charge_local(&self, bytes: u64) -> std::result::Result<u64, u64> {
        let after = self
            .inner
            .used
            .fetch_add(bytes, Ordering::SeqCst)
            .saturating_add(bytes);
        if after > self.inner.limit {
            self.inner.used.fetch_sub(bytes, Ordering::SeqCst);
            return Err(after);
        }
        self.inner.peak.fetch_max(after, Ordering::SeqCst);
        Ok(after)
    }

    /// Charge `bytes` against this budget and every ancestor. On
    /// rejection (at any level) nothing remains charged and the typed
    /// transient [`Error::ResourceExhausted`] names the tightest
    /// offended limit.
    pub fn try_charge(&self, context: &str, bytes: u64) -> Result<()> {
        if let Some(parent) = &self.inner.parent {
            parent.try_charge(context, bytes)?;
        }
        if let Err(would_be) = self.charge_local(bytes) {
            if let Some(parent) = &self.inner.parent {
                parent.release(bytes);
            }
            return Err(Error::resource_exhausted(
                context,
                would_be,
                self.inner.limit,
            ));
        }
        Ok(())
    }

    /// Return `bytes` to this budget and every ancestor.
    pub fn release(&self, bytes: u64) {
        self.inner.used.fetch_sub(bytes, Ordering::SeqCst);
        if let Some(parent) = &self.inner.parent {
            parent.release(bytes);
        }
    }
}

/// Per-statement working-memory account.
///
/// Created once per executed statement; every allocating operator
/// charges it. Charges are monotone while the statement runs (peak =
/// total, independent of worker interleaving) and are released in one
/// piece when the tracker drops — whether the statement committed or
/// aborted, no bytes leak into the shared [`MemoryBudget`].
#[derive(Debug, Default)]
pub struct ResourceTracker {
    budget: Option<MemoryBudget>,
    charged: AtomicU64,
}

impl ResourceTracker {
    /// A tracker accounting against `budget` (pure gauge when `None`).
    pub fn new(budget: Option<MemoryBudget>) -> Self {
        ResourceTracker {
            budget,
            charged: AtomicU64::new(0),
        }
    }

    /// Charge `bytes` of working memory for `context`. Fails with the
    /// typed transient [`Error::ResourceExhausted`] when the budget (or
    /// any of its ancestors) would be exceeded; on failure the tracker
    /// and budget are left exactly as before the call.
    pub fn charge(&self, context: &str, bytes: u64) -> Result<()> {
        if bytes == 0 {
            return Ok(());
        }
        if let Some(budget) = &self.budget {
            budget.try_charge(context, bytes)?;
        }
        self.charged.fetch_add(bytes, Ordering::SeqCst);
        Ok(())
    }

    /// Total bytes charged by this statement so far. Because charges
    /// are monotone, this is also the statement's peak footprint.
    pub fn charged(&self) -> u64 {
        self.charged.load(Ordering::SeqCst)
    }
}

impl Drop for ResourceTracker {
    fn drop(&mut self) {
        if let Some(budget) = &self.budget {
            budget.release(self.charged.load(Ordering::SeqCst));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_follow_the_logical_model() {
        assert_eq!(value_bytes(&Value::Int(1)), 16);
        assert_eq!(value_bytes(&Value::Double(1.5)), 16);
        assert_eq!(value_bytes(&Value::Null), 16);
        assert_eq!(value_bytes(&Value::str("abcd")), 20);
        assert_eq!(row_bytes(&[Value::Int(1), Value::Double(2.0)]), 24 + 32);
        assert_eq!(row_width_bytes(2), 24 + 32);
    }

    #[test]
    fn charges_accumulate_and_release_on_drop() {
        let budget = MemoryBudget::new(1000);
        {
            let tracker = ResourceTracker::new(Some(budget.clone()));
            tracker.charge("join build", 400).unwrap();
            tracker.charge("group table", 100).unwrap();
            assert_eq!(tracker.charged(), 500);
            assert_eq!(budget.used(), 500);
            assert_eq!(budget.peak(), 500);
        }
        assert_eq!(budget.used(), 0, "drop releases everything");
        assert_eq!(budget.peak(), 500, "peak survives the release");
    }

    #[test]
    fn over_budget_charge_is_typed_and_leaves_no_residue() {
        let budget = MemoryBudget::new(100);
        let tracker = ResourceTracker::new(Some(budget.clone()));
        tracker.charge("staged insert", 80).unwrap();
        let err = tracker.charge("staged insert", 40).unwrap_err();
        match &err {
            Error::ResourceExhausted {
                context,
                used_bytes,
                budget_bytes,
            } => {
                assert_eq!(context, "staged insert");
                assert_eq!(*used_bytes, 120);
                assert_eq!(*budget_bytes, 100);
            }
            other => panic!("unexpected {other}"),
        }
        assert!(err.is_transient());
        assert_eq!(tracker.charged(), 80, "failed charge not recorded");
        assert_eq!(budget.used(), 80, "failed charge rolled back");
    }

    #[test]
    fn chained_budgets_reject_at_either_level_and_roll_back() {
        let global = MemoryBudget::new(150);
        let ns_a = MemoryBudget::child_of(&global, 100);
        let ns_b = MemoryBudget::child_of(&global, 100);
        ns_a.try_charge("a", 90).unwrap();
        // Child limit trips first.
        assert!(matches!(
            ns_a.try_charge("a", 20),
            Err(Error::ResourceExhausted {
                budget_bytes: 100,
                ..
            })
        ));
        assert_eq!(global.used(), 90, "rejected charge left no residue");
        // Global limit trips even though the sibling has room.
        assert!(matches!(
            ns_b.try_charge("b", 80),
            Err(Error::ResourceExhausted {
                budget_bytes: 150,
                ..
            })
        ));
        assert_eq!(ns_b.used(), 0);
        assert_eq!(global.used(), 90);
        ns_a.release(90);
        assert_eq!(global.used(), 0);
    }

    #[test]
    fn unlimited_budget_tracks_but_never_rejects() {
        let budget = MemoryBudget::unlimited();
        let tracker = ResourceTracker::new(Some(budget.clone()));
        tracker.charge("scan", u64::MAX / 4).unwrap();
        assert_eq!(budget.peak(), u64::MAX / 4);
    }

    #[test]
    fn gauge_only_tracker_never_fails() {
        let tracker = ResourceTracker::new(None);
        tracker.charge("anything", u64::MAX / 2).unwrap();
        assert_eq!(tracker.charged(), u64::MAX / 2);
    }
}

//! Table schemas: column definitions and primary-key metadata.

use crate::error::{Error, Result};
use crate::value::DataType;

/// Definition of one table column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name, stored lowercase (identifiers are case-insensitive).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
}

impl Column {
    /// Create a column; the name is lowercased.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Column {
            name: name.into().to_ascii_lowercase(),
            ty,
        }
    }

    /// Shorthand for a DOUBLE column.
    pub fn double(name: impl Into<String>) -> Self {
        Column::new(name, DataType::Double)
    }

    /// Shorthand for a BIGINT column.
    pub fn bigint(name: impl Into<String>) -> Self {
        Column::new(name, DataType::BigInt)
    }

    /// Shorthand for a VARCHAR column.
    pub fn varchar(name: impl Into<String>) -> Self {
        Column::new(name, DataType::Varchar)
    }
}

/// The schema of a table: ordered columns plus an optional primary key.
///
/// The primary key is a set of column positions; when present the table
/// maintains a hash index over it and enforces uniqueness, mirroring the
/// "primary index" every SQLEM table declares (paper §2.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
    primary_key: Vec<usize>,
}

impl Schema {
    /// Build a schema, validating that column names are unique and every
    /// primary-key column exists.
    pub fn new(columns: Vec<Column>, primary_key_names: &[&str]) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|d| d.name == c.name) {
                return Err(Error::DuplicateColumn(c.name.clone()));
            }
        }
        let mut primary_key = Vec::with_capacity(primary_key_names.len());
        for name in primary_key_names {
            let lname = name.to_ascii_lowercase();
            let idx = columns
                .iter()
                .position(|c| c.name == lname)
                .ok_or_else(|| Error::UnknownColumn(lname.clone()))?;
            if primary_key.contains(&idx) {
                return Err(Error::DuplicateColumn(lname));
            }
            primary_key.push(idx);
        }
        Ok(Schema {
            columns,
            primary_key,
        })
    }

    /// A schema with no primary key.
    pub fn keyless(columns: Vec<Column>) -> Result<Self> {
        Schema::new(columns, &[])
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Positions of primary-key columns (empty = no key).
    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    /// True iff the table has a declared primary key.
    pub fn has_primary_key(&self) -> bool {
        !self.primary_key.is_empty()
    }

    /// Position of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lname = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lname)
    }

    /// Column definition by position.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_columns() {
        let err = Schema::new(vec![Column::double("x"), Column::double("X")], &[]).unwrap_err();
        assert_eq!(err, Error::DuplicateColumn("x".into()));
    }

    #[test]
    fn resolves_pk_by_name_case_insensitively() {
        let s = Schema::new(vec![Column::bigint("RID"), Column::double("val")], &["rid"]).unwrap();
        assert_eq!(s.primary_key(), &[0]);
        assert!(s.has_primary_key());
        assert_eq!(s.column_index("Rid"), Some(0));
    }

    #[test]
    fn rejects_unknown_pk_column() {
        let err = Schema::new(vec![Column::double("x")], &["y"]).unwrap_err();
        assert_eq!(err, Error::UnknownColumn("y".into()));
    }

    #[test]
    fn rejects_repeated_pk_column() {
        let err = Schema::new(
            vec![Column::bigint("rid"), Column::bigint("v")],
            &["rid", "rid"],
        )
        .unwrap_err();
        assert!(matches!(err, Error::DuplicateColumn(_)));
    }

    #[test]
    fn compound_primary_key_positions() {
        let s = Schema::new(
            vec![
                Column::bigint("rid"),
                Column::bigint("v"),
                Column::double("val"),
            ],
            &["rid", "v"],
        )
        .unwrap();
        assert_eq!(s.primary_key(), &[0, 1]);
        assert_eq!(s.arity(), 3);
    }
}

//! Execution statistics: scan accounting.
//!
//! The paper's §3.5 cost analysis counts *table scans by cardinality*: one
//! hybrid EM iteration performs `2k+3` scans of tables with `n` rows plus
//! one scan of a table with `pn` rows. The engine records every full pass
//! over a table's rows (driver scans, hash-build scans, broadcast builds,
//! UPDATE/DELETE passes) together with the table's row count at scan time,
//! so the claim can be checked programmatically (see the `scans` bench
//! binary and `tests/scan_counts.rs`).

use std::collections::HashMap;

/// One recorded scan event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanEvent {
    /// Table that was scanned.
    pub table: String,
    /// Row count of the table when the scan happened.
    pub rows: usize,
    /// True when this pass fed a join build side (hash build, broadcast
    /// or UPDATE…FROM materialization) rather than driving the query.
    ///
    /// The paper's §3.5 accounting attributes a join to a single scan of
    /// its big (driver) input — the second input is read through the
    /// primary-index/hash side. Filtering on `!build` reproduces that
    /// metric; counting everything gives physical passes.
    pub build: bool,
}

/// Cumulative execution statistics for a [`crate::engine::Database`].
#[derive(Debug, Default, Clone)]
pub struct Stats {
    scans: Vec<ScanEvent>,
    statements: u64,
    rows_inserted: u64,
    rows_updated: u64,
    rows_deleted: u64,
}

impl Stats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Record a full pass over `table` (which currently has `rows` rows).
    /// `build` marks build-side passes; see [`ScanEvent::build`].
    pub fn record_scan(&mut self, table: &str, rows: usize, build: bool) {
        self.scans.push(ScanEvent {
            table: table.to_string(),
            rows,
            build,
        });
    }

    /// Record one executed statement.
    pub fn record_statement(&mut self) {
        self.statements += 1;
    }

    /// Record inserted rows.
    pub fn record_inserts(&mut self, n: usize) {
        self.rows_inserted += n as u64;
    }

    /// Record updated rows.
    pub fn record_updates(&mut self, n: usize) {
        self.rows_updated += n as u64;
    }

    /// Record deleted rows.
    pub fn record_deletes(&mut self, n: usize) {
        self.rows_deleted += n as u64;
    }

    /// All scan events since creation / the last reset, in order.
    pub fn scan_events(&self) -> &[ScanEvent] {
        &self.scans
    }

    /// Total number of scans.
    pub fn total_scans(&self) -> usize {
        self.scans.len()
    }

    /// Number of scans per table name.
    pub fn scans_by_table(&self) -> HashMap<String, usize> {
        let mut m = HashMap::new();
        for e in &self.scans {
            *m.entry(e.table.clone()).or_insert(0) += 1;
        }
        m
    }

    /// Number of scans of tables whose row count was at least `min_rows`.
    pub fn scans_with_at_least(&self, min_rows: usize) -> usize {
        self.scans.iter().filter(|e| e.rows >= min_rows).count()
    }

    /// Number of *driver* scans (excluding join build sides) of tables
    /// with at least `min_rows` rows.
    ///
    /// This is the paper's §3.5 cost metric: "2k+3 scans on tables having
    /// n rows, and one scan on a table having pn rows" counts each join
    /// once, by its streamed input. Tiny parameter tables (C, R, W, GMM —
    /// at most `k` or `p` rows) fall below any sensible threshold.
    pub fn driver_scans_with_at_least(&self, min_rows: usize) -> usize {
        self.scans
            .iter()
            .filter(|e| !e.build && e.rows >= min_rows)
            .count()
    }

    /// Scan events with at least `min_rows` rows, for inspection.
    pub fn large_scans(&self, min_rows: usize) -> Vec<&ScanEvent> {
        self.scans.iter().filter(|e| e.rows >= min_rows).collect()
    }

    /// Statements executed.
    pub fn statements(&self) -> u64 {
        self.statements
    }

    /// Rows inserted.
    pub fn rows_inserted(&self) -> u64 {
        self.rows_inserted
    }

    /// Rows updated.
    pub fn rows_updated(&self) -> u64 {
        self.rows_updated
    }

    /// Rows deleted.
    pub fn rows_deleted(&self) -> u64 {
        self.rows_deleted
    }

    /// Clear all counters.
    pub fn reset(&mut self) {
        *self = Stats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_accounting() {
        let mut s = Stats::new();
        s.record_scan("y", 1000, false);
        s.record_scan("y", 1000, true);
        s.record_scan("w", 9, false);
        assert_eq!(s.total_scans(), 3);
        assert_eq!(s.scans_by_table()["y"], 2);
        assert_eq!(s.scans_with_at_least(100), 2);
        assert_eq!(s.driver_scans_with_at_least(100), 1);
        assert_eq!(s.large_scans(100).len(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = Stats::new();
        s.record_scan("y", 10, false);
        s.record_statement();
        s.record_inserts(5);
        s.reset();
        assert_eq!(s.total_scans(), 0);
        assert_eq!(s.statements(), 0);
        assert_eq!(s.rows_inserted(), 0);
    }

    #[test]
    fn dml_counters_accumulate() {
        let mut s = Stats::new();
        s.record_inserts(3);
        s.record_inserts(2);
        s.record_updates(1);
        s.record_deletes(4);
        assert_eq!(s.rows_inserted(), 5);
        assert_eq!(s.rows_updated(), 1);
        assert_eq!(s.rows_deleted(), 4);
    }
}

//! Byte-level primitives shared by the WAL and the snapshot codec:
//! little-endian integer framing, a length-prefixed [`Value`] encoding
//! and a table-driven CRC-32 (IEEE 802.3 polynomial, the same checksum
//! zlib/PNG use). Everything here is hand-rolled so the durability
//! layer stays dependency-free.

use crate::error::{Error, Result};
use crate::value::Value;

/// Append a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed (`u32`) UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A cursor over an immutable byte slice. Every read is bounds-checked
/// and returns [`Error::Corruption`] on overrun — decoding never panics
/// on truncated or garbage input.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context string used in corruption errors ("wal record", …).
    what: &'static str,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice; `what` names the container for error messages.
    pub fn new(buf: &'a [u8], what: &'static str) -> Self {
        Reader { buf, pos: 0, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset from the start of the slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::corruption(format!(
                "{}: truncated at byte {} (needed {n} more, had {})",
                self.what,
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::corruption(format!("{}: invalid utf-8 string", self.what)))
    }
}

/// Value tags for the binary codec. Stable on-disk numbers — do not
/// reorder.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_STR: u8 = 3;

/// Append one [`Value`]: a 1-byte tag then the fixed/length-prefixed
/// payload. Doubles are stored as raw IEEE-754 bits so the round-trip
/// is bit-exact (NaN payloads and signed zeros included).
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Int(i) => {
            buf.push(TAG_INT);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            buf.push(TAG_DOUBLE);
            buf.extend_from_slice(&d.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            put_str(buf, s);
        }
    }
}

/// Decode one [`Value`] written by [`put_value`].
pub fn read_value(r: &mut Reader<'_>) -> Result<Value> {
    match r.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => Ok(Value::Int(r.u64()? as i64)),
        TAG_DOUBLE => Ok(Value::Double(f64::from_bits(r.u64()?))),
        TAG_STR => Ok(Value::Str(r.str()?.into())),
        tag => Err(Error::corruption(format!("unknown value tag {tag:#04x}"))),
    }
}

/// CRC-32 (IEEE, reflected, init/xorout `0xFFFF_FFFF`) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Table built once; 256 entries of the reflected polynomial.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_byte_flip() {
        let base = b"hello durable world".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), c0, "flip byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn value_codec_round_trips() {
        let vals = vec![
            Value::Null,
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Double(0.0),
            Value::Double(-0.0),
            Value::Double(1.0 / 3.0),
            Value::Double(f64::MIN_POSITIVE),
            Value::Double(f64::NEG_INFINITY),
            Value::Str("".into()),
            Value::Str("it's got 'quotes' and unicode: π≈3.14159".into()),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf, "test");
        for v in &vals {
            let got = read_value(&mut r).unwrap();
            match (v, &got) {
                // NaN-free list, so PartialEq is fine; -0.0 needs bits.
                (Value::Double(a), Value::Double(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(v, &got),
            }
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn nan_payload_survives_bit_exact() {
        let weird_nan = f64::from_bits(0x7FF8_DEAD_BEEF_0001);
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Double(weird_nan));
        let mut r = Reader::new(&buf, "test");
        match read_value(&mut r).unwrap() {
            Value::Double(d) => assert_eq!(d.to_bits(), weird_nan.to_bits()),
            other => panic!("expected double, got {other:?}"),
        }
    }

    #[test]
    fn truncated_input_is_corruption_not_panic() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Str("hello".into()));
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut], "test");
            assert!(
                matches!(read_value(&mut r), Err(Error::Corruption { .. })),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn unknown_tag_is_corruption() {
        let mut r = Reader::new(&[0xFE], "test");
        assert!(matches!(read_value(&mut r), Err(Error::Corruption { .. })));
    }
}

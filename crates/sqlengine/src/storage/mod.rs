//! On-disk persistence primitives for the durability layer.
//!
//! [`codec`] holds the byte-level building blocks (little-endian
//! framing, the binary [`crate::value::Value`] encoding and CRC-32);
//! [`snapshot`] is the whole-catalog image the WAL compacts into. The
//! log itself lives in [`crate::wal`]; [`crate::Database::open_durable`]
//! ties the pieces together.

pub mod codec;
pub mod snapshot;

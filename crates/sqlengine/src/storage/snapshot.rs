//! Snapshot codec: a whole-catalog image used by WAL compaction.
//!
//! A snapshot captures every table (schema, primary key, rows) plus a
//! WAL sequence-number `watermark`: the sequence number the log resumes
//! at, i.e. one past the last statement the snapshot includes. On
//! recovery the snapshot is loaded first and WAL frames with
//! `seq < watermark` are skipped, so a crash *between* writing the
//! snapshot and truncating the log replays nothing twice.
//!
//! ## File format (`snapshot.bin`)
//!
//! ```text
//! magic   b"SQLEMSNAP1\n"
//! body    u64 watermark
//!         u32 table_count
//!         table*   str  name
//!                  u32  column_count
//!                  col* str name, u8 dtype (0=BIGINT 1=DOUBLE 2=VARCHAR)
//!                  u32  pk_count, u32* pk column positions
//!                  u64  row_count
//!                  row* value* (codec tags, see storage::codec)
//! crc     u32 crc32(body)
//! ```
//!
//! Writes go to `snapshot.tmp`, which is fsynced and atomically renamed
//! over `snapshot.bin` — readers either see the old complete snapshot or
//! the new complete snapshot, never a partial one. A leftover
//! `snapshot.tmp` (crash mid-write) is deleted on open.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::schema::{Column, Schema};
use crate::storage::codec::{crc32, put_str, put_u32, put_u64, put_value, read_value, Reader};
use crate::table::{Row, Table};
use crate::value::DataType;

/// Magic prefix identifying a snapshot file (versioned).
pub const SNAPSHOT_MAGIC: &[u8] = b"SQLEMSNAP1\n";
/// Final snapshot file name within the database directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Scratch name the snapshot is staged under before the atomic rename.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

fn dtype_tag(ty: DataType) -> u8 {
    match ty {
        DataType::BigInt => 0,
        DataType::Double => 1,
        DataType::Varchar => 2,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::BigInt),
        1 => Ok(DataType::Double),
        2 => Ok(DataType::Varchar),
        _ => Err(Error::corruption(format!(
            "snapshot: unknown column type tag {tag:#04x}"
        ))),
    }
}

/// Serialize the catalog to snapshot bytes (magic + body + crc).
pub fn encode_snapshot(catalog: &Catalog, watermark: u64) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, watermark);
    let tables = catalog.tables_sorted();
    put_u32(&mut body, tables.len() as u32);
    for table in tables {
        put_str(&mut body, table.name());
        let schema = table.schema();
        put_u32(&mut body, schema.arity() as u32);
        for col in schema.columns() {
            put_str(&mut body, &col.name);
            body.push(dtype_tag(col.ty));
        }
        put_u32(&mut body, schema.primary_key().len() as u32);
        for &idx in schema.primary_key() {
            put_u32(&mut body, idx as u32);
        }
        put_u64(&mut body, table.len() as u64);
        for row in table.rows() {
            for v in row.iter() {
                put_value(&mut body, v);
            }
        }
    }
    let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + body.len() + 4);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    let crc = crc32(&body);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode snapshot bytes back into a catalog plus the sequence
/// watermark. Any structural defect — bad magic, short file, checksum
/// mismatch, unknown tags, duplicate keys — is [`Error::Corruption`]:
/// a snapshot is only ever written complete, so unlike a WAL tail there
/// is no "torn" case to forgive.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(Catalog, u64)> {
    let Some(rest) = bytes.strip_prefix(SNAPSHOT_MAGIC) else {
        return Err(Error::corruption("snapshot: bad magic"));
    };
    if rest.len() < 4 {
        return Err(Error::corruption("snapshot: missing checksum"));
    }
    let (body, crc_bytes) = rest.split_at(rest.len() - 4);
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    let actual = crc32(body);
    if stored != actual {
        return Err(Error::corruption(format!(
            "snapshot: checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )));
    }
    let mut r = Reader::new(body, "snapshot");
    let watermark = r.u64()?;
    let table_count = r.u32()? as usize;
    let mut catalog = Catalog::new();
    for _ in 0..table_count {
        let name = r.str()?;
        let ncols = r.u32()? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let col_name = r.str()?;
            let ty = dtype_from_tag(r.u8()?)?;
            columns.push(Column::new(col_name, ty));
        }
        let npk = r.u32()? as usize;
        let mut pk_names: Vec<String> = Vec::with_capacity(npk);
        for _ in 0..npk {
            let idx = r.u32()? as usize;
            let col = columns.get(idx).ok_or_else(|| {
                Error::corruption(format!(
                    "snapshot: table {name}: primary-key column index {idx} out of range"
                ))
            })?;
            pk_names.push(col.name.clone());
        }
        let pk_refs: Vec<&str> = pk_names.iter().map(String::as_str).collect();
        let schema = Schema::new(columns, &pk_refs)
            .map_err(|e| Error::corruption(format!("snapshot: table {name}: bad schema: {e}")))?;
        let arity = schema.arity();
        let nrows = r.u64()? as usize;
        let mut rows: Vec<Row> = Vec::with_capacity(nrows.min(1 << 20));
        for _ in 0..nrows {
            let mut vals = Vec::with_capacity(arity);
            for _ in 0..arity {
                vals.push(read_value(&mut r)?);
            }
            rows.push(vals.into_boxed_slice());
        }
        let table = Table::from_rows(&name, schema, rows)
            .map_err(|e| Error::corruption(format!("snapshot: table {name}: bad rows: {e}")))?;
        catalog.install_table(table);
    }
    if r.remaining() != 0 {
        return Err(Error::corruption(format!(
            "snapshot: {} trailing bytes after last table",
            r.remaining()
        )));
    }
    Ok((catalog, watermark))
}

/// Path of the live snapshot inside a database directory.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Write the catalog as a snapshot: stage to `snapshot.tmp`, fsync,
/// atomically rename over `snapshot.bin`, then fsync the directory so
/// the rename itself is durable.
pub fn write_snapshot(dir: &Path, catalog: &Catalog, watermark: u64) -> Result<()> {
    let bytes = encode_snapshot(catalog, watermark);
    let tmp = dir.join(SNAPSHOT_TMP);
    let mut f = fs::File::create(&tmp).map_err(|e| Error::io("create snapshot.tmp", e))?;
    f.write_all(&bytes)
        .map_err(|e| Error::io("write snapshot.tmp", e))?;
    f.sync_all()
        .map_err(|e| Error::io("sync snapshot.tmp", e))?;
    drop(f);
    fs::rename(&tmp, snapshot_path(dir)).map_err(|e| Error::io("rename snapshot", e))?;
    sync_dir(dir)?;
    Ok(())
}

/// Load the snapshot if one exists. Removes a leftover `snapshot.tmp`
/// from an interrupted write (it was never acknowledged).
pub fn read_snapshot(dir: &Path) -> Result<Option<(Catalog, u64)>> {
    let tmp = dir.join(SNAPSHOT_TMP);
    if tmp.exists() {
        fs::remove_file(&tmp).map_err(|e| Error::io("remove stale snapshot.tmp", e))?;
    }
    let path = snapshot_path(dir);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(Error::io("read snapshot", e)),
    };
    decode_snapshot(&bytes).map(Some)
}

/// fsync a directory so a rename/create within it is durable.
pub fn sync_dir(dir: &Path) -> Result<()> {
    // Directory fsync is a POSIX-ism; on platforms where opening a
    // directory fails, the rename is still atomic and we proceed.
    if let Ok(d) = fs::File::open(dir) {
        d.sync_all().map_err(|e| Error::io("sync directory", e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(
            vec![
                Column::bigint("rid"),
                Column::double("v"),
                Column::varchar("tag"),
            ],
            &["rid"],
        )
        .unwrap();
        let rows = vec![
            vec![
                Value::Int(1),
                Value::Double(1.0 / 3.0),
                Value::Str("a".into()),
            ]
            .into_boxed_slice(),
            vec![Value::Int(2), Value::Double(-0.0), Value::Null].into_boxed_slice(),
        ];
        c.install_table(Table::from_rows("y", schema, rows).unwrap());
        let keyless = Schema::keyless(vec![Column::double("w")]).unwrap();
        c.install_table(Table::from_rows("w", keyless, vec![]).unwrap());
        c
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = sample_catalog();
        let bytes = encode_snapshot(&c, 42);
        let (c2, seq) = decode_snapshot(&bytes).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(c2.table_names(), c.table_names());
        let y = c2.table("y").unwrap();
        assert_eq!(y.len(), 2);
        assert_eq!(y.schema().primary_key(), &[0]);
        match &y.rows()[0][1] {
            Value::Double(d) => assert_eq!(d.to_bits(), (1.0f64 / 3.0).to_bits()),
            other => panic!("expected double, got {other:?}"),
        }
        match &y.rows()[1][1] {
            Value::Double(d) => assert!(d.is_sign_negative() && *d == 0.0),
            other => panic!("expected -0.0, got {other:?}"),
        }
        assert_eq!(y.rows()[1][2], Value::Null);
        assert!(c2.table("w").unwrap().is_empty());
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let bytes = encode_snapshot(&sample_catalog(), 7);
        // Flip one byte at a sample of positions (every byte is slow in
        // debug builds for big images; this image is small, do them all).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_snapshot(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_corruption() {
        let bytes = encode_snapshot(&sample_catalog(), 7);
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    decode_snapshot(&bytes[..cut]),
                    Err(Error::Corruption { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn file_round_trip_and_stale_tmp_cleanup() {
        let dir = std::env::temp_dir().join(format!("sqlem_snap_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let c = sample_catalog();
        write_snapshot(&dir, &c, 9).unwrap();
        // Simulate a crash mid-rewrite: a garbage tmp file is left over.
        fs::write(dir.join(SNAPSHOT_TMP), b"partial garbage").unwrap();
        let (c2, seq) = read_snapshot(&dir).unwrap().expect("snapshot present");
        assert_eq!(seq, 9);
        assert_eq!(c2.table_names(), c.table_names());
        assert!(!dir.join(SNAPSHOT_TMP).exists(), "stale tmp removed");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_is_none() {
        let dir = std::env::temp_dir().join(format!("sqlem_snap_none_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        assert!(read_snapshot(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }
}

//! In-memory table storage with an optional primary-key hash index.
//!
//! Rows are boxed slices of [`Value`]; the table is a `Vec` of rows plus a
//! hash index from primary-key tuples to row positions when the schema
//! declares a key. The index gives O(1) duplicate detection on insert —
//! the "primary index" behaviour the paper relies on (§2.6) — and fast
//! point lookups for UPDATE/DELETE with key predicates.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;

/// A stored row.
pub type Row = Box<[Value]>;

/// Build a row from an iterator of values.
pub fn row_from<I: IntoIterator<Item = Value>>(vals: I) -> Row {
    vals.into_iter().collect::<Vec<_>>().into_boxed_slice()
}

/// One table: schema + rows + optional PK index.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    /// PK tuple -> position in `rows`. Present iff the schema has a key.
    index: Option<HashMap<Row, usize>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let index = schema.has_primary_key().then(HashMap::new);
        Table {
            name: name.into().to_ascii_lowercase(),
            schema,
            rows: Vec::new(),
            index,
        }
    }

    /// Rebuild a table from a schema plus stored rows (snapshot load).
    /// Re-validates arity and primary-key uniqueness so a corrupted
    /// snapshot cannot install an inconsistent index.
    pub fn from_rows(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Result<Self> {
        let mut table = Table::new(name, schema);
        table.insert_many(rows)?;
        Ok(table)
    }

    /// Table name (lowercase).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Extract the PK tuple of a candidate row.
    fn key_of(&self, row: &[Value]) -> Row {
        self.schema
            .primary_key()
            .iter()
            .map(|&i| row[i].clone())
            .collect()
    }

    /// Insert one row. Values must already be coerced to the schema types
    /// (the executor does that). Enforces arity and PK uniqueness.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                table: self.name.clone(),
                expected: self.schema.arity(),
                actual: row.len(),
            });
        }
        if let Some(index) = &mut self.index {
            let key = self
                .schema
                .primary_key()
                .iter()
                .map(|&i| row[i].clone())
                .collect::<Row>();
            match index.entry(key) {
                std::collections::hash_map::Entry::Occupied(_) => {
                    return Err(Error::DuplicateKey {
                        table: self.name.clone(),
                    });
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(self.rows.len());
                }
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Bulk insert with pre-reserved capacity. On error the table may
    /// retain a prefix of `rows`; use [`Table::insert_all_or_rollback`]
    /// when statement atomicity is required.
    pub fn insert_many<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> Result<usize> {
        let iter = rows.into_iter();
        let (lo, _) = iter.size_hint();
        self.rows.reserve(lo);
        if let Some(index) = &mut self.index {
            index.reserve(lo);
        }
        let mut n = 0;
        for row in iter {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Atomic bulk insert: either every row lands or none do. On a
    /// mid-batch failure (duplicate key, arity) the rows inserted so far
    /// are popped back off and their index entries removed, restoring
    /// the table to its pre-statement state — the staging half of the
    /// stage-and-swap semantics that make statement retries safe.
    pub fn insert_all_or_rollback(&mut self, rows: Vec<Row>) -> Result<usize> {
        let start = self.rows.len();
        self.rows.reserve(rows.len());
        if let Some(index) = &mut self.index {
            index.reserve(rows.len());
        }
        let total = rows.len();
        let mut failure = None;
        for row in rows {
            if let Err(e) = self.insert(row) {
                failure = Some(e);
                break;
            }
        }
        let Some(e) = failure else {
            return Ok(total);
        };
        while self.rows.len() > start {
            let row = self.rows.pop().expect("len > start implies non-empty");
            let key: Row = self
                .schema
                .primary_key()
                .iter()
                .map(|&i| row[i].clone())
                .collect();
            if let Some(index) = &mut self.index {
                index.remove(&key);
            }
        }
        Err(e)
    }

    /// Point lookup by full primary-key tuple. `None` when the table has no
    /// key or no matching row.
    pub fn lookup(&self, key: &[Value]) -> Option<&Row> {
        let index = self.index.as_ref()?;
        index.get(key).map(|&pos| &self.rows[pos])
    }

    /// Delete every row (keeps allocation via `clear`).
    pub fn truncate(&mut self) -> usize {
        let n = self.rows.len();
        self.rows.clear();
        if let Some(index) = &mut self.index {
            index.clear();
        }
        n
    }

    /// Delete rows matching `pred`; returns how many were removed. The PK
    /// index is rebuilt afterwards (deletes are rare in the SQLEM workload;
    /// the paper explicitly prefers DROP/CREATE over bulk DELETE §3.6).
    pub fn delete_where<F: FnMut(&[Value]) -> bool>(&mut self, mut pred: F) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        let removed = before - self.rows.len();
        if removed > 0 {
            self.rebuild_index();
        }
        removed
    }

    /// Apply `f` to every row (UPDATE). `f` returns true when it
    /// modified the row. **Atomic**: the updates are staged on a copy of
    /// the rows and swapped in only if every evaluation succeeds (and,
    /// when `touches_key`, only if the updated keys are still unique) —
    /// a failed UPDATE leaves the table exactly as it was, so retrying
    /// the statement is safe. Returns the number of modified rows.
    pub fn update_where<F: FnMut(&mut [Value]) -> Result<bool>>(
        &mut self,
        mut f: F,
        touches_key: bool,
    ) -> Result<usize> {
        let mut new_rows = self.rows.clone();
        let mut n = 0;
        for row in &mut new_rows {
            if f(row)? {
                n += 1;
            }
        }
        if n == 0 {
            return Ok(0);
        }
        if touches_key && self.index.is_some() {
            // Build the replacement index before committing anything;
            // a duplicate key aborts with the table untouched.
            let mut new_index = HashMap::with_capacity(new_rows.len());
            for (pos, row) in new_rows.iter().enumerate() {
                let key: Row = self
                    .schema
                    .primary_key()
                    .iter()
                    .map(|&i| row[i].clone())
                    .collect();
                if new_index.insert(key, pos).is_some() {
                    return Err(Error::DuplicateKey {
                        table: self.name.clone(),
                    });
                }
            }
            self.index = Some(new_index);
        }
        self.rows = new_rows;
        Ok(n)
    }

    fn rebuild_index(&mut self) {
        if !self.try_rebuild_index() {
            // delete_where cannot introduce duplicates; this branch is
            // unreachable but kept defensive.
            unreachable!("index rebuild after delete found duplicates");
        }
    }

    fn try_rebuild_index(&mut self) -> bool {
        let Some(index) = &mut self.index else {
            return true;
        };
        index.clear();
        index.reserve(self.rows.len());
        for (pos, row) in self.rows.iter().enumerate() {
            let key: Row = self
                .schema
                .primary_key()
                .iter()
                .map(|&i| row[i].clone())
                .collect();
            if index.insert(key, pos).is_some() {
                return false;
            }
        }
        true
    }

    /// Clone of key extraction for external callers (executor point lookups).
    pub fn key_for_row(&self, row: &[Value]) -> Row {
        self.key_of(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn yd_schema() -> Schema {
        Schema::new(vec![Column::bigint("rid"), Column::double("d1")], &["rid"]).unwrap()
    }

    fn r(vals: Vec<Value>) -> Row {
        vals.into_boxed_slice()
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = Table::new("YD", yd_schema());
        t.insert(r(vec![Value::Int(1), Value::Double(0.5)]))
            .unwrap();
        t.insert(r(vec![Value::Int(2), Value::Double(1.5)]))
            .unwrap();
        assert_eq!(t.len(), 2);
        let found = t.lookup(&[Value::Int(2)]).unwrap();
        assert_eq!(found[1], Value::Double(1.5));
        assert!(t.lookup(&[Value::Int(3)]).is_none());
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = Table::new("yd", yd_schema());
        t.insert(r(vec![Value::Int(1), Value::Double(0.5)]))
            .unwrap();
        let err = t
            .insert(r(vec![Value::Int(1), Value::Double(9.9)]))
            .unwrap_err();
        assert_eq!(err, Error::DuplicateKey { table: "yd".into() });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn cross_type_keys_collide() {
        // Int(1) and Double(1.0) are the same key — matters because
        // generated SQL mixes integer literals and computed doubles.
        let mut t = Table::new("yd", yd_schema());
        t.insert(r(vec![Value::Int(1), Value::Double(0.0)]))
            .unwrap();
        let err = t.insert(r(vec![Value::Double(1.0), Value::Double(0.0)]));
        assert!(err.is_err());
    }

    #[test]
    fn arity_checked() {
        let mut t = Table::new("yd", yd_schema());
        let err = t.insert(r(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, Error::ArityMismatch { .. }));
    }

    #[test]
    fn truncate_clears_rows_and_index() {
        let mut t = Table::new("yd", yd_schema());
        t.insert(r(vec![Value::Int(1), Value::Double(0.5)]))
            .unwrap();
        assert_eq!(t.truncate(), 1);
        assert!(t.is_empty());
        // Key is free again.
        t.insert(r(vec![Value::Int(1), Value::Double(0.7)]))
            .unwrap();
    }

    #[test]
    fn delete_where_rebuilds_index() {
        let mut t = Table::new("yd", yd_schema());
        for i in 0..10 {
            t.insert(r(vec![Value::Int(i), Value::Double(i as f64)]))
                .unwrap();
        }
        let removed = t.delete_where(|row| matches!(row[0], Value::Int(i) if i % 2 == 0));
        assert_eq!(removed, 5);
        assert!(t.lookup(&[Value::Int(2)]).is_none());
        assert!(t.lookup(&[Value::Int(3)]).is_some());
    }

    #[test]
    fn update_where_detects_key_collision() {
        let mut t = Table::new("yd", yd_schema());
        t.insert(r(vec![Value::Int(1), Value::Double(0.0)]))
            .unwrap();
        t.insert(r(vec![Value::Int(2), Value::Double(0.0)]))
            .unwrap();
        // Set every rid to 7 → collision.
        let err = t.update_where(
            |row| {
                row[0] = Value::Int(7);
                Ok(true)
            },
            true,
        );
        assert!(err.is_err());
    }

    #[test]
    fn update_non_key_columns() {
        let mut t = Table::new("yd", yd_schema());
        t.insert(r(vec![Value::Int(1), Value::Double(0.0)]))
            .unwrap();
        let n = t
            .update_where(
                |row| {
                    row[1] = Value::Double(5.0);
                    Ok(true)
                },
                false,
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(t.rows()[0][1], Value::Double(5.0));
    }

    #[test]
    fn keyless_table_allows_duplicates() {
        let schema = Schema::keyless(vec![Column::double("w")]).unwrap();
        let mut t = Table::new("w", schema);
        t.insert(r(vec![Value::Double(0.5)])).unwrap();
        t.insert(r(vec![Value::Double(0.5)])).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.lookup(&[Value::Double(0.5)]).is_none());
    }
}

//! Runtime values and their scalar semantics.
//!
//! The engine stores three scalar types, which is all the SQLEM workload
//! needs: 64-bit integers (row ids, cluster ids, counts), 64-bit floats
//! (every statistical quantity) and strings (only used by a few metadata
//! columns and tests). `NULL` is a first-class value with SQL semantics:
//! arithmetic propagates it, comparisons in WHERE treat it as "unknown"
//! (filtered out), and aggregates skip it — the hybrid E step relies on this
//! via `CASE WHEN sump>0 THEN ln(sump) END` producing NULL llh cells that
//! `SUM` must ignore.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};

/// Declared type of a table column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    BigInt,
    /// 64-bit IEEE-754 float ("DOUBLE PRECISION" / "FLOAT").
    Double,
    /// UTF-8 string.
    Varchar,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::BigInt => write!(f, "BIGINT"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Varchar => write!(f, "VARCHAR"),
        }
    }
}

/// A runtime scalar value.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// SQL NULL.
    #[default]
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// String.
    Str(Box<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Box<str>>) -> Self {
        Value::Str(s.into())
    }

    /// True iff this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The [`DataType`] of a non-null value; `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::BigInt),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Varchar),
        }
    }

    /// Numeric view of the value as an `f64`.
    ///
    /// Integers widen losslessly for the magnitudes the engine works with.
    /// Returns `None` for NULL and strings.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Integer view; `Double` converts only when it is an exact integer.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Double(d) if d.fract() == 0.0 && d.abs() < 9.0e15 => Some(*d as i64),
            _ => None,
        }
    }

    /// Coerce this value to `ty` for storage, per SQL assignment rules.
    ///
    /// NULL is storable in any column. Int ↔ Double widen/narrow (narrowing
    /// requires exactness). Everything else is a [`Error::TypeMismatch`].
    pub fn coerce_to(&self, ty: DataType) -> Result<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(_), DataType::BigInt) => Ok(self.clone()),
            (Value::Double(_), DataType::Double) => Ok(self.clone()),
            (Value::Str(_), DataType::Varchar) => Ok(self.clone()),
            (Value::Int(i), DataType::Double) => Ok(Value::Double(*i as f64)),
            (Value::Double(d), DataType::BigInt) => {
                if d.fract() == 0.0 && d.abs() < 9.0e15 {
                    Ok(Value::Int(*d as i64))
                } else {
                    Err(Error::TypeMismatch {
                        context: format!("cannot store non-integral {d} in BIGINT column"),
                    })
                }
            }
            (v, ty) => Err(Error::TypeMismatch {
                context: format!("cannot store {v} in {ty} column"),
            }),
        }
    }

    /// SQL three-valued truthiness: `Some(bool)` for known, `None` for NULL.
    pub fn truthiness(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Int(i) => Some(*i != 0),
            Value::Double(d) => Some(*d != 0.0),
            Value::Str(s) => Some(!s.is_empty()),
        }
    }

    /// SQL equality (`=`): NULL compared to anything is unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (Value::Str(a), Value::Str(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        })
    }

    /// SQL ordering comparison; `None` when either side is NULL or the types
    /// are not comparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// Total ordering used by ORDER BY and sort-based operators: NULLs sort
    /// first, numbers before strings, NaN after all other numbers.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Double(_) => 1,
                Value::Str(_) => 2,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                let x = a.as_f64().unwrap();
                let y = b.as_f64().unwrap();
                x.total_cmp(&y)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Grouping/join-key equality: unlike SQL `=`, NULL equals NULL here
/// (GROUP BY puts NULLs in one group) and `1 = 1.0`.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => {
                    // Normalize so that hashing and equality agree: treat
                    // -0.0 == 0.0 and NaN == NaN.
                    if x.is_nan() && y.is_nan() {
                        true
                    } else {
                        x == y
                    }
                }
                _ => false,
            },
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
            v => {
                state.write_u8(1);
                // Hash the canonical f64 bit pattern so Int(1) and
                // Double(1.0) land in the same bucket, matching PartialEq.
                let x = v.as_f64().unwrap();
                let bits = if x.is_nan() {
                    f64::NAN.to_bits()
                } else if x == 0.0 {
                    0u64 // collapse -0.0 and +0.0
                } else {
                    x.to_bits()
                };
                state.write_u64(bits);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => {
                if d.fract() == 0.0 && d.abs() < 1e15 {
                    write!(f, "{d:.1}")
                } else {
                    write!(f, "{d}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into_boxed_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_propagates_in_sql_eq() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn int_double_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Double(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Double(3.0)));
        assert_ne!(Value::Int(3), Value::Double(3.5));
    }

    #[test]
    fn negative_zero_groups_with_zero() {
        assert_eq!(Value::Double(-0.0), Value::Double(0.0));
        assert_eq!(hash_of(&Value::Double(-0.0)), hash_of(&Value::Double(0.0)));
    }

    #[test]
    fn nan_is_self_equal_for_grouping() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
    }

    #[test]
    fn null_groups_with_null_but_not_values() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
        assert_ne!(Value::Null, Value::str(""));
    }

    #[test]
    fn coercion_widens_and_narrows_exactly() {
        assert_eq!(
            Value::Int(2).coerce_to(DataType::Double).unwrap(),
            Value::Double(2.0)
        );
        assert_eq!(
            Value::Double(5.0).coerce_to(DataType::BigInt).unwrap(),
            Value::Int(5)
        );
        assert!(Value::Double(5.5).coerce_to(DataType::BigInt).is_err());
        assert!(Value::str("x").coerce_to(DataType::Double).is_err());
        assert_eq!(
            Value::Null.coerce_to(DataType::Double).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn total_cmp_sorts_nulls_first_and_nan_last() {
        let mut vals = [
            Value::Double(f64::NAN),
            Value::Int(2),
            Value::Null,
            Value::Double(-1.0),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Double(-1.0));
        assert_eq!(vals[2], Value::Int(2));
        assert!(matches!(vals[3], Value::Double(d) if d.is_nan()));
    }

    #[test]
    fn sql_cmp_none_on_null_or_mixed_types() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::str("a").sql_cmp(&Value::Int(1)), None);
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Double(2.0)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Double(1.5).to_string(), "1.5");
        assert_eq!(Value::Double(2.0).to_string(), "2.0");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }

    #[test]
    fn truthiness_follows_sql() {
        assert_eq!(Value::Null.truthiness(), None);
        assert_eq!(Value::Int(0).truthiness(), Some(false));
        assert_eq!(Value::Double(0.5).truthiness(), Some(true));
    }
}

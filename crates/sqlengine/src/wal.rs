//! Checksummed, length-prefixed write-ahead log.
//!
//! Every mutating statement on a durable [`crate::Database`] is framed
//! into the log before its effects are acknowledged:
//!
//! ```text
//! file    magic b"SQLEMWAL1\n", then records back to back
//! record  u32 len, u32 crc32(payload), payload[len]
//! payload 0x01 Begin  { u64 seq }
//!         0x02 Commit { u64 seq }
//!         0x03 Sql    { u64 seq, str sql }
//!         0x04 Bulk   { u64 seq, str table, u32 arity, u64 rows, values }
//! frame   Begin(seq), op(seq)   — appended in one write, pre-execution
//!         Commit(seq)           — appended after the statement applied
//! ```
//!
//! The commit marker is the acknowledgement boundary: a frame without
//! its `Commit` is a statement that failed (or a crash mid-statement)
//! and is skipped on replay. [`scan`] distinguishes two failure modes:
//!
//! - **Torn tail** — the file ends mid-record (a crash interrupted an
//!   append). Only unacknowledged bytes can be torn, so the tail is
//!   silently discarded and the file truncated to the last complete
//!   record.
//! - **Corruption** — a record whose checksum does not match, an
//!   undecodable payload, or frame-grammar violations (a `Commit` with
//!   no open frame, sequence-number mismatch) anywhere before the tail.
//!   That is acknowledged state gone bad: recovery refuses with
//!   [`Error::Corruption`] rather than silently diverging.
//!
//! One ambiguity is inherent to length-prefixed logs: a flipped bit in
//! the *final* record's length field is indistinguishable from a torn
//! append and is truncated rather than reported. Every other
//! single-byte flip or truncation is detected — the recovery invariant
//! (proved by the gated `wal_props` suite) is that [`scan`] returns
//! either an error or a strict prefix of the committed statements,
//! never altered content.

use std::fs;
use std::io::{Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::error::{Error, Result};
use crate::storage::codec::{crc32, put_str, put_u32, put_u64, put_value, read_value, Reader};
use crate::storage::snapshot::sync_dir;
use crate::table::Row;

/// Magic prefix identifying a WAL file (versioned).
pub const WAL_MAGIC: &[u8] = b"SQLEMWAL1\n";
/// Log file name within the database directory.
pub const WAL_FILE: &str = "wal.log";

const TAG_BEGIN: u8 = 0x01;
const TAG_COMMIT: u8 = 0x02;
const TAG_SQL: u8 = 0x03;
const TAG_BULK: u8 = 0x04;

/// A logged operation — the replayable body of one mutating statement.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A statement logged as its rendered SQL text (the common case;
    /// replay re-parses and re-executes it).
    Sql(String),
    /// A bulk load, which has no SQL text: the staged rows are logged
    /// in the binary value codec.
    BulkInsert {
        /// Destination table (lowercase).
        table: String,
        /// The staged rows, already coerced to the table schema.
        rows: Vec<Row>,
    },
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
enum Record {
    Begin { seq: u64 },
    Commit { seq: u64 },
    Op { seq: u64, op: WalOp },
}

fn encode_record(rec: &Record) -> Vec<u8> {
    let mut payload = Vec::new();
    match rec {
        Record::Begin { seq } => {
            payload.push(TAG_BEGIN);
            put_u64(&mut payload, *seq);
        }
        Record::Commit { seq } => {
            payload.push(TAG_COMMIT);
            put_u64(&mut payload, *seq);
        }
        Record::Op { seq, op } => match op {
            WalOp::Sql(sql) => {
                payload.push(TAG_SQL);
                put_u64(&mut payload, *seq);
                put_str(&mut payload, sql);
            }
            WalOp::BulkInsert { table, rows } => {
                payload.push(TAG_BULK);
                put_u64(&mut payload, *seq);
                put_str(&mut payload, table);
                let arity = rows.first().map_or(0, |r| r.len());
                put_u32(&mut payload, arity as u32);
                put_u64(&mut payload, rows.len() as u64);
                for row in rows {
                    for v in row.iter() {
                        put_value(&mut payload, v);
                    }
                }
            }
        },
    }
    let mut out = Vec::with_capacity(8 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8]) -> Result<Record> {
    let mut r = Reader::new(payload, "wal record");
    let rec = match r.u8()? {
        TAG_BEGIN => Record::Begin { seq: r.u64()? },
        TAG_COMMIT => Record::Commit { seq: r.u64()? },
        TAG_SQL => Record::Op {
            seq: r.u64()?,
            op: WalOp::Sql(r.str()?),
        },
        TAG_BULK => {
            let seq = r.u64()?;
            let table = r.str()?;
            let arity = r.u32()? as usize;
            let nrows = r.u64()? as usize;
            let mut rows = Vec::with_capacity(nrows.min(1 << 20));
            for _ in 0..nrows {
                let mut vals = Vec::with_capacity(arity);
                for _ in 0..arity {
                    vals.push(read_value(&mut r)?);
                }
                rows.push(vals.into_boxed_slice());
            }
            Record::Op {
                seq,
                op: WalOp::BulkInsert { table, rows },
            }
        }
        tag => {
            return Err(Error::corruption(format!(
                "wal record: unknown tag {tag:#04x}"
            )))
        }
    };
    if r.remaining() != 0 {
        return Err(Error::corruption(format!(
            "wal record: {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(rec)
}

/// Encode the pre-execution half of a statement frame: `Begin` plus the
/// operation payload, as one byte run (appended with a single write).
pub fn encode_frame(seq: u64, op: &WalOp) -> Vec<u8> {
    let mut bytes = encode_record(&Record::Begin { seq });
    bytes.extend_from_slice(&encode_record(&Record::Op {
        seq,
        op: op.clone(),
    }));
    bytes
}

/// Encode the post-execution commit marker for `seq`.
pub fn encode_commit(seq: u64) -> Vec<u8> {
    encode_record(&Record::Commit { seq })
}

/// Result of validating a WAL byte image.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResult {
    /// Committed operations in log order (the replay list).
    pub committed: Vec<(u64, WalOp)>,
    /// One past the highest sequence number seen in any complete record
    /// (committed or not) — the counter the log resumes at. `0` for an
    /// empty log.
    pub next_seq: u64,
    /// Byte length of the valid prefix (magic + complete records).
    /// Anything past this is a torn tail the caller should truncate.
    pub valid_len: usize,
    /// Sequence numbers whose frame was begun but never committed — a
    /// statement that failed (or was interrupted by a crash) after its
    /// frame hit the log. Exactly-once session recovery uses this to
    /// prove a retried statement was *not* applied.
    pub uncommitted: Vec<u64>,
}

/// Validate a WAL image: check the magic, walk the records, enforce the
/// begin/op/commit frame grammar and collect committed operations.
/// Returns [`Error::Corruption`] for damaged acknowledged state; a torn
/// tail (short record at end-of-file) is reported via a `valid_len`
/// shorter than the input, not an error.
pub fn scan(bytes: &[u8]) -> Result<ScanResult> {
    if bytes.len() < WAL_MAGIC.len() {
        // Crash during file creation, before the magic was synced:
        // nothing was ever acknowledged, treat as an empty log.
        return Ok(ScanResult {
            committed: Vec::new(),
            next_seq: 0,
            valid_len: 0,
            uncommitted: Vec::new(),
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(Error::corruption("wal: bad magic"));
    }
    let mut committed = Vec::new();
    let mut uncommitted = Vec::new();
    let mut next_seq = 0u64;
    let mut pos = WAL_MAGIC.len();
    let mut valid_len = pos;
    // Open frame state: Begin seen (and optionally the op), no Commit yet.
    let mut open: Option<(u64, Option<WalOp>)> = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            break; // torn header
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let stored_crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if remaining - 8 < len {
            break; // torn payload (or a flipped length in the final record)
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        let actual_crc = crc32(payload);
        if actual_crc != stored_crc {
            return Err(Error::corruption(format!(
                "wal: checksum mismatch at byte {pos} (stored {stored_crc:#010x}, \
                 computed {actual_crc:#010x})"
            )));
        }
        let record = decode_payload(payload)?;
        pos += 8 + len;
        valid_len = pos;
        match record {
            Record::Begin { seq } => {
                // A Begin while a frame is open: the previous statement
                // failed before committing — normal, drop it (but record
                // the seq so recovery can prove it never applied).
                if let Some((failed_seq, _)) = open.take() {
                    uncommitted.push(failed_seq);
                }
                open = Some((seq, None));
                next_seq = next_seq.max(seq + 1);
            }
            Record::Op { seq, op } => match &mut open {
                Some((frame_seq, slot @ None)) if *frame_seq == seq => {
                    *slot = Some(op);
                }
                _ => {
                    return Err(Error::corruption(format!(
                        "wal: operation record (seq {seq}) outside an open frame at byte {pos}"
                    )));
                }
            },
            Record::Commit { seq } => match open.take() {
                Some((frame_seq, Some(op))) if frame_seq == seq => {
                    committed.push((seq, op));
                }
                _ => {
                    return Err(Error::corruption(format!(
                        "wal: commit marker (seq {seq}) without a matching frame at byte {pos}"
                    )));
                }
            },
        }
    }
    if let Some((open_seq, _)) = open {
        uncommitted.push(open_seq);
    }
    Ok(ScanResult {
        committed,
        next_seq,
        valid_len,
        uncommitted,
    })
}

/// An open WAL file handle: append, sync, truncate.
#[derive(Debug)]
pub struct Wal {
    file: fs::File,
    path: PathBuf,
    len: u64,
}

/// Path of the log inside a database directory.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

impl Wal {
    /// Open (or create) the log in `dir`, truncating to `valid_len` as
    /// determined by a prior [`scan`] — torn bytes are physically
    /// removed so later appends never interleave with garbage. A fresh
    /// or fully-torn log is (re)initialised with the magic and synced.
    pub fn open(dir: &Path, valid_len: u64) -> Result<Self> {
        let path = wal_path(dir);
        let mut file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| Error::io("open wal", e))?;
        if valid_len < WAL_MAGIC.len() as u64 {
            file.set_len(0).map_err(|e| Error::io("truncate wal", e))?;
            file.write_all(WAL_MAGIC)
                .map_err(|e| Error::io("write wal magic", e))?;
            file.sync_all().map_err(|e| Error::io("sync wal", e))?;
            sync_dir(dir)?;
        } else {
            file.set_len(valid_len)
                .map_err(|e| Error::io("truncate wal", e))?;
            file.sync_all().map_err(|e| Error::io("sync wal", e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| Error::io("seek wal", e))?;
        let len = file.metadata().map_err(|e| Error::io("stat wal", e))?.len();
        Ok(Wal { file, path, len })
    }

    /// Current file length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records (magic only).
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// Append raw record bytes; returns the byte offset the run started
    /// at (used by crash simulation to compute tear points).
    pub fn append(&mut self, bytes: &[u8]) -> Result<u64> {
        let start = self.len;
        self.file
            .write_all(bytes)
            .map_err(|e| Error::io("append wal", e))?;
        self.len += bytes.len() as u64;
        Ok(start)
    }

    /// Truncate the file to `len` bytes (crash simulation: tear a
    /// partially-appended frame at an exact byte boundary).
    pub fn truncate_to(&mut self, len: u64) -> Result<()> {
        self.file
            .set_len(len)
            .map_err(|e| Error::io("truncate wal", e))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| Error::io("seek wal", e))?;
        self.len = len;
        Ok(())
    }

    /// fsync the log — the acknowledgement point of the protocol.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all().map_err(|e| Error::io("sync wal", e))
    }

    /// Reset the log to empty (post-compaction): truncate to the magic
    /// and sync. The snapshot now carries everything the log held.
    pub fn reset(&mut self) -> Result<()> {
        self.truncate_to(WAL_MAGIC.len() as u64)?;
        self.sync()
    }

    /// The log's path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sql(s: &str) -> WalOp {
        WalOp::Sql(s.to_string())
    }

    fn committed_image(frames: &[(u64, WalOp, bool)]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for (seq, op, commit) in frames {
            bytes.extend_from_slice(&encode_frame(*seq, op));
            if *commit {
                bytes.extend_from_slice(&encode_commit(*seq));
            }
        }
        bytes
    }

    #[test]
    fn frame_round_trip() {
        let ops = vec![
            (0, sql("CREATE TABLE y (rid BIGINT)"), true),
            (
                1,
                WalOp::BulkInsert {
                    table: "y".into(),
                    rows: vec![
                        vec![Value::Int(1), Value::Double(0.5)].into_boxed_slice(),
                        vec![Value::Int(2), Value::Null].into_boxed_slice(),
                    ],
                },
                true,
            ),
            (2, sql("UPDATE y SET rid = 3"), true),
        ];
        let bytes = committed_image(&ops);
        let scan = scan(&bytes).unwrap();
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.next_seq, 3);
        assert_eq!(scan.committed.len(), 3);
        for ((seq, op, _), (got_seq, got_op)) in ops.iter().zip(&scan.committed) {
            assert_eq!(seq, got_seq);
            assert_eq!(op, got_op);
        }
    }

    #[test]
    fn uncommitted_frame_is_skipped() {
        // Frame 1 failed in memory (no commit marker); 0 and 2 applied.
        let bytes = committed_image(&[
            (0, sql("s0"), true),
            (1, sql("s1-failed"), false),
            (2, sql("s2"), true),
        ]);
        let scan = scan(&bytes).unwrap();
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(
            scan.committed.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![0, 2]
        );
        assert_eq!(scan.next_seq, 3, "uncommitted seq still bumps the counter");
        assert_eq!(scan.uncommitted, vec![1], "failed frame's seq is reported");
    }

    #[test]
    fn every_truncation_yields_a_prefix() {
        let full = committed_image(&[
            (0, sql("s0"), true),
            (1, sql("statement one with a longer body"), true),
            (2, sql("s2"), true),
        ]);
        let all = scan(&full).unwrap().committed;
        for cut in 0..full.len() {
            let r = scan(&full[..cut]).expect("truncation is never Corruption");
            assert!(
                r.committed.len() <= all.len() && r.committed == all[..r.committed.len()],
                "cut {cut}: not a prefix"
            );
            assert!(r.valid_len <= cut, "cut {cut}: valid_len past the cut");
        }
    }

    #[test]
    fn payload_bit_flip_is_corruption() {
        let bytes = committed_image(&[(0, sql("CREATE TABLE t (a BIGINT)"), true)]);
        // Flip a byte inside the SQL text (well past both headers).
        let mut bad = bytes.clone();
        let pos = bytes.len() - 12;
        bad[pos] ^= 0x01;
        assert!(
            matches!(scan(&bad), Err(Error::Corruption { .. })),
            "flip at {pos}"
        );
    }

    #[test]
    fn flips_detect_or_truncate_never_alter() {
        let full = committed_image(&[(0, sql("s0"), true), (1, sql("s1"), true)]);
        let all = scan(&full).unwrap().committed;
        for i in 0..full.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut bad = full.clone();
                bad[i] ^= bit;
                match scan(&bad) {
                    Err(Error::Corruption { .. }) => {}
                    Err(e) => panic!("flip at {i}: unexpected error {e}"),
                    Ok(r) => assert!(
                        r.committed == all[..r.committed.len().min(all.len())],
                        "flip at byte {i} bit {bit:#04x} silently altered content"
                    ),
                }
            }
        }
    }

    #[test]
    fn commit_without_frame_is_corruption() {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_commit(0));
        assert!(matches!(scan(&bytes), Err(Error::Corruption { .. })));
    }

    #[test]
    fn seq_mismatch_is_corruption() {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_frame(3, &sql("s3")));
        bytes.extend_from_slice(&encode_commit(4));
        assert!(matches!(scan(&bytes), Err(Error::Corruption { .. })));
    }

    #[test]
    fn short_or_missing_magic() {
        assert_eq!(scan(b"").unwrap().valid_len, 0);
        assert_eq!(
            scan(b"SQLE").unwrap().valid_len,
            0,
            "torn magic = fresh log"
        );
        assert!(matches!(
            scan(b"NOTAWALFILE"),
            Err(Error::Corruption { .. })
        ));
    }

    #[test]
    fn wal_file_append_truncate_cycle() {
        let dir = std::env::temp_dir().join(format!("sqlem_wal_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        // Fresh log.
        let mut wal = Wal::open(&dir, 0).unwrap();
        assert!(wal.is_empty());
        let frame = encode_frame(0, &sql("CREATE TABLE t (a BIGINT)"));
        let start = wal.append(&frame).unwrap();
        assert_eq!(start, WAL_MAGIC.len() as u64);
        wal.append(&encode_commit(0)).unwrap();
        wal.sync().unwrap();
        // Tear a second frame mid-way.
        let frame2 = encode_frame(1, &sql("DROP TABLE t"));
        let start2 = wal.append(&frame2).unwrap();
        wal.truncate_to(start2 + 3).unwrap();
        drop(wal);
        // Recovery: frame 0 survives, the torn frame 1 is discarded.
        let bytes = fs::read(wal_path(&dir)).unwrap();
        let r = scan(&bytes).unwrap();
        assert_eq!(r.committed.len(), 1);
        assert_eq!(r.valid_len as u64, start2);
        // Reopen at the valid length: the torn bytes are gone.
        let wal = Wal::open(&dir, r.valid_len as u64).unwrap();
        assert_eq!(wal.len(), start2);
        fs::remove_dir_all(&dir).ok();
    }
}

//! The semantic analyzer's error taxonomy, exercised end-to-end through
//! `Database::execute`: every `AnalyzeErrorKind` a user can trigger, each
//! with its clause tag and (where the source contains the offending
//! identifier) a byte position.

use sqlengine::{AnalyzeErrorKind, Clause, Database, Metric};

fn db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (rid BIGINT PRIMARY KEY, a DOUBLE, b DOUBLE, s VARCHAR)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 1.0, 2.0, 'x'), (2, 3.0, 4.0, 'y')")
        .unwrap();
    db
}

/// Run `sql`, expecting a semantic-analysis rejection; returns the error.
fn analyze_err(db: &mut Database, sql: &str) -> sqlengine::AnalyzeError {
    let err = db.execute(sql).unwrap_err();
    err.as_analyze()
        .unwrap_or_else(|| panic!("expected analyze error for {sql:?}, got {err}"))
        .clone()
}

#[test]
fn unknown_table() {
    let e = analyze_err(&mut db(), "SELECT a FROM nope");
    assert!(matches!(e.kind, AnalyzeErrorKind::UnknownTable(ref t) if t == "nope"));
    assert_eq!(e.clause, Clause::From);
}

#[test]
fn unknown_column_with_position() {
    let sql = "SELECT a, missing FROM t";
    let e = analyze_err(&mut db(), sql);
    assert!(matches!(e.kind, AnalyzeErrorKind::UnknownColumn(ref c) if c == "missing"));
    assert_eq!(e.clause, Clause::Projection);
    assert_eq!(e.pos, Some(sql.find("missing").unwrap()));
}

#[test]
fn unknown_qualified_column() {
    let e = analyze_err(&mut db(), "SELECT t.zzz FROM t");
    assert!(matches!(e.kind, AnalyzeErrorKind::UnknownColumn(ref c) if c == "t.zzz"));
}

#[test]
fn ambiguous_column_across_tables() {
    let mut d = db();
    d.execute("CREATE TABLE u (rid BIGINT PRIMARY KEY, a DOUBLE)")
        .unwrap();
    let e = analyze_err(&mut d, "SELECT a FROM t, u WHERE t.rid = u.rid");
    assert!(matches!(e.kind, AnalyzeErrorKind::AmbiguousColumn(ref c) if c == "a"));
}

#[test]
fn duplicate_table_in_from() {
    let e = analyze_err(&mut db(), "SELECT 1 FROM t, t");
    assert!(matches!(e.kind, AnalyzeErrorKind::DuplicateTable(_)));
    assert_eq!(e.clause, Clause::From);
}

#[test]
fn type_mismatch_string_arithmetic() {
    let e = analyze_err(&mut db(), "SELECT a + s FROM t");
    assert!(matches!(e.kind, AnalyzeErrorKind::TypeMismatch { .. }));
    assert_eq!(e.clause, Clause::Projection);
}

#[test]
fn type_mismatch_numeric_function_on_string() {
    let e = analyze_err(&mut db(), "SELECT exp(s) FROM t");
    assert!(matches!(e.kind, AnalyzeErrorKind::TypeMismatch { .. }));
}

#[test]
fn aggregate_in_where() {
    let e = analyze_err(&mut db(), "SELECT a FROM t WHERE sum(b) > 1");
    assert!(matches!(e.kind, AnalyzeErrorKind::AggregateMisuse(_)));
    assert_eq!(e.clause, Clause::Where);
}

#[test]
fn aggregate_in_group_by() {
    let e = analyze_err(&mut db(), "SELECT count(*) FROM t GROUP BY sum(a)");
    assert!(matches!(e.kind, AnalyzeErrorKind::AggregateMisuse(_)));
    assert_eq!(e.clause, Clause::GroupBy);
}

#[test]
fn nested_aggregates() {
    let e = analyze_err(&mut db(), "SELECT sum(max(a)) FROM t");
    assert!(matches!(e.kind, AnalyzeErrorKind::AggregateMisuse(_)));
}

#[test]
fn naked_column_beside_aggregate() {
    let e = analyze_err(&mut db(), "SELECT a, sum(b) FROM t");
    let AnalyzeErrorKind::AggregateMisuse(msg) = &e.kind else {
        panic!("expected AggregateMisuse, got {:?}", e.kind);
    };
    assert!(msg.contains("GROUP BY"), "{msg}");
}

#[test]
fn having_without_group_or_aggregate() {
    let e = analyze_err(&mut db(), "SELECT a FROM t HAVING a > 1");
    assert!(matches!(e.kind, AnalyzeErrorKind::AggregateMisuse(_)));
    assert_eq!(e.clause, Clause::Having);
}

#[test]
fn unknown_function() {
    let e = analyze_err(&mut db(), "SELECT frobnicate(a) FROM t");
    assert!(matches!(e.kind, AnalyzeErrorKind::UnknownFunction(ref n) if n == "frobnicate"));
}

#[test]
fn wrong_scalar_arity() {
    let e = analyze_err(&mut db(), "SELECT exp(a, b) FROM t");
    assert!(
        matches!(e.kind, AnalyzeErrorKind::WrongArity { ref function, .. } if function == "exp")
    );
}

#[test]
fn wrong_aggregate_arity() {
    let e = analyze_err(&mut db(), "SELECT sum(a, b) FROM t");
    assert!(matches!(
        e.kind,
        AnalyzeErrorKind::WrongArity { .. } | AnalyzeErrorKind::AggregateMisuse(_)
    ));
}

#[test]
fn insert_arity_mismatch() {
    let e = analyze_err(&mut db(), "INSERT INTO t VALUES (3, 1.0)");
    assert!(matches!(
        e.kind,
        AnalyzeErrorKind::ArityMismatch {
            expected: 4,
            actual: 2,
            ..
        }
    ));
    assert_eq!(e.clause, Clause::Values);
}

#[test]
fn insert_type_mismatch() {
    let e = analyze_err(&mut db(), "INSERT INTO t VALUES (3, 1.0, 2.0, 4.5)");
    assert!(matches!(e.kind, AnalyzeErrorKind::TypeMismatch { .. }));
}

#[test]
fn update_unknown_target_column() {
    let e = analyze_err(&mut db(), "UPDATE t SET zzz = 1");
    assert!(matches!(e.kind, AnalyzeErrorKind::UnknownColumn(_)));
    assert_eq!(e.clause, Clause::Set);
}

#[test]
fn delete_where_unknown_column() {
    let e = analyze_err(&mut db(), "DELETE FROM t WHERE ghost = 1");
    assert!(matches!(e.kind, AnalyzeErrorKind::UnknownColumn(ref c) if c == "ghost"));
    assert_eq!(e.clause, Clause::Where);
}

#[test]
fn create_duplicate_column() {
    let e = analyze_err(&mut db(), "CREATE TABLE d (x BIGINT, x DOUBLE)");
    assert!(matches!(e.kind, AnalyzeErrorKind::DuplicateColumn(ref c) if c == "x"));
    assert_eq!(e.clause, Clause::Ddl);
}

#[test]
fn drop_unknown_table() {
    let e = analyze_err(&mut db(), "DROP TABLE phantom");
    assert!(matches!(e.kind, AnalyzeErrorKind::UnknownTable(_)));
}

#[test]
fn term_limit_produces_too_complex() {
    let mut d = db();
    d.config_mut().limits.max_terms = 8;
    let e = analyze_err(&mut d, "SELECT a+a+a+a+a+a+a+a+a+a FROM t");
    assert!(matches!(
        e.kind,
        AnalyzeErrorKind::TooComplex {
            metric: Metric::Terms,
            ..
        }
    ));
    assert_eq!(e.clause, Clause::Statement);
}

#[test]
fn statements_after_failed_one_do_not_run() {
    // Analysis is interleaved with execution per statement, so the first
    // bad statement stops the batch and earlier effects stand.
    let mut d = db();
    let err = d
        .execute_all("CREATE TABLE ok1 (x BIGINT); SELECT nope FROM t; CREATE TABLE ok2 (x BIGINT)")
        .unwrap_err();
    assert!(err.as_analyze().is_some());
    assert!(d.contains_table("ok1"));
    assert!(!d.contains_table("ok2"));
}

#[test]
fn valid_statements_still_run() {
    // The analyzer must never reject SQL the executor accepts: a spread
    // of dialect features the SQLEM generators rely on.
    let mut d = db();
    for sql in [
        "SELECT rid, exp(-0.5 * a) AS p1, a ** 2 FROM t WHERE b > 1 ORDER BY p1",
        "SELECT s, count(*), sum(a + b) FROM t GROUP BY s HAVING count(*) >= 1",
        "SELECT CASE WHEN a > b THEN a ELSE b END FROM t",
        "SELECT least(a, b), greatest(a, 1.0E-100), coalesce(s, 'z') FROM t",
        "SELECT t.a, u.a FROM t, u WHERE t.rid = u.rid",
        "UPDATE t SET a = a + 1, b = a * 2 WHERE rid = 1",
    ] {
        if sql.contains("u.") {
            d.execute("CREATE TABLE u (rid BIGINT PRIMARY KEY, a DOUBLE)")
                .unwrap();
            d.execute("INSERT INTO u VALUES (1, 9.0)").unwrap();
        }
        d.execute(sql)
            .unwrap_or_else(|e| panic!("{sql:?} should be accepted: {e}"));
    }
}

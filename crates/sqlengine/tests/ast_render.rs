//! The AST renderer produces SQL the parser accepts back.

use sqlengine::ast::{BinOp, Expr, Statement};
use sqlengine::parser::parse_one;

#[test]
fn render_examples_are_readable() {
    let e = Expr::bin(
        BinOp::Div,
        Expr::qcol("y", "val"),
        Expr::Func {
            name: "exp".into(),
            args: vec![Expr::num(-0.5)],
        },
    );
    assert_eq!(e.to_string(), "((y.val) / (exp((-0.5))))");
    let parsed = parse_one(&format!("SELECT {e}")).unwrap();
    assert!(matches!(parsed, Statement::Select(_)));
}

//! Edge cases of the SQL surface that the SQLEM generators rely on but
//! the main integration tests don't isolate.

use sqlengine::{Database, Error, Value};

fn db() -> Database {
    Database::new()
}

#[test]
fn lateral_alias_chain_three_deep() {
    // p1 -> sump -> normalized: each item sees the previous ones.
    let mut d = db();
    d.execute("CREATE TABLE t (x DOUBLE)").unwrap();
    d.execute("INSERT INTO t VALUES (3.0)").unwrap();
    let r = d
        .execute("SELECT x * 2 AS a, a + 1 AS b, b * b AS c FROM t")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Double(6.0));
    assert_eq!(r.rows[0][1], Value::Double(7.0));
    assert_eq!(r.rows[0][2], Value::Double(49.0));
}

#[test]
fn lateral_alias_does_not_shadow_base_column() {
    let mut d = db();
    d.execute("CREATE TABLE t (x DOUBLE)").unwrap();
    d.execute("INSERT INTO t VALUES (5.0)").unwrap();
    // Alias `x` defined from x+1; the second item's `x` must still be the
    // base column (base wins over laterals).
    let r = d.execute("SELECT x + 1 AS x, x AS orig FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Double(6.0));
    assert_eq!(r.rows[0][1], Value::Double(5.0));
}

#[test]
fn four_way_join_with_mixed_hash_and_broadcast() {
    let mut d = db();
    d.execute(
        "CREATE TABLE a (k BIGINT PRIMARY KEY, v DOUBLE);
         CREATE TABLE b (k BIGINT PRIMARY KEY, v DOUBLE);
         CREATE TABLE one (c DOUBLE);
         CREATE TABLE two (d DOUBLE)",
    )
    .unwrap();
    d.execute(
        "INSERT INTO a VALUES (1, 10.0), (2, 20.0);
         INSERT INTO b VALUES (1, 1.0), (2, 2.0);
         INSERT INTO one VALUES (100.0);
         INSERT INTO two VALUES (1000.0)",
    )
    .unwrap();
    let r = d
        .execute(
            "SELECT a.v + b.v + one.c + two.d FROM a, one, b, two \
             WHERE a.k = b.k ORDER BY a.k",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Double(1111.0));
    assert_eq!(r.rows[1][0], Value::Double(1122.0));
}

#[test]
fn join_key_expressions_not_just_columns() {
    let mut d = db();
    d.execute(
        "CREATE TABLE a (k BIGINT PRIMARY KEY);
         CREATE TABLE b (k BIGINT PRIMARY KEY)",
    )
    .unwrap();
    d.execute("INSERT INTO a VALUES (1), (2), (3); INSERT INTO b VALUES (2), (4), (6)")
        .unwrap();
    // a.k * 2 = b.k is an equi-join on computed keys.
    let r = d
        .execute("SELECT a.k, b.k FROM a, b WHERE a.k * 2 = b.k ORDER BY a.k")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[2][0], Value::Int(3));
    assert_eq!(r.rows[2][1], Value::Int(6));
}

#[test]
fn residual_predicate_after_join() {
    let mut d = db();
    d.execute(
        "CREATE TABLE a (k BIGINT PRIMARY KEY, v DOUBLE);
         CREATE TABLE b (k BIGINT PRIMARY KEY, v DOUBLE)",
    )
    .unwrap();
    d.execute(
        "INSERT INTO a VALUES (1, 5.0), (2, 1.0);
         INSERT INTO b VALUES (1, 2.0), (2, 9.0)",
    )
    .unwrap();
    // a.v > b.v cannot be a hash key; it must filter joined rows.
    let r = d
        .execute("SELECT a.k FROM a, b WHERE a.k = b.k AND a.v > b.v")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(1));
}

#[test]
fn group_by_expression_key() {
    let mut d = db();
    d.execute("CREATE TABLE t (x BIGINT)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (2), (3), (4), (5)")
        .unwrap();
    let r = d
        .execute("SELECT mod(x, 2), count(*) FROM t GROUP BY mod(x, 2) ORDER BY mod(x, 2)")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][1], Value::Int(2)); // evens: 2, 4
    assert_eq!(r.rows[1][1], Value::Int(3)); // odds: 1, 3, 5
}

#[test]
fn scalar_function_of_aggregate() {
    let mut d = db();
    d.execute("CREATE TABLE t (x DOUBLE)").unwrap();
    d.execute("INSERT INTO t VALUES (1.0), (2.0), (3.0)")
        .unwrap();
    // ln(sum(x)) — Fig. 7's YSUMP llh shape.
    let r = d.execute("SELECT ln(sum(x)) FROM t").unwrap();
    assert!((r.scalar_f64().unwrap() - 6.0f64.ln()).abs() < 1e-12);
}

#[test]
fn aggregate_inside_case_condition() {
    let mut d = db();
    d.execute("CREATE TABLE t (x DOUBLE)").unwrap();
    d.execute("INSERT INTO t VALUES (0.25), (0.25)").unwrap();
    let r = d
        .execute("SELECT CASE WHEN sum(x) > 0 THEN ln(sum(x)) END FROM t")
        .unwrap();
    assert!((r.scalar_f64().unwrap() - 0.5f64.ln()).abs() < 1e-12);
    d.execute("DELETE FROM t").unwrap();
    d.execute("INSERT INTO t VALUES (0.0)").unwrap();
    let r = d
        .execute("SELECT CASE WHEN sum(x) > 0 THEN ln(sum(x)) END FROM t")
        .unwrap();
    assert!(r.rows[0][0].is_null());
}

#[test]
fn update_where_referencing_from_table() {
    let mut d = db();
    d.execute(
        "CREATE TABLE t (k BIGINT PRIMARY KEY, x DOUBLE);
         CREATE TABLE limits (lo DOUBLE)",
    )
    .unwrap();
    d.execute("INSERT INTO t VALUES (1, 5.0), (2, 50.0); INSERT INTO limits VALUES (10.0)")
        .unwrap();
    let r = d
        .execute("UPDATE t FROM limits SET x = 0.0 WHERE x > limits.lo")
        .unwrap();
    assert_eq!(r.rows_affected, 1);
    let r = d.execute("SELECT x FROM t ORDER BY k").unwrap();
    assert_eq!(r.rows[0][0], Value::Double(5.0));
    assert_eq!(r.rows[1][0], Value::Double(0.0));
}

#[test]
fn update_pk_collision_is_detected_and_loud() {
    let mut d = db();
    d.execute("CREATE TABLE t (k BIGINT PRIMARY KEY)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    let err = d.execute("UPDATE t SET k = 9").unwrap_err();
    assert!(matches!(err, Error::DuplicateKey { .. }));
}

#[test]
fn insert_select_into_keyed_table_enforces_uniqueness() {
    let mut d = db();
    d.execute(
        "CREATE TABLE src (k BIGINT, x DOUBLE);
         CREATE TABLE dst (k BIGINT PRIMARY KEY, x DOUBLE)",
    )
    .unwrap();
    d.execute("INSERT INTO src VALUES (1, 1.0), (1, 2.0)")
        .unwrap();
    let err = d
        .execute("INSERT INTO dst SELECT k, x FROM src")
        .unwrap_err();
    assert!(matches!(err, Error::DuplicateKey { .. }));
}

#[test]
fn empty_table_aggregate_vs_group_by() {
    let mut d = db();
    d.execute("CREATE TABLE t (b BIGINT, x DOUBLE)").unwrap();
    // Implicit aggregation over empty input: one row.
    let r = d.execute("SELECT count(*), sum(x) FROM t").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert!(r.rows[0][1].is_null());
    // GROUP BY over empty input: zero rows.
    let r = d.execute("SELECT b, sum(x) FROM t GROUP BY b").unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn unqualified_ambiguity_is_an_error_but_qualification_fixes_it() {
    let mut d = db();
    d.execute("CREATE TABLE a (v DOUBLE); CREATE TABLE b (v DOUBLE)")
        .unwrap();
    d.execute("INSERT INTO a VALUES (1.0); INSERT INTO b VALUES (2.0)")
        .unwrap();
    let err = d.execute("SELECT v FROM a, b").unwrap_err();
    let analysis = err.as_analyze().expect("analyzer should reject this");
    assert!(matches!(
        analysis.kind,
        sqlengine::AnalyzeErrorKind::AmbiguousColumn(_)
    ));
    let r = d.execute("SELECT a.v, b.v FROM a, b").unwrap();
    assert_eq!(r.rows[0][0], Value::Double(1.0));
    assert_eq!(r.rows[0][1], Value::Double(2.0));
}

#[test]
fn cross_join_cardinality() {
    let mut d = db();
    d.execute("CREATE TABLE a (x BIGINT); CREATE TABLE b (y BIGINT)")
        .unwrap();
    d.execute("INSERT INTO a VALUES (1), (2), (3); INSERT INTO b VALUES (10), (20)")
        .unwrap();
    let r = d.execute("SELECT x, y FROM a, b").unwrap();
    assert_eq!(r.rows.len(), 6);
}

#[test]
fn division_null_propagation_vs_zero_error() {
    let mut d = db();
    d.execute("CREATE TABLE t (x DOUBLE, y DOUBLE)").unwrap();
    d.execute("INSERT INTO t VALUES (1.0, NULL)").unwrap();
    // NULL divisor → NULL, not an error.
    let r = d.execute("SELECT x / y FROM t").unwrap();
    assert!(r.rows[0][0].is_null());
}

#[test]
fn order_by_multiple_keys_mixed_direction() {
    let mut d = db();
    d.execute("CREATE TABLE t (a BIGINT, b BIGINT)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 1), (1, 2), (2, 1), (2, 2)")
        .unwrap();
    let r = d
        .execute("SELECT a, b FROM t ORDER BY a DESC, b ASC")
        .unwrap();
    let got: Vec<(i64, i64)> = r
        .rows
        .iter()
        .map(|row| (row[0].as_i64().unwrap(), row[1].as_i64().unwrap()))
        .collect();
    assert_eq!(got, vec![(2, 1), (2, 2), (1, 1), (1, 2)]);
}

#[test]
fn wide_table_with_many_columns() {
    // A k = 60 YX-style table: wide rows through the whole pipeline.
    let mut d = db();
    let cols: Vec<String> = (1..=60).map(|j| format!("x{j} DOUBLE")).collect();
    d.execute(&format!(
        "CREATE TABLE yx (rid BIGINT PRIMARY KEY, {})",
        cols.join(", ")
    ))
    .unwrap();
    let vals: Vec<String> = (1..=60).map(|j| format!("{}.0", j)).collect();
    d.execute(&format!("INSERT INTO yx VALUES (1, {})", vals.join(", ")))
        .unwrap();
    let sum: String = (1..=60)
        .map(|j| format!("x{j}"))
        .collect::<Vec<_>>()
        .join(" + ");
    let r = d.execute(&format!("SELECT {sum} FROM yx")).unwrap();
    assert_eq!(r.scalar_f64(), Some(1830.0));
}

#[test]
fn sixty_five_tables_in_from_rejected() {
    let mut d = db();
    for i in 0..66 {
        d.execute(&format!("CREATE TABLE t{i} (x BIGINT)")).unwrap();
        d.execute(&format!("INSERT INTO t{i} VALUES ({i})"))
            .unwrap();
    }
    let froms: Vec<String> = (0..66).map(|i| format!("t{i}")).collect();
    let err = d
        .execute(&format!("SELECT t0.x FROM {}", froms.join(", ")))
        .unwrap_err();
    // The analyzer predicts the executor's 64-bit scope-mask ceiling
    // statically, so this never reaches the join planner.
    let analysis = err.as_analyze().expect("analyzer should reject this");
    assert!(matches!(
        analysis.kind,
        sqlengine::AnalyzeErrorKind::TooComplex {
            metric: sqlengine::Metric::Tables,
            value: 66,
            limit: 64,
        }
    ));
}

#[test]
fn varchar_round_trip_and_grouping() {
    let mut d = db();
    d.execute("CREATE TABLE t (name VARCHAR, x DOUBLE)")
        .unwrap();
    d.execute("INSERT INTO t VALUES ('a', 1.0), ('b', 2.0), ('a', 3.0)")
        .unwrap();
    let r = d
        .execute("SELECT name, sum(x) FROM t GROUP BY name ORDER BY name")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::str("a"));
    assert_eq!(r.rows[0][1], Value::Double(4.0));
    assert_eq!(r.rows[1][0], Value::str("b"));
}

#[test]
fn select_from_missing_table_is_clean_error() {
    let mut d = db();
    let is_unknown_table = |e: Error| {
        matches!(
            e.as_analyze().expect("analyzer should reject this").kind,
            sqlengine::AnalyzeErrorKind::UnknownTable(_)
        )
    };
    assert!(is_unknown_table(
        d.execute("SELECT * FROM nope").unwrap_err()
    ));
    assert!(is_unknown_table(
        d.execute("INSERT INTO nope VALUES (1)").unwrap_err()
    ));
    assert!(is_unknown_table(
        d.execute("UPDATE nope SET x = 1").unwrap_err()
    ));
}

#[test]
fn explain_describes_the_pipeline() {
    let mut d = db();
    d.execute(
        "CREATE TABLE y (rid BIGINT, v BIGINT, val DOUBLE, PRIMARY KEY (rid, v));
         CREATE TABLE cr (v BIGINT PRIMARY KEY, c1 DOUBLE, r DOUBLE);
         CREATE TABLE gmm (n BIGINT)",
    )
    .unwrap();
    d.execute("INSERT INTO y VALUES (1,1,0.5); INSERT INTO cr VALUES (1, 0.0, 1.0); INSERT INTO gmm VALUES (1)")
        .unwrap();
    let r = d
        .execute(
            "EXPLAIN SELECT rid, sum((y.val - cr.c1) ** 2 / cr.r) FROM y, cr, gmm \
             WHERE y.v = cr.v GROUP BY rid",
        )
        .unwrap();
    let plan: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    assert!(plan[0].starts_with("driver scan: y"), "{plan:?}");
    assert!(plan[1].starts_with("hash join: cr on 1 key(s)"), "{plan:?}");
    assert!(
        plan[2].starts_with("broadcast (cross join): gmm"),
        "{plan:?}"
    );
    assert!(
        plan[3].contains("hash aggregate (1 group key(s), 1 accumulator(s))"),
        "{plan:?}"
    );
}

#[test]
fn explain_scalar_projection_and_limits() {
    let mut d = db();
    d.execute("CREATE TABLE t (a BIGINT)").unwrap();
    d.execute("INSERT INTO t VALUES (1)").unwrap();
    let r = d
        .execute("EXPLAIN SELECT a, a + 1 FROM t ORDER BY a LIMIT 5")
        .unwrap();
    let plan: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    assert!(
        plan.iter().any(|l| l.contains("projection (2 item(s))")),
        "{plan:?}"
    );
    assert!(
        plan.iter().any(|l| l.contains("order by: 1 key(s)")),
        "{plan:?}"
    );
    assert!(plan.iter().any(|l| l.contains("limit: 5")), "{plan:?}");
}

#[test]
fn explain_covers_every_statement_kind() {
    let mut d = db();
    d.execute("CREATE TABLE t (a BIGINT)").unwrap();
    // Non-SELECT statements get an analysis report instead of a plan.
    let r = d.execute("EXPLAIN DELETE FROM t").unwrap();
    let plan: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    assert!(plan.iter().any(|l| l.starts_with("analysis:")), "{plan:?}");
    // Semantic errors are reported as output, with a byte position.
    let r = d.execute("EXPLAIN SELECT bogus FROM t").unwrap();
    let plan: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
    assert!(
        plan.iter()
            .any(|l| l.starts_with("analysis error:") && l.contains("bogus")),
        "{plan:?}"
    );
}

#[test]
fn variance_and_stddev_aggregates() {
    let mut d = db();
    d.execute("CREATE TABLE t (g BIGINT, x DOUBLE)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 2.0), (1, 4.0), (1, 6.0), (2, 5.0)")
        .unwrap();
    // Population variance of {2,4,6} = 8/3.
    let r = d
        .execute("SELECT g, variance(x), stddev(x) FROM t GROUP BY g ORDER BY g")
        .unwrap();
    let var = r.rows[0][1].as_f64().unwrap();
    assert!((var - 8.0 / 3.0).abs() < 1e-12, "var {var}");
    let sd = r.rows[0][2].as_f64().unwrap();
    assert!((sd - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    // Single value → variance 0; empty after NULL-skip → NULL.
    assert_eq!(r.rows[1][1], Value::Double(0.0));
    d.execute("CREATE TABLE e (x DOUBLE)").unwrap();
    d.execute("INSERT INTO e VALUES (NULL)").unwrap();
    let r = d.execute("SELECT variance(x) FROM e").unwrap();
    assert!(r.rows[0][0].is_null());
}

#[test]
fn variance_parallel_matches_serial() {
    let build = |workers: usize| {
        let mut d = Database::with_config(sqlengine::EngineConfig {
            workers,
            ..Default::default()
        });
        d.execute("CREATE TABLE t (x DOUBLE)").unwrap();
        let rows: Vec<Vec<Value>> = (0..20_000)
            .map(|i| vec![Value::Double(((i * 37) % 101) as f64)])
            .collect();
        d.bulk_insert("t", rows).unwrap();
        d.execute("SELECT variance(x), stddev(x) FROM t")
            .unwrap()
            .rows[0]
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect::<Vec<_>>()
    };
    let serial = build(1);
    let parallel = build(4);
    for (a, b) in serial.iter().zip(&parallel) {
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }
}

#[test]
fn failed_statement_keeps_earlier_effects() {
    // No transactions (§3.6 workflow): statement 2's failure leaves
    // statement 1's insert in place.
    let mut d = db();
    d.execute("CREATE TABLE t (a BIGINT PRIMARY KEY)").unwrap();
    let err = d.execute_all("INSERT INTO t VALUES (1); INSERT INTO t VALUES (1)");
    assert!(err.is_err());
    let r = d.execute("SELECT count(*) FROM t").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(1)));
}

#[test]
fn query_result_accessors() {
    let mut d = db();
    d.execute("CREATE TABLE t (a BIGINT, b DOUBLE)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 2.5)").unwrap();
    let r = d.execute("SELECT a AS first, b AS second FROM t").unwrap();
    assert_eq!(r.column_index("first"), Some(0));
    assert_eq!(r.column_index("SECOND"), Some(1));
    assert_eq!(r.column_index("third"), None);
    assert_eq!(r.cell(0, 1), Some(&Value::Double(2.5)));
    assert_eq!(r.cell(1, 0), None);
    assert_eq!(r.cell(0, 9), None);
    assert_eq!(r.scalar_f64(), Some(1.0));
}

#[test]
fn update_from_first_match_wins() {
    // Multiple FROM rows satisfy WHERE; the first one (in table order)
    // supplies the bindings — deterministic, documented semantics.
    let mut d = db();
    d.execute(
        "CREATE TABLE t (k BIGINT PRIMARY KEY, x DOUBLE);
         CREATE TABLE lookup (v DOUBLE)",
    )
    .unwrap();
    d.execute("INSERT INTO t VALUES (1, 0.0); INSERT INTO lookup VALUES (10.0), (20.0)")
        .unwrap();
    d.execute("UPDATE t FROM lookup SET x = lookup.v").unwrap();
    let r = d.execute("SELECT x FROM t").unwrap();
    assert_eq!(r.scalar_f64(), Some(10.0));
}

#[test]
fn limit_zero_and_limit_beyond_rows() {
    let mut d = db();
    d.execute("CREATE TABLE t (a BIGINT)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    assert_eq!(d.execute("SELECT a FROM t LIMIT 0").unwrap().rows.len(), 0);
    assert_eq!(d.execute("SELECT a FROM t LIMIT 99").unwrap().rows.len(), 2);
}

#[test]
fn drop_recreate_changes_schema() {
    // The per-iteration DROP/CREATE pattern must fully replace schemas
    // (the fused-YX variant reuses the same table name with a wider row).
    let mut d = db();
    d.execute("CREATE TABLE w (a BIGINT)").unwrap();
    d.execute("INSERT INTO w VALUES (1)").unwrap();
    d.execute("DROP TABLE w").unwrap();
    d.execute("CREATE TABLE w (a BIGINT, b DOUBLE, c DOUBLE)")
        .unwrap();
    d.execute("INSERT INTO w VALUES (1, 2.0, 3.0)").unwrap();
    let r = d.execute("SELECT c FROM w").unwrap();
    assert_eq!(r.scalar_f64(), Some(3.0));
}

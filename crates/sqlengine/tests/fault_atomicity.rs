//! Atomic statement semantics + scripted fault injection, exercised
//! through the public [`Database`] API.
//!
//! The SQLEM driver retries failed statements (docs/ROBUSTNESS.md); a
//! retry is only safe if a failed statement left the database exactly as
//! it was. These tests pin that contract for organic mid-statement
//! failures (primary-key violation partway through an INSERT … SELECT,
//! arithmetic error partway through an UPDATE) and for the scripted
//! faults from [`sqlengine::fault`].

use sqlengine::{Database, Error, FaultPlan, FaultRule, StatementKind, Value};

fn table_rows(db: &mut Database, sql: &str) -> Vec<Vec<Value>> {
    db.execute(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| r.to_vec())
        .collect()
}

#[test]
fn failed_insert_select_leaves_target_untouched() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT PRIMARY KEY, v DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 1.0)").unwrap();
    db.execute("CREATE TABLE s (a BIGINT, v DOUBLE)").unwrap();
    // Middle source row collides with t's existing key: the batch must
    // fail *after* row (10, …) would have been inserted by a naive
    // row-at-a-time implementation.
    db.execute("INSERT INTO s VALUES (10, 10.0), (1, 99.0), (20, 20.0)")
        .unwrap();

    let before = table_rows(&mut db, "SELECT a, v FROM t ORDER BY a");
    let err = db.execute("INSERT INTO t SELECT a, v FROM s").unwrap_err();
    assert!(matches!(err, Error::DuplicateKey { .. }), "{err}");
    let after = table_rows(&mut db, "SELECT a, v FROM t ORDER BY a");
    assert_eq!(before, after, "failed INSERT…SELECT must be a no-op");

    // And the retry path: fix the source, retry, everything lands.
    db.execute("DELETE FROM s WHERE a = 1").unwrap();
    let r = db.execute("INSERT INTO t SELECT a, v FROM s").unwrap();
    assert_eq!(r.rows_affected, 2);
    assert_eq!(db.table_len("t").unwrap(), 3);
}

#[test]
fn failed_insert_values_leaves_target_and_index_untouched() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT PRIMARY KEY)").unwrap();
    let err = db
        .execute("INSERT INTO t VALUES (7), (8), (7)")
        .unwrap_err();
    assert!(matches!(err, Error::DuplicateKey { .. }), "{err}");
    assert_eq!(db.table_len("t").unwrap(), 0);
    // The rolled-back keys must not linger in the PK index.
    db.execute("INSERT INTO t VALUES (7), (8)").unwrap();
    assert_eq!(db.table_len("t").unwrap(), 2);
}

#[test]
fn failed_update_leaves_table_untouched() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT PRIMARY KEY, v DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 2.0), (2, 0.0), (3, 4.0)")
        .unwrap();
    let before = table_rows(&mut db, "SELECT a, v FROM t ORDER BY a");
    // Row a=1 divides fine; row a=2 divides by zero. A non-atomic UPDATE
    // would leave a=1 mutated.
    let err = db.execute("UPDATE t SET v = 1.0 / v").unwrap_err();
    assert!(matches!(err, Error::Arithmetic(_)), "{err}");
    let after = table_rows(&mut db, "SELECT a, v FROM t ORDER BY a");
    assert_eq!(before, after, "failed UPDATE must be a no-op");
}

#[test]
fn bulk_insert_is_atomic_on_duplicate_key() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT PRIMARY KEY)").unwrap();
    let rows: Vec<Vec<Value>> = vec![
        vec![Value::Int(1)],
        vec![Value::Int(2)],
        vec![Value::Int(1)],
    ];
    let err = db.bulk_insert("t", rows).unwrap_err();
    assert!(matches!(err, Error::DuplicateKey { .. }), "{err}");
    assert_eq!(db.table_len("t").unwrap(), 0);
    db.bulk_insert("t", vec![vec![Value::Int(1)], vec![Value::Int(2)]])
        .unwrap();
    assert_eq!(db.table_len("t").unwrap(), 2);
}

#[test]
fn nth_statement_fault_fires_once_and_retry_succeeds() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT PRIMARY KEY)").unwrap();
    // Statement 1 (0-based, counted from plan installation) blows up,
    // transiently, exactly once.
    db.set_fault_plan(FaultPlan::single(FaultRule::nth(1).transient().once()));

    db.execute("INSERT INTO t VALUES (1)").unwrap(); // stmt 0
    let err = db.execute("INSERT INTO t VALUES (2)").unwrap_err(); // stmt 1
    assert!(err.is_transient(), "{err}");
    assert!(!err.effects_applied(), "BeforeExec fault applies nothing");
    assert_eq!(db.table_len("t").unwrap(), 1, "faulted INSERT is a no-op");

    // Retry the identical statement: budget exhausted, it goes through.
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    assert_eq!(db.table_len("t").unwrap(), 2);
    assert_eq!(db.fault_injector().unwrap().total_fired(), 1);
    db.clear_fault_plan();
    assert!(db.fault_injector().is_none());
}

#[test]
fn kind_and_table_rules_classify_permanent() {
    let mut db = Database::new();
    db.execute("CREATE TABLE yx (a BIGINT)").unwrap();
    db.execute("CREATE TABLE other (a BIGINT)").unwrap();
    db.set_fault_plan(FaultPlan::single(
        FaultRule::table("yx")
            .kind_is(StatementKind::Insert)
            .permanent(),
    ));
    // SELECT on yx: kind mismatch, no fault.
    db.execute("SELECT a FROM yx").unwrap();
    // INSERT into other: table mismatch, no fault.
    db.execute("INSERT INTO other VALUES (1)").unwrap();
    // INSERT into yx: fires, permanent.
    let err = db.execute("INSERT INTO yx VALUES (1)").unwrap_err();
    assert!(
        matches!(
            err,
            Error::Injected {
                transient: false,
                ..
            }
        ),
        "{err}"
    );
    assert!(!err.is_transient());
    assert_eq!(db.table_len("yx").unwrap(), 0);
}

#[test]
fn after_exec_fault_reports_applied_effects() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT)").unwrap();
    db.set_fault_plan(FaultPlan::single(
        FaultRule::kind(StatementKind::Insert).after_exec().once(),
    ));
    let err = db.execute("INSERT INTO t VALUES (1)").unwrap_err();
    assert!(err.effects_applied(), "{err}");
    assert_eq!(
        db.table_len("t").unwrap(),
        1,
        "lost-ack fault: the row IS there even though the client saw an error"
    );
}

#[test]
fn fault_sequence_counts_only_top_level_statements() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT)").unwrap();
    db.set_fault_plan(FaultPlan::default());
    for i in 0..4 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    assert_eq!(db.fault_injector().unwrap().executed(), 4);
    assert_eq!(db.fault_injector().unwrap().total_fired(), 0);
}

//! MetricsLog under concurrency (regression tests).
//!
//! Two distinct concurrency regimes exist and both must keep the
//! telemetry exact:
//!
//! * **multi-client** — several threads share one warehouse through
//!   [`SharedDatabase`] clones (the multi-session scenario of the
//!   driver's prefixed sessions). Statements serialize through the
//!   mutex, so the log must contain exactly one entry per executed
//!   statement, with nothing lost, duplicated or cross-attributed even
//!   when entries from different clients interleave;
//! * **intra-statement parallelism** — one statement fanned out over
//!   partition workers (`set_workers`). Worker tallies are merged into
//!   the statement's probe, so every count must equal the serial run's
//!   count exactly, not approximately.

use std::collections::HashMap;

use sqlengine::{Database, SharedDatabase, StatementKind};

#[test]
fn shared_database_records_every_statement_exactly_once() {
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 50;

    let shared = SharedDatabase::default();
    shared.with(|db| db.enable_metrics());
    for c in 0..CLIENTS {
        shared
            .execute(&format!("CREATE TABLE t{c} (a BIGINT, b DOUBLE)"))
            .unwrap();
    }
    let setup = shared.with(|db| db.metrics().len());

    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let client = shared.clone();
            s.spawn(move || {
                for i in 0..ROUNDS {
                    client
                        .execute(&format!("INSERT INTO t{c} VALUES ({i}, {i}.5)"))
                        .unwrap();
                    client
                        .execute(&format!("SELECT count(*), sum(b) FROM t{c}"))
                        .unwrap();
                }
            });
        }
    });

    shared.with(|db| {
        let log = db.metrics();
        // One entry per statement: CLIENTS × ROUNDS × (1 insert + 1 select).
        assert_eq!(log.len() - setup, CLIENTS * ROUNDS * 2);

        // Nothing lost and nothing double-counted, per kind...
        let inserts = log
            .entries()
            .iter()
            .filter(|m| m.kind == Some(StatementKind::Insert))
            .count();
        let selects = log
            .entries()
            .iter()
            .filter(|m| m.kind == Some(StatementKind::Select))
            .count();
        assert_eq!(inserts, CLIENTS * ROUNDS);
        assert_eq!(selects, CLIENTS * ROUNDS);
        let total_inserted: usize = log.entries().iter().map(|m| m.rows_inserted).sum();
        assert_eq!(total_inserted, CLIENTS * ROUNDS);

        // ...and per client: each table was driven by exactly ROUNDS
        // SELECT scans, so interleaving never bled one client's entries
        // into another's counts.
        let scans = log.driver_scans_by_table(setup);
        for c in 0..CLIENTS {
            assert_eq!(
                scans.get(&format!("t{c}")).copied().unwrap_or(0),
                ROUNDS,
                "client {c} scan count"
            );
        }

        // Every SELECT produced exactly one row (the aggregate row).
        assert!(log
            .entries()
            .iter()
            .filter(|m| m.kind == Some(StatementKind::Select))
            .all(|m| m.rows_produced == 1));
    });
}

#[test]
fn interleaved_clients_keep_per_statement_attribution() {
    // A tighter interleave: both clients hammer the *same* table, and
    // each SELECT's own entry must still carry exactly one driver scan —
    // per-statement attribution never smears across clients.
    let shared = SharedDatabase::default();
    shared.with(|db| db.enable_metrics());
    shared.execute("CREATE TABLE t (a BIGINT)").unwrap();
    let setup = shared.with(|db| db.metrics().len());

    std::thread::scope(|s| {
        for _ in 0..2 {
            let client = shared.clone();
            s.spawn(move || {
                for i in 0..40 {
                    client
                        .execute(&format!("INSERT INTO t VALUES ({i})"))
                        .unwrap();
                    client.execute("SELECT sum(a) FROM t").unwrap();
                }
            });
        }
    });

    shared.with(|db| {
        for m in &db.metrics().entries()[setup..] {
            match m.kind {
                Some(StatementKind::Insert) => {
                    assert_eq!(m.rows_inserted, 1);
                    assert!(m.scans.is_empty(), "plain INSERT VALUES scans nothing");
                }
                Some(StatementKind::Select) => {
                    let drivers: Vec<_> = m.scans.iter().filter(|s| !s.build).collect();
                    assert_eq!(drivers.len(), 1, "one driver scan per SELECT");
                    assert_eq!(drivers[0].table, "t");
                }
                other => panic!("unexpected statement kind {other:?}"),
            }
        }
    });
}

/// Serial and partition-parallel execution of the same statements must
/// report identical metrics — worker tallies are merged exactly, never
/// sampled or approximated.
#[test]
fn parallel_workers_report_the_same_metrics_as_serial() {
    fn run(workers: usize) -> Vec<sqlengine::ExecMetrics> {
        let mut db = Database::new();
        db.set_workers(workers);
        // Enough rows that the planner actually partitions the scans.
        db.execute("CREATE TABLE pts (rid BIGINT PRIMARY KEY, x DOUBLE, g BIGINT)")
            .unwrap();
        let rows: Vec<Vec<sqlengine::Value>> = (0..4_000)
            .map(|i| {
                vec![
                    sqlengine::Value::Int(i),
                    sqlengine::Value::Double(i as f64 * 0.25),
                    sqlengine::Value::Int(i % 7),
                ]
            })
            .collect();
        db.bulk_insert("pts", rows).unwrap();
        db.execute("CREATE TABLE dims (g BIGINT PRIMARY KEY, scale DOUBLE)")
            .unwrap();
        db.execute(
            "INSERT INTO dims VALUES (0,1.0),(1,2.0),(2,3.0),(3,4.0),(4,5.0),(5,6.0),(6,7.0)",
        )
        .unwrap();
        db.enable_metrics();
        db.execute("SELECT g, count(*), sum(x) FROM pts WHERE x > 10 GROUP BY g")
            .unwrap();
        db.execute(
            "SELECT pts.g, sum(pts.x * dims.scale) FROM pts, dims \
             WHERE pts.g = dims.g GROUP BY pts.g",
        )
        .unwrap();
        db.execute("CREATE TABLE out (g BIGINT, s DOUBLE)").unwrap();
        db.execute("INSERT INTO out SELECT g, sum(x) FROM pts GROUP BY g")
            .unwrap();
        db.take_metrics()
    }

    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.scans, b.scans, "scan sets differ for {:?}", a.kind);
        assert_eq!(a.rows_produced, b.rows_produced);
        assert_eq!(a.rows_inserted, b.rows_inserted);
        assert_eq!(a.join_build_rows, b.join_build_rows);
        assert_eq!(
            a.join_probe_rows, b.join_probe_rows,
            "probe rows for {:?}",
            a.kind
        );
        assert_eq!(a.expr_evals, b.expr_evals, "expr evals for {:?}", a.kind);
        assert_eq!(a.groups, b.groups);
    }

    // Group counts are real: 7 groups in each aggregate.
    let aggregates: HashMap<usize, usize> = serial
        .iter()
        .enumerate()
        .filter(|(_, m)| m.groups > 0)
        .map(|(i, m)| (i, m.groups))
        .collect();
    assert!(aggregates.values().all(|&g| g == 7), "{aggregates:?}");
}

//! Property test: the parser inverts the AST renderer for the whole
//! expression grammar — `parse(render(e))` reproduces `e`.
//!
//! The generators build SQL by string concatenation, so any disagreement
//! between what the renderer considers valid and what the parser accepts
//! is a bug class this test closes. (Gated behind the `proptest`
//! feature: restore the proptest dev-dependency to run.)

use proptest::prelude::*;
use sqlengine::ast::{BinOp, Expr, SelectItem, Statement, UnaryOp};
use sqlengine::parser::parse_one;
use sqlengine::value::Value;

/// Random expression trees (aggregate-free — aggregates have positional
/// restrictions the renderer does not encode).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|i| Expr::Literal(Value::Int(i))),
        (-100i64..0).prop_map(|i| Expr::Literal(Value::Int(i))),
        // Finite, non-negative-zero doubles; rendered via {:?} which
        // round-trips exactly.
        (-1.0e6f64..1.0e6)
            .prop_filter("skip -0.0", |d| d.to_bits() != (-0.0f64).to_bits())
            .prop_map(|d| Expr::Literal(Value::Double(d))),
        Just(Expr::Literal(Value::Null)),
        "[a-z][a-z0-9_]{0,6}"
            .prop_filter("avoid reserved words", |s| !is_reserved(s))
            .prop_map(|name| Expr::Column { table: None, name }),
        (
            "[a-z][a-z0-9_]{0,4}".prop_filter("reserved", |s| !is_reserved(s)),
            "[a-z][a-z0-9_]{0,4}".prop_filter("reserved", |s| !is_reserved(s)),
        )
            .prop_map(|(t, c)| Expr::Column {
                table: Some(t),
                name: c,
            }),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (any::<u8>(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Pow,
                    BinOp::Eq,
                    BinOp::Neq,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::And,
                    BinOp::Or,
                ];
                Expr::bin(ops[op as usize % ops.len()], l, r)
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e),
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            inner.clone().prop_map(|e| Expr::Func {
                name: "exp".into(),
                args: vec![e],
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Func {
                name: "power".into(),
                args: vec![a, b],
            }),
            (
                prop::collection::vec((inner.clone(), inner.clone()), 1..3),
                prop::option::of(inner.clone()),
            )
                .prop_map(|(whens, else_expr)| Expr::Case {
                    whens,
                    else_expr: else_expr.map(Box::new),
                }),
        ]
    })
}

fn is_reserved(s: &str) -> bool {
    // Superset of the parser's reserved list plus function names and the
    // bare literals that parse specially.
    const WORDS: &[&str] = &[
        "select",
        "from",
        "where",
        "group",
        "by",
        "order",
        "insert",
        "into",
        "values",
        "update",
        "set",
        "delete",
        "create",
        "drop",
        "table",
        "primary",
        "key",
        "and",
        "or",
        "not",
        "null",
        "is",
        "case",
        "when",
        "then",
        "else",
        "end",
        "as",
        "having",
        "limit",
        "if",
        "exists",
        "asc",
        "desc",
        "distinct",
        "on",
        "join",
        "inner",
        "left",
        "right",
        "explain",
        "exp",
        "ln",
        "log",
        "sqrt",
        "abs",
        "power",
        "pow",
        "floor",
        "ceil",
        "ceiling",
        "round",
        "sign",
        "mod",
        "least",
        "greatest",
        "coalesce",
        "sum",
        "count",
        "avg",
        "min",
        "max",
        "variance",
        "var_pop",
        "stddev",
        "stddev_pop",
    ];
    WORDS.contains(&s)
}

/// The Neg-of-negative-literal case folds during parsing; normalize both
/// sides the same way before comparing.
fn normalize(e: &Expr) -> Expr {
    match e {
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => match normalize(expr) {
            Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
            Expr::Literal(Value::Double(d)) => Expr::Literal(Value::Double(-d)),
            inner => Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            },
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(normalize(expr)),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(normalize(left)),
            right: Box::new(normalize(right)),
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(normalize).collect(),
        },
        Expr::Case { whens, else_expr } => Expr::Case {
            whens: whens
                .iter()
                .map(|(c, r)| (normalize(c), normalize(r)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(normalize(e))),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(normalize(expr)),
            negated: *negated,
        },
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn parse_inverts_render(e in arb_expr()) {
        let sql = format!("SELECT {e}");
        let stmt = parse_one(&sql)
            .unwrap_or_else(|err| panic!("failed to parse {sql:?}: {err}"));
        let Statement::Select(sel) = stmt else {
            panic!("not a select");
        };
        let [SelectItem::Expr { expr, .. }] = sel.items.as_slice() else {
            panic!("wrong item shape");
        };
        prop_assert_eq!(normalize(expr), normalize(&e), "sql was: {}", sql);
    }
}

//! Property-based tests: the engine against brute-force reference
//! implementations on randomized data.

use proptest::prelude::*;
use sqlengine::{Database, Value};

/// Row values small enough to avoid FP-associativity noise in sums.
fn small_rows() -> impl Strategy<Value = Vec<(i64, i64, f64)>> {
    prop::collection::vec((0i64..50, 0i64..5, -100.0f64..100.0), 1..120).prop_map(|mut rows| {
        // Unique (a) PK by re-keying sequentially; keep b, x random.
        for (i, r) in rows.iter_mut().enumerate() {
            r.0 = i as i64;
        }
        rows
    })
}

fn load(db: &mut Database, rows: &[(i64, i64, f64)]) {
    db.execute("CREATE TABLE t (a BIGINT PRIMARY KEY, b BIGINT, x DOUBLE)")
        .unwrap();
    db.bulk_insert(
        "t",
        rows.iter()
            .map(|(a, b, x)| vec![Value::Int(*a), Value::Int(*b), Value::Double(*x)]),
    )
    .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// COUNT/SUM/MIN/MAX against direct computation.
    #[test]
    fn aggregates_match_reference(rows in small_rows()) {
        let mut db = Database::new();
        load(&mut db, &rows);
        let r = db.execute("SELECT count(*), sum(x), min(x), max(x) FROM t").unwrap();
        let count = r.rows[0][0].as_i64().unwrap();
        prop_assert_eq!(count, rows.len() as i64);
        let sum: f64 = rows.iter().map(|r| r.2).sum();
        prop_assert!((r.rows[0][1].as_f64().unwrap() - sum).abs() < 1e-6);
        let min = rows.iter().map(|r| r.2).fold(f64::INFINITY, f64::min);
        let max = rows.iter().map(|r| r.2).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(r.rows[0][2].as_f64().unwrap(), min);
        prop_assert_eq!(r.rows[0][3].as_f64().unwrap(), max);
    }

    /// GROUP BY sums equal a HashMap-based reference.
    #[test]
    fn group_by_matches_reference(rows in small_rows()) {
        let mut db = Database::new();
        load(&mut db, &rows);
        let r = db
            .execute("SELECT b, sum(x), count(*) FROM t GROUP BY b ORDER BY b")
            .unwrap();
        let mut expect: std::collections::BTreeMap<i64, (f64, i64)> = Default::default();
        for (_, b, x) in &rows {
            let e = expect.entry(*b).or_insert((0.0, 0));
            e.0 += x;
            e.1 += 1;
        }
        prop_assert_eq!(r.rows.len(), expect.len());
        for (row, (b, (sum, count))) in r.rows.iter().zip(expect) {
            prop_assert_eq!(row[0].as_i64().unwrap(), b);
            prop_assert!((row[1].as_f64().unwrap() - sum).abs() < 1e-6);
            prop_assert_eq!(row[2].as_i64().unwrap(), count);
        }
    }

    /// Hash equi-join against a nested-loop reference.
    #[test]
    fn join_matches_nested_loop(
        left in small_rows(),
        right in small_rows(),
    ) {
        let mut db = Database::new();
        db.execute(
            "CREATE TABLE l (a BIGINT PRIMARY KEY, b BIGINT, x DOUBLE);
             CREATE TABLE r (a BIGINT PRIMARY KEY, b BIGINT, x DOUBLE)",
        )
        .unwrap();
        db.bulk_insert("l", left.iter().map(|(a, b, x)| {
            vec![Value::Int(*a), Value::Int(*b), Value::Double(*x)]
        })).unwrap();
        db.bulk_insert("r", right.iter().map(|(a, b, x)| {
            vec![Value::Int(*a), Value::Int(*b), Value::Double(*x)]
        })).unwrap();
        let got = db
            .execute("SELECT l.a, r.a FROM l, r WHERE l.b = r.b ORDER BY l.a, r.a")
            .unwrap();
        let mut expect: Vec<(i64, i64)> = Vec::new();
        for (la, lb, _) in &left {
            for (ra, rb, _) in &right {
                if lb == rb {
                    expect.push((*la, *ra));
                }
            }
        }
        expect.sort_unstable();
        prop_assert_eq!(got.rows.len(), expect.len());
        for (row, (la, ra)) in got.rows.iter().zip(expect) {
            prop_assert_eq!(row[0].as_i64().unwrap(), la);
            prop_assert_eq!(row[1].as_i64().unwrap(), ra);
        }
    }

    /// WHERE filtering equals retain().
    #[test]
    fn where_matches_filter(rows in small_rows(), threshold in -100.0f64..100.0) {
        let mut db = Database::new();
        load(&mut db, &rows);
        let sql = format!("SELECT a FROM t WHERE x > {threshold} ORDER BY a");
        let got = db.execute(&sql).unwrap();
        let expect: Vec<i64> = rows
            .iter()
            .filter(|(_, _, x)| *x > threshold)
            .map(|(a, _, _)| *a)
            .collect();
        prop_assert_eq!(got.rows.len(), expect.len());
        for (row, a) in got.rows.iter().zip(expect) {
            prop_assert_eq!(row[0].as_i64().unwrap(), a);
        }
    }

    /// ORDER BY DESC sorts; LIMIT truncates.
    #[test]
    fn order_and_limit(rows in small_rows(), limit in 0usize..20) {
        let mut db = Database::new();
        load(&mut db, &rows);
        let got = db
            .execute(&format!("SELECT x FROM t ORDER BY x DESC LIMIT {limit}"))
            .unwrap();
        let mut expect: Vec<f64> = rows.iter().map(|r| r.2).collect();
        expect.sort_by(|a, b| b.total_cmp(a));
        expect.truncate(limit);
        prop_assert_eq!(got.rows.len(), expect.len());
        for (row, x) in got.rows.iter().zip(expect) {
            prop_assert_eq!(row[0].as_f64().unwrap(), x);
        }
    }

    /// DELETE + COUNT stays consistent.
    #[test]
    fn delete_then_count(rows in small_rows(), threshold in -100.0f64..100.0) {
        let mut db = Database::new();
        load(&mut db, &rows);
        let deleted = db
            .execute(&format!("DELETE FROM t WHERE x <= {threshold}"))
            .unwrap()
            .rows_affected;
        let remaining = db
            .execute("SELECT count(*) FROM t")
            .unwrap()
            .rows[0][0]
            .as_i64()
            .unwrap() as usize;
        prop_assert_eq!(deleted + remaining, rows.len());
        // All the survivors satisfy the predicate's complement.
        let r = db.execute("SELECT min(x) FROM t").unwrap();
        if remaining > 0 {
            prop_assert!(r.rows[0][0].as_f64().unwrap() > threshold);
        } else {
            prop_assert!(r.rows[0][0].is_null());
        }
    }

    /// UPDATE applies the assignment to exactly the matching rows.
    #[test]
    fn update_applies_expression(rows in small_rows()) {
        let mut db = Database::new();
        load(&mut db, &rows);
        db.execute("UPDATE t SET x = x * 2 WHERE b = 1").unwrap();
        let got = db.execute("SELECT a, x FROM t ORDER BY a").unwrap();
        for (row, (_, b, x)) in got.rows.iter().zip(&rows) {
            let expect = if *b == 1 { x * 2.0 } else { *x };
            prop_assert!((row[1].as_f64().unwrap() - expect).abs() < 1e-9);
        }
    }

    /// Parallel execution agrees with serial for scalar and aggregate
    /// queries (up to FP summation order).
    #[test]
    fn parallel_agrees_with_serial(rows in small_rows()) {
        let run = |workers: usize| {
            let mut db = Database::with_config(sqlengine::EngineConfig {
                workers,
                ..Default::default()
            });
            load(&mut db, &rows);
            let agg = db
                .execute("SELECT b, sum(x) FROM t GROUP BY b ORDER BY b")
                .unwrap();
            let scalar = db.execute("SELECT a, x + 1 FROM t ORDER BY a").unwrap();
            (agg, scalar)
        };
        let (agg1, scalar1) = run(1);
        let (agg4, scalar4) = run(4);
        prop_assert_eq!(agg1.rows.len(), agg4.rows.len());
        for (a, b) in agg1.rows.iter().zip(&agg4.rows) {
            prop_assert_eq!(a[0].clone(), b[0].clone());
            prop_assert!(
                (a[1].as_f64().unwrap() - b[1].as_f64().unwrap()).abs() < 1e-6
            );
        }
        prop_assert_eq!(scalar1.rows, scalar4.rows);
    }
}

//! Resource-governance invariants (integration tests).
//!
//! Two properties tie the static and runtime halves of the memory
//! model together:
//!
//! * **static bounds runtime** — the symbolic peak footprint that
//!   `plancheck` derives for a statement is a true upper bound on the
//!   `peak_mem_bytes` gauge the executor reports for the same
//!   statement, because both sides share one deterministic logical
//!   size model (`sqlengine::resource`);
//! * **accounting determinism** — charges are monotone within a
//!   statement (released only at statement end), so the per-statement
//!   peak gauge is a pure function of the statement and its input
//!   tables. Running the same workload serially or through concurrent
//!   `SharedDatabase` clones must yield bit-identical gauge multisets.

use sqlengine::{check_script, CheckEnv, Database, ScriptSpec, ScriptStmt, SharedDatabase};

/// A small join + group-by script exercising every runtime charge
/// site: staged INSERT batches, a hash-join build side, a merged
/// group table and a materialized sorted SELECT.
const SCRIPT: &[(&str, &str)] = &[
    (
        "create:t",
        "CREATE TABLE t (a BIGINT PRIMARY KEY, b DOUBLE)",
    ),
    (
        "create:u",
        "CREATE TABLE u (a BIGINT PRIMARY KEY, c DOUBLE)",
    ),
    (
        "create:o",
        "CREATE TABLE o (a BIGINT PRIMARY KEY, s DOUBLE)",
    ),
    (
        "fill:t",
        "INSERT INTO t VALUES (1, 2.0), (2, 3.0), (3, 4.0)",
    ),
    (
        "fill:u",
        "INSERT INTO u VALUES (1, 10.0), (2, 20.0), (3, 30.0)",
    ),
    (
        "join",
        "INSERT INTO o SELECT t.a, sum(t.b * u.c) FROM t, u \
         WHERE t.a = u.a GROUP BY t.a",
    ),
    ("read", "SELECT a, s FROM o ORDER BY s"),
    ("drop:o", "DROP TABLE o"),
    ("drop:u", "DROP TABLE u"),
    ("drop:t", "DROP TABLE t"),
];

#[test]
fn static_footprint_bounds_runtime_peak_memory() {
    let spec = ScriptSpec {
        statements: SCRIPT
            .iter()
            .map(|(p, s)| ScriptStmt::new(*p, *s))
            .collect(),
        ..ScriptSpec::default()
    };
    let report = check_script(&spec, &CheckEnv::default());
    assert!(report.ok(), "unexpected findings: {:?}", report.diagnostics);

    let mut db = Database::new();
    db.enable_metrics();
    for (_, sql) in SCRIPT {
        db.execute(sql).unwrap();
    }
    let metrics = db.take_metrics();
    assert_eq!(metrics.len(), SCRIPT.len());

    for ((m, s), (purpose, _)) in metrics.iter().zip(&report.statements).zip(SCRIPT) {
        // All cardinalities in this script are literal constants, so
        // the polynomial is flat in (n, p, k).
        let bound = s.footprint.eval(1, 1, 1);
        assert!(
            u128::from(m.peak_mem_bytes) <= bound,
            "{purpose}: runtime peak {} exceeds static bound {bound}",
            m.peak_mem_bytes,
        );
    }

    // The interesting statements genuinely charge: the join INSERT
    // touches a build side, a group table and a staging buffer.
    let join = &metrics[5];
    assert!(join.peak_mem_bytes > 0, "join statement charged nothing");
    assert!(!report.statements[5].footprint.is_zero());
    // And the script-wide peak is exactly the statement-wise max.
    let peak = report.peak_footprint().eval(1, 1, 1);
    assert!(report
        .statements
        .iter()
        .all(|s| s.footprint.eval(1, 1, 1) <= peak));
    assert!(report
        .statements
        .iter()
        .any(|s| s.footprint.eval(1, 1, 1) == peak));
}

/// One client's workload against its private table.
fn client_statements(c: usize) -> Vec<String> {
    let mut out = vec![format!(
        "CREATE TABLE w{c} (a BIGINT PRIMARY KEY, x DOUBLE)"
    )];
    for i in 0..20 {
        out.push(format!("INSERT INTO w{c} VALUES ({i}, {i}.25)"));
    }
    out.push(format!("SELECT a, sum(x) FROM w{c} GROUP BY a"));
    out.push(format!("SELECT count(*), sum(x) FROM w{c}"));
    out.push(format!("DROP TABLE w{c}"));
    out
}

/// Sorted multiset of (kind, peak) gauge pairs for one run.
fn gauge_multiset(metrics: &[sqlengine::ExecMetrics]) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = metrics
        .iter()
        .map(|m| (format!("{:?}", m.kind), m.peak_mem_bytes))
        .collect();
    v.sort();
    v
}

#[test]
fn peak_memory_gauges_are_identical_serial_and_shared_parallel() {
    const CLIENTS: usize = 4;

    // Serial baseline: one database, clients run back to back.
    let mut db = Database::new();
    db.enable_metrics();
    for c in 0..CLIENTS {
        for sql in client_statements(c) {
            db.execute(&sql).unwrap();
        }
    }
    let serial = gauge_multiset(&db.take_metrics());

    // Concurrent run: the same statements race through SharedDatabase
    // clones. Monotone per-statement charging makes each gauge a pure
    // function of the statement, so the multisets must be identical.
    let shared = SharedDatabase::default();
    shared.with(|db| db.enable_metrics());
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let client = shared.clone();
            s.spawn(move || {
                for sql in client_statements(c) {
                    client.execute(&sql).unwrap();
                }
            });
        }
    });
    let parallel = shared.with(|db| gauge_multiset(&db.take_metrics()));

    assert_eq!(serial, parallel);
    // The gauges are real, not a wall of zeros: every INSERT stages at
    // least one row.
    assert!(serial.iter().filter(|(_, p)| *p > 0).count() >= CLIENTS * 20);
}

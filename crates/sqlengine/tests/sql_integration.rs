//! Integration tests driving the engine with the exact SQL shapes the
//! SQLEM generators emit (paper Figs. 5, 7, 9, 10).

use sqlengine::{Database, Error, Value};

fn v(x: f64) -> Value {
    Value::Double(x)
}

/// Fig. 7 first statement: the vertical Mahalanobis-distance join.
/// Y(RID,v,val) ⋈ C(i,v,val) ⋈ R(v,val), SUM … GROUP BY RID, C.i.
#[test]
fn vertical_distance_join_group_by() {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE y (rid BIGINT, v BIGINT, val DOUBLE, PRIMARY KEY (rid, v));
         CREATE TABLE c (i BIGINT, v BIGINT, val DOUBLE, PRIMARY KEY (i, v));
         CREATE TABLE r (v BIGINT PRIMARY KEY, val DOUBLE);
         CREATE TABLE yd (rid BIGINT, i BIGINT, d DOUBLE, PRIMARY KEY (rid, i))",
    )
    .unwrap();
    // Two points in 2-d: y1 = (0,0), y2 = (3,4). Two clusters:
    // c1 = (0,0), c2 = (3,4). R = I.
    db.execute(
        "INSERT INTO y VALUES (1,1,0.0),(1,2,0.0),(2,1,3.0),(2,2,4.0);
         INSERT INTO c VALUES (1,1,0.0),(1,2,0.0),(2,1,3.0),(2,2,4.0);
         INSERT INTO r VALUES (1,1.0),(2,1.0)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO yd SELECT rid, c.i, sum((y.val - c.val)**2 / r.val) AS d \
         FROM y, c, r WHERE y.v = c.v AND c.v = r.v GROUP BY rid, c.i",
    )
    .unwrap();
    let out = db
        .execute("SELECT rid, i, d FROM yd ORDER BY rid, i")
        .unwrap();
    assert_eq!(out.rows.len(), 4);
    // δ(y1,c1) = 0, δ(y1,c2) = 25, δ(y2,c1) = 25, δ(y2,c2) = 0.
    assert_eq!(out.rows[0][2], v(0.0));
    assert_eq!(out.rows[1][2], v(25.0));
    assert_eq!(out.rows[2][2], v(25.0));
    assert_eq!(out.rows[3][2], v(0.0));
}

/// Fig. 9 YP statement: lateral aliases (`p1 … pk` referenced by `sump`
/// and `suminvd` in the same projection), cross join with 1-row tables.
#[test]
fn lateral_aliases_and_one_row_cross_joins() {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE yd (rid BIGINT PRIMARY KEY, d1 DOUBLE, d2 DOUBLE);
         CREATE TABLE gmm (n BIGINT, twopipdiv2 DOUBLE, sqrtdetr DOUBLE);
         CREATE TABLE w (w1 DOUBLE, w2 DOUBLE);
         CREATE TABLE yp (rid BIGINT PRIMARY KEY, p1 DOUBLE, p2 DOUBLE, \
                          sump DOUBLE, suminvd DOUBLE)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO yd VALUES (1, 0.0, 8.0), (2, 2.0, 2.0);
         INSERT INTO gmm VALUES (2, 6.5, 1.0);
         INSERT INTO w VALUES (0.5, 0.5)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO yp SELECT rid, \
           w1/(twopipdiv2*sqrtdetr)*exp(-0.5*d1) AS p1, \
           w2/(twopipdiv2*sqrtdetr)*exp(-0.5*d2) AS p2, \
           p1+p2 AS sump, \
           1/(d1+1.0E-100) + 1/(d2+1.0E-100) AS suminvd \
         FROM yd, gmm, w",
    )
    .unwrap();
    let out = db.execute("SELECT * FROM yp ORDER BY rid").unwrap();
    assert_eq!(out.rows.len(), 2);
    let p1 = out.rows[0][1].as_f64().unwrap();
    let p2 = out.rows[0][2].as_f64().unwrap();
    let sump = out.rows[0][3].as_f64().unwrap();
    let expect_p1 = 0.5 / 6.5; // exp(0) = 1
    assert!((p1 - expect_p1).abs() < 1e-9);
    assert!((sump - (p1 + p2)).abs() < 1e-12);
    // suminvd for row 1: 1/1e-100 dominates.
    assert!(out.rows[0][4].as_f64().unwrap() > 1e99);
}

/// Fig. 9 YX statement: CASE WHEN with the inverse-distance fallback and a
/// NULL llh cell when sump = 0; SUM must skip that NULL.
#[test]
fn case_fallback_and_null_skipping_sum() {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE yp (rid BIGINT PRIMARY KEY, p1 DOUBLE, p2 DOUBLE, \
                          sump DOUBLE, suminvd DOUBLE, d1 DOUBLE, d2 DOUBLE);
         CREATE TABLE yx (rid BIGINT PRIMARY KEY, x1 DOUBLE, x2 DOUBLE, llh DOUBLE)",
    )
    .unwrap();
    // Row 1: normal. Row 2: underflowed probabilities (sump = 0) with
    // distances 1 and 3 → fallback x1 = (1/1)/(1/1+1/3) = 0.75.
    db.execute(
        "INSERT INTO yp VALUES (1, 0.2, 0.3, 0.5, 999.0, 0.1, 0.2), \
                               (2, 0.0, 0.0, 0.0, 1.3333333333333333, 1.0, 3.0)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO yx SELECT rid, \
           CASE WHEN sump > 0 THEN p1/sump ELSE (1/d1)/suminvd END, \
           CASE WHEN sump > 0 THEN p2/sump ELSE (1/d2)/suminvd END, \
           CASE WHEN sump > 0 THEN ln(sump) END \
         FROM yp",
    )
    .unwrap();
    let out = db
        .execute("SELECT x1, x2, llh FROM yx ORDER BY rid")
        .unwrap();
    assert!((out.rows[0][0].as_f64().unwrap() - 0.4).abs() < 1e-12);
    assert!((out.rows[1][0].as_f64().unwrap() - 0.75).abs() < 1e-9);
    assert!((out.rows[1][1].as_f64().unwrap() - 0.25).abs() < 1e-9);
    assert_eq!(out.rows[1][2], Value::Null);
    // The W update sums llh; the NULL must be skipped, not poison the sum.
    let s = db.execute("SELECT sum(llh) FROM yx").unwrap();
    assert!((s.scalar_f64().unwrap() - 0.5f64.ln()).abs() < 1e-12);
    // Responsibilities in each row must sum to 1 either way.
    let sums = db.execute("SELECT x1 + x2 FROM yx ORDER BY rid").unwrap();
    for row in &sums.rows {
        assert!((row[0].as_f64().unwrap() - 1.0).abs() < 1e-9);
    }
}

/// Fig. 10 first statements: the M-step mean update
/// `sum(Z.y1*x1)/sum(x1) … FROM Z, YX WHERE Z.RID = YX.RID`.
#[test]
fn m_step_weighted_mean_join() {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE z (rid BIGINT PRIMARY KEY, y1 DOUBLE, y2 DOUBLE);
         CREATE TABLE yx (rid BIGINT PRIMARY KEY, x1 DOUBLE, x2 DOUBLE);
         CREATE TABLE c (i BIGINT PRIMARY KEY, y1 DOUBLE, y2 DOUBLE)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO z VALUES (1, 0.0, 0.0), (2, 2.0, 2.0), (3, 10.0, 10.0);
         INSERT INTO yx VALUES (1, 1.0, 0.0), (2, 1.0, 0.0), (3, 0.0, 1.0)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO c SELECT 1, sum(z.y1*x1)/sum(x1), sum(z.y2*x1)/sum(x1) \
         FROM z, yx WHERE z.rid = yx.rid;
         INSERT INTO c SELECT 2, sum(z.y1*x2)/sum(x2), sum(z.y2*x2)/sum(x2) \
         FROM z, yx WHERE z.rid = yx.rid",
    )
    .unwrap();
    let out = db.execute("SELECT i, y1, y2 FROM c ORDER BY i").unwrap();
    assert_eq!(out.rows[0][1], v(1.0)); // (0+2)/2
    assert_eq!(out.rows[1][1], v(10.0));
}

/// Fig. 9 first statement: `UPDATE GMM FROM R SET detR = …, sqrtdetR =
/// detR**0.5` — sequential SET visibility across an implicit join.
#[test]
fn update_from_with_sequential_assignment() {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE gmm (n BIGINT, detr DOUBLE, sqrtdetr DOUBLE);
         CREATE TABLE r (y1 DOUBLE, y2 DOUBLE, y3 DOUBLE)",
    )
    .unwrap();
    db.execute("INSERT INTO gmm VALUES (100, 0.0, 0.0); INSERT INTO r VALUES (4.0, 9.0, 1.0)")
        .unwrap();
    db.execute("UPDATE gmm FROM r SET detr = r.y1*r.y2*r.y3, sqrtdetr = detr**0.5")
        .unwrap();
    let out = db.execute("SELECT detr, sqrtdetr FROM gmm").unwrap();
    assert_eq!(out.rows[0][0], v(36.0));
    assert_eq!(out.rows[0][1], v(6.0));
}

/// Fig. 10: `UPDATE W FROM GMM SET w1 = w1/GMM.n, …`.
#[test]
fn update_weights_divided_by_n() {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE w (w1 DOUBLE, w2 DOUBLE);
         CREATE TABLE gmm (n BIGINT)",
    )
    .unwrap();
    db.execute("INSERT INTO w VALUES (30.0, 70.0); INSERT INTO gmm VALUES (100)")
        .unwrap();
    db.execute("UPDATE w FROM gmm SET w1 = w1/gmm.n, w2 = w2/gmm.n")
        .unwrap();
    let out = db.execute("SELECT w1, w2 FROM w").unwrap();
    assert_eq!(out.rows[0][0], v(0.3));
    assert_eq!(out.rows[0][1], v(0.7));
}

/// The horizontal approach (Fig. 5) joins Y against k one-row mean tables.
#[test]
fn horizontal_distance_expression() {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE y (rid BIGINT PRIMARY KEY, y1 DOUBLE, y2 DOUBLE);
         CREATE TABLE c1 (y1 DOUBLE, y2 DOUBLE);
         CREATE TABLE c2 (y1 DOUBLE, y2 DOUBLE);
         CREATE TABLE r (y1 DOUBLE, y2 DOUBLE);
         CREATE TABLE yd (rid BIGINT PRIMARY KEY, d1 DOUBLE, d2 DOUBLE)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO y VALUES (1, 0.0, 0.0), (2, 3.0, 4.0);
         INSERT INTO c1 VALUES (0.0, 0.0);
         INSERT INTO c2 VALUES (3.0, 4.0);
         INSERT INTO r VALUES (1.0, 1.0)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO yd SELECT rid, \
           (y.y1-c1.y1)**2/r.y1 + (y.y2-c1.y2)**2/r.y2, \
           (y.y1-c2.y1)**2/r.y1 + (y.y2-c2.y2)**2/r.y2 \
         FROM y, c1, c2, r",
    )
    .unwrap();
    let out = db.execute("SELECT d1, d2 FROM yd ORDER BY rid").unwrap();
    assert_eq!(out.rows[0][0], v(0.0));
    assert_eq!(out.rows[0][1], v(25.0));
    assert_eq!(out.rows[1][0], v(25.0));
    assert_eq!(out.rows[1][1], v(0.0));
}

/// XMAX / score computation: vertical responsibilities, `max(x)` per RID,
/// then a join back to find the argmax cluster.
#[test]
fn xmax_argmax_pattern() {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE x (rid BIGINT, i BIGINT, x DOUBLE, PRIMARY KEY (rid, i));
         CREATE TABLE xmax (rid BIGINT PRIMARY KEY, maxx DOUBLE)",
    )
    .unwrap();
    db.execute("INSERT INTO x VALUES (1,1,0.9),(1,2,0.1),(2,1,0.3),(2,2,0.7)")
        .unwrap();
    db.execute("INSERT INTO xmax SELECT rid, max(x) FROM x GROUP BY rid")
        .unwrap();
    let out = db
        .execute(
            "SELECT x.rid, x.i FROM x, xmax \
             WHERE x.rid = xmax.rid AND x.x = xmax.maxx ORDER BY x.rid",
        )
        .unwrap();
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.rows[0][1], Value::Int(1));
    assert_eq!(out.rows[1][1], Value::Int(2));
}

/// DROP/CREATE vs DELETE, and IF EXISTS variants (§3.6 workflow).
#[test]
fn drop_create_delete_workflow() {
    let mut db = Database::new();
    db.execute("DROP TABLE IF EXISTS yd").unwrap();
    db.execute("CREATE TABLE yd (rid BIGINT PRIMARY KEY, d DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO yd VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
        .unwrap();
    let r = db.execute("DELETE FROM yd WHERE d > 1.5").unwrap();
    assert_eq!(r.rows_affected, 2);
    let r = db.execute("DELETE FROM yd").unwrap();
    assert_eq!(r.rows_affected, 1);
    db.execute("DROP TABLE yd").unwrap();
    assert!(db.execute("SELECT * FROM yd").is_err());
}

/// Scan accounting matches the statements executed.
#[test]
fn scan_events_recorded_per_table() {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE big (rid BIGINT PRIMARY KEY, x DOUBLE);
         CREATE TABLE small (i BIGINT PRIMARY KEY, w DOUBLE)",
    )
    .unwrap();
    for i in 0..100 {
        db.bulk_insert("big", vec![vec![Value::Int(i), Value::Double(i as f64)]])
            .unwrap();
    }
    db.execute("INSERT INTO small VALUES (1, 0.5)").unwrap();
    db.reset_stats();
    db.execute("SELECT sum(x * w) FROM big, small").unwrap();
    let by_table = db.stats().scans_by_table();
    assert_eq!(by_table["big"], 1);
    assert_eq!(by_table["small"], 1);
    assert_eq!(db.stats().scans_with_at_least(100), 1);
}

/// Parallel execution returns the same aggregate results as serial.
#[test]
fn parallel_matches_serial() {
    let build = |workers: usize| {
        let mut db = Database::new();
        db.set_workers(workers);
        db.execute(
            "CREATE TABLE y (rid BIGINT, v BIGINT, val DOUBLE, PRIMARY KEY (rid, v));
             CREATE TABLE c (i BIGINT, v BIGINT, val DOUBLE, PRIMARY KEY (i, v))",
        )
        .unwrap();
        let mut rows = Vec::new();
        for rid in 0..5000i64 {
            for vdim in 1..=2i64 {
                rows.push(vec![
                    Value::Int(rid),
                    Value::Int(vdim),
                    Value::Double(((rid * 31 + vdim * 7) % 97) as f64 / 10.0),
                ]);
            }
        }
        db.bulk_insert("y", rows).unwrap();
        db.execute("INSERT INTO c VALUES (1,1,0.5),(1,2,1.5),(2,1,4.0),(2,2,2.0)")
            .unwrap();
        let mut r = db
            .execute(
                "SELECT c.i, count(*), sum((y.val - c.val)**2) AS ss \
                 FROM y, c WHERE y.v = c.v GROUP BY c.i ORDER BY c.i",
            )
            .unwrap();
        r.rows
            .drain(..)
            .map(|row| {
                (
                    row[0].as_i64().unwrap(),
                    row[1].as_i64().unwrap(),
                    row[2].as_f64().unwrap(),
                )
            })
            .collect::<Vec<_>>()
    };
    let serial = build(1);
    let parallel = build(4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.0, p.0);
        assert_eq!(s.1, p.1);
        assert!((s.2 - p.2).abs() < 1e-6 * s.2.abs().max(1.0));
    }
}

/// Statement-length limit mirrors the parser caps that break the
/// horizontal strategy at high kp (§3.3).
#[test]
fn long_statement_rejected() {
    let mut db = Database::new();
    db.set_max_statement_len(1000);
    let mut sql = String::from("SELECT ");
    for i in 0..200 {
        if i > 0 {
            sql.push_str(" + ");
        }
        sql.push_str(&format!("{i}"));
    }
    let err = db.execute(&sql).unwrap_err();
    assert!(matches!(err, Error::StatementTooLong { .. }));
}

/// Arithmetic faults surface as errors, not silent NULLs.
#[test]
fn arithmetic_errors_are_loud() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (x DOUBLE)").unwrap();
    db.execute("INSERT INTO t VALUES (0.0)").unwrap();
    assert!(matches!(
        db.execute("SELECT 1.0 / x FROM t").unwrap_err(),
        Error::Arithmetic(_)
    ));
    assert!(matches!(
        db.execute("SELECT ln(x) FROM t").unwrap_err(),
        Error::Arithmetic(_)
    ));
}

/// INSERT with explicit column list fills missing columns with NULL.
#[test]
fn insert_column_list_defaults_null() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT, b DOUBLE, c VARCHAR)")
        .unwrap();
    db.execute("INSERT INTO t (c, a) VALUES ('hi', 7)").unwrap();
    let r = db.execute("SELECT a, b, c FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(7));
    assert_eq!(r.rows[0][1], Value::Null);
    assert_eq!(r.rows[0][2], Value::str("hi"));
}

/// Self-join requires aliases; aliased self-join works.
#[test]
fn self_join_with_aliases() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a BIGINT PRIMARY KEY, b BIGINT)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 2), (2, 3), (3, 1)")
        .unwrap();
    assert!(db.execute("SELECT * FROM t, t").is_err());
    let r = db
        .execute("SELECT u.a, w.b FROM t u, t w WHERE u.b = w.a ORDER BY u.a")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0][1], Value::Int(3)); // 1 → b=2 → t[2].b=3
}

/// NULL join keys never match (SQL semantics).
#[test]
fn null_keys_do_not_join() {
    let mut db = Database::new();
    db.execute("CREATE TABLE a (k BIGINT, x DOUBLE); CREATE TABLE b (k BIGINT, y DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO a VALUES (1, 1.0), (NULL, 2.0)")
        .unwrap();
    db.execute("INSERT INTO b VALUES (1, 10.0), (NULL, 20.0)")
        .unwrap();
    let r = db
        .execute("SELECT a.x, b.y FROM a, b WHERE a.k = b.k")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

/// HAVING filters aggregated groups.
#[test]
fn having_clause() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (i BIGINT, x DOUBLE)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 1.0), (1, 2.0), (2, 10.0)")
        .unwrap();
    let r = db
        .execute("SELECT i, sum(x) FROM t GROUP BY i HAVING sum(x) > 5 ORDER BY i")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::Int(2));
}

/// A query with no FROM evaluates constants.
#[test]
fn constant_select() {
    let mut db = Database::new();
    let r = db.execute("SELECT 2 ** 10, exp(0.0), 1 + 2 * 3").unwrap();
    assert_eq!(r.rows[0][0], v(1024.0));
    assert_eq!(r.rows[0][1], v(1.0));
    assert_eq!(r.rows[0][2], Value::Int(7));
}

/// Insert-select arity mismatch is caught.
#[test]
fn insert_select_arity_checked() {
    let mut db = Database::new();
    db.execute("CREATE TABLE s (a BIGINT, b BIGINT); CREATE TABLE d (a BIGINT)")
        .unwrap();
    db.execute("INSERT INTO s VALUES (1, 2)").unwrap();
    let err = db.execute("INSERT INTO d SELECT a, b FROM s").unwrap_err();
    // Caught statically by the analyze pass, before the SELECT runs.
    assert!(matches!(
        err.as_analyze().expect("analyzer should reject this").kind,
        sqlengine::AnalyzeErrorKind::ArityMismatch { .. }
    ));
}

//! Property tests for the WAL record codec and recovery scanner.
//!
//! Three invariants, over arbitrary statement/value sequences:
//!
//! 1. **Round-trip**: encoding a frame sequence and scanning it back
//!    yields exactly the committed operations, in order.
//! 2. **Truncation safety**: cutting the image at *any* byte yields a
//!    (possibly empty) strict prefix of the committed operations —
//!    never an error for a pure truncation, never altered content.
//! 3. **Flip detection**: flipping any single byte either surfaces as
//!    [`sqlengine::Error::Corruption`] or truncates to a prefix; no
//!    single-byte flip can smuggle altered content past the checksum.
//!
//! (Gated behind the `proptest` feature: restore the proptest
//! dev-dependency to run.)

use proptest::prelude::*;
use sqlengine::error::Error;
use sqlengine::value::Value;
use sqlengine::wal::{encode_commit, encode_frame, scan, WalOp, WAL_MAGIC};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Arbitrary bit patterns: NaNs, infinities, subnormals and -0.0
        // are all legal doubles and must survive bit-exact.
        any::<u64>().prop_map(|bits| Value::Double(f64::from_bits(bits))),
        "[ -~]{0,24}".prop_map(|s| Value::Str(s.into())),
    ]
}

fn arb_op() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        // Statement text is opaque to the codec; any printable string
        // (quotes, semicolons, unicode) must round-trip verbatim.
        "[ -~]{0,80}".prop_map(WalOp::Sql),
        (
            "[a-z][a-z0-9_]{0,8}",
            (0usize..4usize),
            proptest::collection::vec(proptest::collection::vec(arb_value(), 0..4), 0..5),
        )
            .prop_map(|(table, _, rows)| WalOp::BulkInsert {
                table,
                rows: rows.into_iter().map(|r| r.into_boxed_slice()).collect(),
            }),
    ]
}

/// A log image plus which frames were committed.
fn build_image(frames: &[(WalOp, bool)]) -> (Vec<u8>, Vec<(u64, WalOp)>) {
    let mut bytes = WAL_MAGIC.to_vec();
    let mut committed = Vec::new();
    for (seq, (op, commit)) in frames.iter().enumerate() {
        let seq = seq as u64;
        bytes.extend_from_slice(&encode_frame(seq, op));
        if *commit {
            bytes.extend_from_slice(&encode_commit(seq));
            committed.push((seq, op.clone()));
        }
    }
    (bytes, committed)
}

/// Bit-exact equality for ops (PartialEq on f64 treats NaN != NaN).
fn ops_eq(a: &[(u64, WalOp)], b: &[(u64, WalOp)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.0 == y.0 && op_eq(&x.1, &y.1))
}

fn op_eq(a: &WalOp, b: &WalOp) -> bool {
    match (a, b) {
        (WalOp::Sql(x), WalOp::Sql(y)) => x == y,
        (
            WalOp::BulkInsert {
                table: ta,
                rows: ra,
            },
            WalOp::BulkInsert {
                table: tb,
                rows: rb,
            },
        ) => {
            ta == tb
                && ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(x, y)| {
                    x.len() == y.len()
                        && x.iter().zip(y.iter()).all(|(u, v)| match (u, v) {
                            (Value::Double(p), Value::Double(q)) => p.to_bits() == q.to_bits(),
                            _ => u == v,
                        })
                })
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn round_trip_preserves_committed_ops(
        frames in proptest::collection::vec((arb_op(), any::<bool>()), 0..12)
    ) {
        let (bytes, committed) = build_image(&frames);
        let r = scan(&bytes).unwrap();
        prop_assert_eq!(r.valid_len, bytes.len());
        prop_assert!(ops_eq(&r.committed, &committed));
        prop_assert_eq!(r.next_seq, frames.len() as u64);
    }

    #[test]
    fn truncation_yields_a_prefix(
        frames in proptest::collection::vec((arb_op(), any::<bool>()), 1..8),
        cut_frac in 0.0f64..1.0f64,
    ) {
        let (bytes, committed) = build_image(&frames);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        let r = scan(&bytes[..cut]).unwrap();
        prop_assert!(r.committed.len() <= committed.len());
        prop_assert!(ops_eq(&r.committed, &committed[..r.committed.len()]));
        prop_assert!(r.valid_len <= cut);
    }

    #[test]
    fn single_byte_flip_detected_or_truncated(
        frames in proptest::collection::vec((arb_op(), Just(true)), 1..6),
        pos_frac in 0.0f64..1.0f64,
        bit in 0u8..8u8,
    ) {
        let (bytes, committed) = build_image(&frames);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        let mut bad = bytes.clone();
        bad[pos] ^= 1 << bit;
        match scan(&bad) {
            Err(Error::Corruption { .. }) => {} // detected
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
            Ok(r) => {
                // Not detected: the damage must have been confined to a
                // torn tail — a strict prefix, never altered content.
                prop_assert!(r.committed.len() <= committed.len());
                prop_assert!(
                    ops_eq(&r.committed, &committed[..r.committed.len()]),
                    "flip at byte {} bit {} altered recovered content", pos, bit
                );
            }
        }
    }
}

//! `chaos-proxy` — a standalone frame-aware network chaos relay.
//!
//! Sits between `sqlem-cli` and `sqlem-server` and injects byte-level
//! wire faults at chosen frame boundaries, for exercising the
//! exactly-once session protocol across real processes (the `chaos-net`
//! stage of `ci.sh`). The in-process equivalent lives in
//! [`sqlwire::chaos`]; this binary just wraps it with argument parsing
//! and a run-until-stdin-closes lifetime.
//!
//! ```text
//! chaos-proxy --upstream 127.0.0.1:7878 \
//!     --cut-dir to-client --cut-frame 12 --cut-offset 5
//! ```
//!
//! Prints `listening on ADDR` once ready, then relays until stdin
//! reaches EOF (kill the parent, close the pipe, or press ^D).

#![forbid(unsafe_code)]

use std::io::Read;
use std::process::ExitCode;

use sqlwire::{ChaosAction, ChaosProxy, Direction};

const USAGE: &str = "\
usage: chaos-proxy --upstream HOST:PORT [options]

options:
  --listen ADDR          address to listen on (default 127.0.0.1:0)
  --upstream HOST:PORT   server to relay to (required)
  --cut-dir DIR          direction of the cut rule: to-server | to-client
  --cut-frame N          0-based global frame number the cut applies to
  --cut-offset N         bytes of the frame to forward before cutting;
                         omit to cut before the first byte
  --delay-dir DIR        direction of a delay rule
  --delay-frame N        frame to delay
  --delay-ms MS          how long to hold it (default 100)
  --dup-dir DIR          direction of a duplicate rule
  --dup-frame N          frame to deliver twice
  --blackhole-dir DIR    direction of a blackhole rule
  --blackhole-frame N    frame to swallow silently

Every rule fires once, then the relay is clean (reconnects pass
through). Prints `listening on ADDR`, then runs until stdin closes.";

fn parse_dir(s: &str) -> Result<Direction, String> {
    match s {
        "to-server" => Ok(Direction::ToServer),
        "to-client" => Ok(Direction::ToClient),
        other => Err(format!(
            "bad direction {other:?}: want to-server | to-client"
        )),
    }
}

struct Args {
    listen: String,
    upstream: String,
    rules: Vec<(Direction, u64, ChaosAction)>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut listen = "127.0.0.1:0".to_string();
    let mut upstream = None;
    let mut cut_dir = None;
    let mut cut_frame = None;
    let mut cut_offset: Option<usize> = None;
    let mut delay_dir = None;
    let mut delay_frame = None;
    let mut delay_ms: u64 = 100;
    let mut dup_dir = None;
    let mut dup_frame = None;
    let mut hole_dir = None;
    let mut hole_frame = None;

    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => listen = value("--listen")?.clone(),
            "--upstream" => upstream = Some(value("--upstream")?.clone()),
            "--cut-dir" => cut_dir = Some(parse_dir(value("--cut-dir")?)?),
            "--cut-frame" => {
                cut_frame = Some(
                    value("--cut-frame")?
                        .parse::<u64>()
                        .map_err(|e| format!("--cut-frame: {e}"))?,
                )
            }
            "--cut-offset" => {
                cut_offset = Some(
                    value("--cut-offset")?
                        .parse::<usize>()
                        .map_err(|e| format!("--cut-offset: {e}"))?,
                )
            }
            "--delay-dir" => delay_dir = Some(parse_dir(value("--delay-dir")?)?),
            "--delay-frame" => {
                delay_frame = Some(
                    value("--delay-frame")?
                        .parse::<u64>()
                        .map_err(|e| format!("--delay-frame: {e}"))?,
                )
            }
            "--delay-ms" => {
                delay_ms = value("--delay-ms")?
                    .parse::<u64>()
                    .map_err(|e| format!("--delay-ms: {e}"))?
            }
            "--dup-dir" => dup_dir = Some(parse_dir(value("--dup-dir")?)?),
            "--dup-frame" => {
                dup_frame = Some(
                    value("--dup-frame")?
                        .parse::<u64>()
                        .map_err(|e| format!("--dup-frame: {e}"))?,
                )
            }
            "--blackhole-dir" => hole_dir = Some(parse_dir(value("--blackhole-dir")?)?),
            "--blackhole-frame" => {
                hole_frame = Some(
                    value("--blackhole-frame")?
                        .parse::<u64>()
                        .map_err(|e| format!("--blackhole-frame: {e}"))?,
                )
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let upstream = upstream.ok_or("--upstream is required")?;

    let mut rules = Vec::new();
    if let Some(frame) = cut_frame {
        let dir = cut_dir.ok_or("--cut-frame needs --cut-dir")?;
        let action = match cut_offset {
            Some(off) => ChaosAction::CutAt(off),
            None => ChaosAction::CutBefore,
        };
        rules.push((dir, frame, action));
    } else if cut_dir.is_some() || cut_offset.is_some() {
        return Err("--cut-dir/--cut-offset need --cut-frame".into());
    }
    if let Some(frame) = delay_frame {
        let dir = delay_dir.ok_or("--delay-frame needs --delay-dir")?;
        rules.push((dir, frame, ChaosAction::DelayMs(delay_ms)));
    }
    if let Some(frame) = dup_frame {
        let dir = dup_dir.ok_or("--dup-frame needs --dup-dir")?;
        rules.push((dir, frame, ChaosAction::Duplicate));
    }
    if let Some(frame) = hole_frame {
        let dir = hole_dir.ok_or("--blackhole-frame needs --blackhole-dir")?;
        rules.push((dir, frame, ChaosAction::Blackhole));
    }
    Ok(Args {
        listen,
        upstream,
        rules,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("chaos-proxy: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    // The library proxy binds ephemerally; honor an explicit --listen
    // by rejecting what we cannot provide rather than mis-listening.
    if args.listen != "127.0.0.1:0" {
        eprintln!("chaos-proxy: only --listen 127.0.0.1:0 (ephemeral) is supported");
        return ExitCode::from(2);
    }
    let proxy = match ChaosProxy::start(args.upstream.as_str()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("chaos-proxy: start: {e}");
            return ExitCode::from(1);
        }
    };
    for (dir, frame, action) in args.rules {
        proxy.arm(dir, frame, action);
    }
    println!("listening on {}", proxy.addr());
    // Run until the parent closes our stdin (or EOF from a terminal).
    let mut sink = [0u8; 1024];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
    ExitCode::SUCCESS
}

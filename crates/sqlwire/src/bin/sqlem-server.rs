//! `sqlem-server` — serve a SQLEM database over TCP.
//!
//! The DBMS half of the paper's two-tier deployment: start this where
//! the data lives, point `sqlem-cli --connect host:port` (or any
//! [`sqlwire::RemoteConnection`]) at it, and the EM clustering client
//! runs its generated SQL here.
//!
//! ```text
//! sqlem-server [--listen ADDR] [--durable] [--data-dir DIR]
//!              [--workers N] [--max-connections N]
//!              [--idle-timeout SECS] [--lock-timeout SECS]
//!              [--auth-token TOKEN] [--drop-nth-connection N]
//!              [--memory-budget BYTES] [--session-memory-budget BYTES]
//!              [--inject-fault SPEC]... [--seed N]
//! ```
//!
//! Prints `listening on ADDR` once ready (scripts wait for that line),
//! then serves until stdin closes or reads a `shutdown` line, at which
//! point it stops accepting and drains live sessions. `--durable`
//! write-ahead-logs every mutation under `--data-dir` (default
//! `sqlem_data`), so `kill -9` + restart recovers to the last
//! acknowledged statement and remote clients resume from their
//! checkpoint tables.

#![forbid(unsafe_code)]

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

use sqlengine::{Database, FaultPlan, FaultRule, SharedDatabase, StatementKind};
use sqlwire::{Server, ServerConfig};

struct Args {
    listen: String,
    data_dir: Option<String>,
    workers: usize,
    seed: u64,
    fault_specs: Vec<String>,
    server: ServerConfig,
}

const USAGE: &str = "usage: sqlem-server [--listen ADDR] [--durable] [--data-dir DIR]\n\
     [--workers N] [--max-connections N] [--idle-timeout SECS]\n\
     [--lock-timeout SECS] [--auth-token TOKEN]\n\
     [--drop-nth-connection N] [--memory-budget BYTES]\n\
     [--session-memory-budget BYTES] [--inject-fault SPEC]... [--seed N]\n\
\n\
Serves a SQLEM database over TCP (see docs/SERVER.md). Prints\n\
'listening on ADDR' when ready; type 'shutdown' (or close stdin) for\n\
a graceful drain. --durable persists to --data-dir (default\n\
sqlem_data) via the write-ahead log.";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7878".to_string(),
        data_dir: None,
        workers: 1,
        seed: 0,
        fault_specs: Vec::new(),
        server: ServerConfig::default(),
    };
    let mut durable = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut req = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => args.listen = req("--listen")?,
            "--durable" => durable = true,
            "--data-dir" => args.data_dir = Some(req("--data-dir")?),
            "--workers" => {
                args.workers = req("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
            }
            "--max-connections" => {
                args.server.max_connections = req("--max-connections")?
                    .parse()
                    .map_err(|_| "--max-connections needs an integer".to_string())?;
            }
            "--idle-timeout" => {
                args.server.idle_timeout = Duration::from_secs_f64(
                    req("--idle-timeout")?
                        .parse()
                        .map_err(|_| "--idle-timeout needs seconds".to_string())?,
                );
            }
            "--lock-timeout" => {
                args.server.lock_timeout = Duration::from_secs_f64(
                    req("--lock-timeout")?
                        .parse()
                        .map_err(|_| "--lock-timeout needs seconds".to_string())?,
                );
            }
            "--auth-token" => args.server.auth_token = req("--auth-token")?,
            "--drop-nth-connection" => {
                args.server.drop_nth_connection = Some(
                    req("--drop-nth-connection")?
                        .parse()
                        .map_err(|_| "--drop-nth-connection needs an integer".to_string())?,
                );
            }
            "--memory-budget" => {
                args.server.memory_budget =
                    Some(parse_budget("--memory-budget", &req("--memory-budget")?)?);
            }
            "--session-memory-budget" => {
                args.server.session_memory_budget = Some(parse_budget(
                    "--session-memory-budget",
                    &req("--session-memory-budget")?,
                )?);
            }
            "--inject-fault" => args.fault_specs.push(req("--inject-fault")?),
            "--seed" => {
                args.seed = req("--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    if durable && args.data_dir.is_none() {
        args.data_dir = Some("sqlem_data".to_string());
    }
    Ok(args)
}

/// Parse a byte budget with an optional K/M/G suffix (powers of 1024).
fn parse_budget(flag: &str, value: &str) -> Result<u64, String> {
    let t = value.trim().to_ascii_lowercase();
    let (digits, mult) = if let Some(d) = t.strip_suffix('g') {
        (d, 1u64 << 30)
    } else if let Some(d) = t.strip_suffix('m') {
        (d, 1 << 20)
    } else if let Some(d) = t.strip_suffix('k') {
        (d, 1 << 10)
    } else {
        (t.as_str(), 1)
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|b| b.checked_mul(mult))
        .filter(|&b| b > 0)
        .ok_or_else(|| format!("{flag} needs a positive byte count (K/M/G suffixes accepted)"))
}

/// Same `--inject-fault` grammar as `sqlem-cli`:
/// `SELECTOR[:MOD]...` with SELECTOR a statement number, `kind=NAME`
/// or `table=SUBSTRING`, MODs `transient`/`permanent`/`exhaustion`/
/// `once`/`always`.
fn parse_fault_rule(spec: &str) -> Result<FaultRule, String> {
    let mut parts = spec.split(':');
    let selector = parts.next().unwrap_or_default();
    let mut rule = if let Some(kind) = selector.strip_prefix("kind=") {
        let kind = match kind {
            "create" => StatementKind::CreateTable,
            "drop" => StatementKind::DropTable,
            "insert" => StatementKind::Insert,
            "update" => StatementKind::Update,
            "delete" => StatementKind::Delete,
            "select" => StatementKind::Select,
            other => return Err(format!("unknown statement kind {other:?} in {spec:?}")),
        };
        FaultRule::kind(kind)
    } else if let Some(pattern) = selector.strip_prefix("table=") {
        FaultRule::table(pattern)
    } else {
        let n: usize = selector.parse().map_err(|_| {
            format!(
                "fault selector must be a statement number, kind=…, or table=…, got {selector:?}"
            )
        })?;
        FaultRule::nth(n)
    };
    let mut always = false;
    for modifier in parts {
        match modifier {
            "transient" => rule = rule.transient(),
            "permanent" => rule = rule.permanent(),
            "exhaustion" => rule = rule.exhausting(),
            "once" => always = false,
            "always" => always = true,
            other => return Err(format!("unknown fault modifier {other:?} in {spec:?}")),
        }
    }
    if !always {
        rule = rule.once();
    }
    Ok(rule)
}

fn run(args: Args) -> Result<(), String> {
    let mut db = match &args.data_dir {
        Some(dir) => {
            let db = Database::open_durable(dir)
                .map_err(|e| format!("cannot open durable database at {dir}: {e}"))?;
            eprintln!("durable database at {dir} (write-ahead logged)");
            db
        }
        None => Database::new(),
    };
    db.set_workers(args.workers);
    if !args.fault_specs.is_empty() {
        let rules = args
            .fault_specs
            .iter()
            .map(|s| parse_fault_rule(s))
            .collect::<Result<Vec<_>, _>>()?;
        db.set_fault_plan(FaultPlan::new(rules).with_seed(args.seed));
        eprintln!("fault plan armed ({} rule(s))", args.fault_specs.len());
    }
    if let Some(b) = args.server.memory_budget {
        eprintln!("global working-memory budget: {b} byte(s)");
    }
    if let Some(b) = args.server.session_memory_budget {
        eprintln!("per-session working-memory budget: {b} byte(s)");
    }

    let server = Server::bind(&args.listen, SharedDatabase::new(db), args.server)
        .map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.handle();
    println!("listening on {addr}");
    std::io::stdout().flush().ok();

    // The accept loop gets its own thread; this one watches stdin so an
    // operator (or a test harness closing the pipe) can drain us.
    let accept = std::thread::spawn(move || server.run());
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "shutdown" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    eprintln!("draining {} live session(s)", handle.active_sessions());
    handle.shutdown();
    accept
        .join()
        .map_err(|_| "accept loop panicked".to_string())?
        .map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sqlem-server: {msg}");
            ExitCode::FAILURE
        }
    }
}

//! Frame-aware byte-level network chaos proxy.
//!
//! A hermetic (std-only) TCP relay that sits between a wire client and
//! a server and injects faults at *chosen byte offsets of chosen
//! frames*: cut the connection before a frame, mid-frame after N
//! bytes, delay it, deliver it twice, or blackhole it (swallow the
//! frame and go silent). Because the proxy understands the
//! `[len][crc][payload]` frame grammar it can target fault classes the
//! exactly-once protocol must survive:
//!
//! - **pre-request cut** — the statement never reached the server;
//! - **mid-request cut** — the server saw a torn frame;
//! - **post-execute / pre-reply cut** — the server executed but the
//!   ack was lost (the classic duplicate-effects window);
//! - **mid-reply cut** — the ack was torn.
//!
//! Rules are *consumed once*: after a rule fires, subsequent redials
//! relay cleanly, so a retrying client exercises replay rather than an
//! endlessly dying wire. Frame counters are **global per direction**
//! across all proxied connections — frame `i` means "the i-th request
//! frame the client ever sent", stable across reconnects.
//!
//! The upstream address is swappable at runtime ([`ChaosProxy::set_upstream`])
//! so tests can kill a server, restart it on a new port, and let the
//! same proxied endpoint carry resumed sessions.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Which way a frame is travelling through the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → server (requests).
    ToServer,
    /// Server → client (replies).
    ToClient,
}

/// A fault to inject when a matching frame passes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Sever the connection before forwarding any byte of the frame.
    CutBefore,
    /// Forward exactly `offset` bytes of the frame (header included),
    /// then sever the connection.
    CutAt(usize),
    /// Hold the frame for this many milliseconds, then forward it.
    DelayMs(u64),
    /// Forward the frame twice back-to-back.
    Duplicate,
    /// Swallow the frame and keep the connection open (silent loss).
    Blackhole,
}

/// Byte length of the fixed frame header (`u32` len + `u32` crc).
const HEADER_LEN: usize = 8;
/// Upper bound accepted by the proxy; mirrors `frame::MAX_FRAME_LEN`.
const MAX_RELAY_FRAME: usize = 64 * 1024 * 1024;

#[derive(Debug)]
struct Shared {
    upstream: Mutex<SocketAddr>,
    rules: Mutex<HashMap<(Direction, u64), ChaosAction>>,
    sent: [AtomicU64; 2], // frames forwarded per direction
    fired: AtomicU64,     // rules consumed
    stop: AtomicBool,
    active: AtomicU64, // live proxied connections
}

fn dir_index(d: Direction) -> usize {
    match d {
        Direction::ToServer => 0,
        Direction::ToClient => 1,
    }
}

/// Handle to a running chaos proxy. Dropping the handle stops the
/// listener; in-flight relays die with their connections.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy on an ephemeral localhost port relaying to
    /// `upstream`.
    pub fn start(upstream: impl ToSocketAddrs) -> std::io::Result<ChaosProxy> {
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("upstream resolved to no address"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            upstream: Mutex::new(upstream),
            rules: Mutex::new(HashMap::new()),
            sent: [AtomicU64::new(0), AtomicU64::new(0)],
            fired: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            active: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(ChaosProxy {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// Address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Arm a once-only rule: when frame number `frame` (0-based, global
    /// per direction) passes in `dir`, apply `action`. Re-arming the
    /// same (dir, frame) replaces the previous rule.
    pub fn arm(&self, dir: Direction, frame: u64, action: ChaosAction) {
        self.shared
            .rules
            .lock()
            .unwrap()
            .insert((dir, frame), action);
    }

    /// Point the proxy at a different upstream (e.g. a restarted
    /// server). Existing connections keep their old upstream; new
    /// dials use the new one.
    pub fn set_upstream(&self, upstream: impl ToSocketAddrs) -> std::io::Result<()> {
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("upstream resolved to no address"))?;
        *self.shared.upstream.lock().unwrap() = upstream;
        Ok(())
    }

    /// Frames fully forwarded in `dir` so far.
    pub fn frames_forwarded(&self, dir: Direction) -> u64 {
        self.shared.sent[dir_index(dir)].load(Ordering::SeqCst)
    }

    /// Rules that have fired so far.
    pub fn rules_fired(&self) -> u64 {
        self.shared.fired.load(Ordering::SeqCst)
    }

    /// Live proxied connections right now.
    pub fn active_connections(&self) -> u64 {
        self.shared.active.load(Ordering::SeqCst)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let upstream_addr = *shared.upstream.lock().unwrap();
                let server =
                    match TcpStream::connect_timeout(&upstream_addr, Duration::from_secs(5)) {
                        Ok(s) => s,
                        Err(_) => {
                            // Upstream down: refuse by dropping the client.
                            drop(client);
                            continue;
                        }
                    };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                spawn_relay_pair(client, server, Arc::clone(&shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn spawn_relay_pair(client: TcpStream, server: TcpStream, shared: Arc<Shared>) {
    shared.active.fetch_add(1, Ordering::SeqCst);
    let c2 = client.try_clone();
    let s2 = server.try_clone();
    let (c2, s2) = match (c2, s2) {
        (Ok(c), Ok(s)) => (c, s),
        _ => {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            return;
        }
    };
    let sh_up = Arc::clone(&shared);
    let sh_down = Arc::clone(&shared);
    // Count the pair as one connection; release when the client→server
    // leg dies (the client side defines the connection's lifetime).
    thread::spawn(move || {
        relay(client, s2, Direction::ToServer, &sh_up);
        sh_up.active.fetch_sub(1, Ordering::SeqCst);
    });
    thread::spawn(move || {
        relay(server, c2, Direction::ToClient, &sh_down);
    });
}

/// Relay whole frames from `src` to `dst`, applying armed rules.
/// Returns when either side dies or a cut rule fires.
fn relay(mut src: TcpStream, mut dst: TcpStream, dir: Direction, shared: &Shared) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // Read one whole frame (header, then payload).
        let mut header = [0u8; HEADER_LEN];
        if src.read_exact(&mut header).is_err() {
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
        if len > MAX_RELAY_FRAME {
            // Not our protocol: shut the pair down.
            let _ = dst.shutdown(Shutdown::Both);
            let _ = src.shutdown(Shutdown::Both);
            return;
        }
        let mut frame = vec![0u8; HEADER_LEN + len];
        frame[..HEADER_LEN].copy_from_slice(&header);
        if src.read_exact(&mut frame[HEADER_LEN..]).is_err() {
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        let number = shared.sent[dir_index(dir)].fetch_add(1, Ordering::SeqCst);
        let action = shared.rules.lock().unwrap().remove(&(dir, number));
        match action {
            None => {
                if dst.write_all(&frame).is_err() {
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
            }
            Some(a) => {
                shared.fired.fetch_add(1, Ordering::SeqCst);
                match a {
                    ChaosAction::CutBefore => {
                        sever(&src, &dst);
                        return;
                    }
                    ChaosAction::CutAt(offset) => {
                        let n = offset.min(frame.len());
                        let _ = dst.write_all(&frame[..n]);
                        let _ = dst.flush();
                        sever(&src, &dst);
                        return;
                    }
                    ChaosAction::DelayMs(ms) => {
                        thread::sleep(Duration::from_millis(ms));
                        if dst.write_all(&frame).is_err() {
                            let _ = src.shutdown(Shutdown::Both);
                            return;
                        }
                    }
                    ChaosAction::Duplicate => {
                        if dst.write_all(&frame).is_err() || dst.write_all(&frame).is_err() {
                            let _ = src.shutdown(Shutdown::Both);
                            return;
                        }
                    }
                    ChaosAction::Blackhole => {
                        // Swallow the frame; the peer times out or the
                        // client gives up and redials.
                    }
                }
            }
        }
    }
}

fn sever(src: &TcpStream, dst: &TcpStream) {
    let _ = dst.shutdown(Shutdown::Both);
    let _ = src.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// Minimal frame: `[len][crc][payload]` with a fake crc (the proxy
    /// must not verify checksums — it relays torn bytes verbatim).
    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        f.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        f.extend_from_slice(payload);
        f
    }

    /// Echo server: reads frames, echoes each back verbatim.
    fn echo_server() -> (SocketAddr, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = thread::spawn(move || {
            // One connection is enough for these tests.
            if let Some(Ok(mut s)) = listener.incoming().next() {
                loop {
                    let mut h = [0u8; 8];
                    if s.read_exact(&mut h).is_err() {
                        break;
                    }
                    let len = u32::from_le_bytes([h[0], h[1], h[2], h[3]]) as usize;
                    let mut p = vec![0u8; len];
                    if s.read_exact(&mut p).is_err() {
                        break;
                    }
                    let mut out = h.to_vec();
                    out.extend_from_slice(&p);
                    if s.write_all(&out).is_err() {
                        break;
                    }
                }
            }
        });
        (addr, t)
    }

    #[test]
    fn clean_relay_round_trips_frames() {
        let (upstream, server) = echo_server();
        let proxy = ChaosProxy::start(upstream).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let f = frame(b"hello");
        c.write_all(&f).unwrap();
        let mut back = vec![0u8; f.len()];
        c.read_exact(&mut back).unwrap();
        assert_eq!(back, f);
        assert_eq!(proxy.frames_forwarded(Direction::ToServer), 1);
        assert_eq!(proxy.frames_forwarded(Direction::ToClient), 1);
        assert_eq!(proxy.rules_fired(), 0);
        drop(c);
        drop(proxy);
        let _ = server.join();
    }

    #[test]
    fn cut_before_severs_without_forwarding() {
        let (upstream, _server) = echo_server();
        let proxy = ChaosProxy::start(upstream).unwrap();
        proxy.arm(Direction::ToServer, 0, ChaosAction::CutBefore);
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(&frame(b"doomed")).unwrap();
        let mut buf = [0u8; 1];
        // The proxy cuts: we observe EOF (or reset) instead of an echo.
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let dead = matches!(c.read(&mut buf), Ok(0) | Err(_));
        assert!(dead, "connection should be severed");
        assert_eq!(proxy.rules_fired(), 1);
        assert_eq!(proxy.frames_forwarded(Direction::ToClient), 0);
    }

    #[test]
    fn cut_at_offset_forwards_partial_frame_then_rules_clear() {
        let (upstream, _server) = echo_server();
        let proxy = ChaosProxy::start(upstream).unwrap();
        // Tear the echo reply mid-frame after 3 bytes.
        proxy.arm(Direction::ToClient, 0, ChaosAction::CutAt(3));
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(&frame(b"torn")).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match c.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => got.extend_from_slice(&buf[..n]),
            }
        }
        assert_eq!(got.len(), 3, "exactly the armed offset leaks through");
        assert_eq!(proxy.rules_fired(), 1);
    }

    #[test]
    fn duplicate_delivers_frame_twice() {
        let (upstream, _server) = echo_server();
        let proxy = ChaosProxy::start(upstream).unwrap();
        proxy.arm(Direction::ToServer, 0, ChaosAction::Duplicate);
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let f = frame(b"twice");
        c.write_all(&f).unwrap();
        // The echo server echoes both copies back.
        let mut back = vec![0u8; f.len() * 2];
        c.read_exact(&mut back).unwrap();
        assert_eq!(&back[..f.len()], &f[..]);
        assert_eq!(&back[f.len()..], &f[..]);
    }

    #[test]
    fn counters_are_global_across_reconnects() {
        let (upstream, _server) = echo_server();
        let listener_upstream = upstream;
        // Echo server handles one connection; use a fresh one per dial.
        let proxy = ChaosProxy::start(listener_upstream).unwrap();
        {
            let mut c = TcpStream::connect(proxy.addr()).unwrap();
            let f = frame(b"one");
            c.write_all(&f).unwrap();
            let mut back = vec![0u8; f.len()];
            c.read_exact(&mut back).unwrap();
        }
        assert_eq!(proxy.frames_forwarded(Direction::ToServer), 1);
    }
}

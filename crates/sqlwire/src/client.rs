//! The remote [`SqlExecutor`]: SQLEM's workstation side of the wire.
//!
//! [`RemoteConnection`] speaks the [`crate::proto`] protocol over one
//! TCP connection and implements [`SqlExecutor`], so the entire `sqlem`
//! driver — preflight linting, prepared E/M scripts, checkpoints,
//! telemetry — runs against a server unchanged: the paper's two-tier
//! deployment (§1.4) falls out of the trait seam.
//!
//! ## Reconnection
//!
//! A transient wire failure (reset, timeout, refused dial while the
//! server restarts) marks the connection dead and surfaces as a
//! *transient* [`Error::Net`], which `sqlem`'s `RetryPolicy` already
//! classifies as retryable. The retried operation finds the dead
//! connection and re-dials transparently, restoring session state the
//! server lost: the handshake, the metrics-recording flag, and every
//! prepared script (client-side ids are stable across reconnects; the
//! fresh server ids are remapped internally).
//!
//! ## Exactly-once replay
//!
//! Lost acks are *not* ambiguous here: every statement-bearing request
//! carries a session-scoped sequence number ([`StmtMeta`]), and the
//! handshake carries a durable *resume token* that reattaches a
//! reconnecting client to its server-side dedup window. When the wire
//! dies with a statement in flight, the client remembers the statement
//! and its sequence number; the retried operation re-sends it under
//! the *same* number, and the server either serves the cached reply,
//! answers [`Response::ReplayApplied`] (the effects committed before
//! the ack was lost — reconciled locally instead of re-executed), or
//! re-executes a statement proven to have left no effects. A reply
//! that *was* decoded — success or engine error — resolves the
//! statement, so an application-level retry after an engine fault is a
//! new statement under a new sequence number, never a replay.
//!
//! Bulk loads chunk client-side; the same machinery tracks which
//! chunks were acked so a resumed load replays only the unresolved
//! chunk and never re-inserts acked rows (see
//! [`SqlExecutor::bulk_insert_rows`]).
//!
//! Per-statement deadlines ([`ClientConfig::statement_deadline`]) ride
//! the same header: the server enforces the budget against its lock
//! wait and the execution path and answers with the typed, transient
//! [`Error::Deadline`] when it expires.

use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sqlengine::{
    Error, ExecMetrics, Limits, PrepareError, PreparedId, QueryResult, Result, SqlExecutor,
    SymbolicCatalog, Value,
};

use crate::frame::{read_frame, write_frame};
use crate::proto::{Request, Response, StmtMeta, PROTOCOL_VERSION};

/// Rows per bulk-insert frame: keeps each frame far below
/// [`crate::frame::MAX_FRAME_LEN`] even for wide rows.
const BULK_CHUNK_ROWS: usize = 16 * 1024;

/// Connection settings for [`RemoteConnection::connect`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Token presented in the handshake (must match the server's).
    pub auth_token: String,
    /// Work-table namespace to claim exclusively ("" = no claim).
    pub namespace: String,
    /// Dial timeout per address.
    pub connect_timeout: Duration,
    /// Optional cap on waiting for any single reply (None = block).
    pub read_timeout: Option<Duration>,
    /// Optional per-statement wall-clock budget, sent with every
    /// statement-bearing request and enforced *server-side* against
    /// both the lock wait and the execution path. Each attempt gets a
    /// fresh budget; expiry surfaces as the typed, transient
    /// [`Error::Deadline`].
    pub statement_deadline: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            auth_token: String::new(),
            namespace: String::new(),
            connect_timeout: Duration::from_secs(5),
            read_timeout: None,
            statement_deadline: None,
        }
    }
}

/// What the server told us at handshake, cached for the infallible
/// [`SqlExecutor`] accessors.
#[derive(Debug, Clone)]
struct HelloInfo {
    session: u64,
    max_statement_len: usize,
    limits: Limits,
    description: String,
}

/// Identity of the statement whose reply the wire may have eaten. A
/// keyed call whose logical key matches replays under the same
/// sequence number; any other keyed call abandons the old number (the
/// caller gave up on that statement).
#[derive(Debug, Clone, PartialEq, Eq)]
enum InFlightKey {
    /// `execute` — keyed by statement text.
    Query(String),
    /// `run_prepared` — keyed by the *client* id, which is stable
    /// across redials (server ids are remapped on reconnect).
    Exec(u64),
    /// `execute_partial` — keyed by statement text, distinct from
    /// [`InFlightKey::Query`] so the same SQL sent both ways never
    /// replays the wrong reply shape.
    Partial(String),
    /// One bulk chunk — keyed by table and row offset within the load.
    Bulk {
        /// Destination table.
        table: String,
        /// Offset of the chunk's first row within the full load.
        offset: usize,
    },
}

/// Progress of a chunked bulk load, kept across wire failures so a
/// resumed load skips acked chunks instead of re-sending them.
#[derive(Debug, Clone)]
struct BulkProgress {
    table: String,
    total_rows: usize,
    /// Rows in chunks the server has acknowledged.
    acked_rows: usize,
    /// Sum of the server's per-chunk insert counts so far.
    acked_count: usize,
}

/// A reconnecting client-side [`SqlExecutor`] over TCP.
pub struct RemoteConnection {
    addr: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
    hello: HelloInfo,
    metrics_on: bool,
    /// Every prepared script, in prepare order, for replay on reconnect.
    groups: Vec<Vec<String>>,
    /// Client id (stable) → (group index, offset within group).
    id_map: Vec<(usize, usize)>,
    /// Client id → current server id (rebuilt on reconnect).
    server_ids: HashMap<u64, u64>,
    /// Durable session identity, presented on every (re)dial.
    resume_token: String,
    /// Next fresh statement sequence number.
    next_seq: u64,
    /// The statement whose reply a wire failure may have eaten.
    in_flight: Option<(u64, InFlightKey)>,
    /// Resumable bulk-load progress (see [`BulkProgress`]).
    bulk: Option<BulkProgress>,
}

impl RemoteConnection {
    /// Dial `addr` (`host:port`) and complete the handshake eagerly, so
    /// a bad address, version or token fails here, not mid-run.
    pub fn connect(addr: &str, config: ClientConfig) -> Result<RemoteConnection> {
        let mut conn = RemoteConnection {
            addr: addr.to_string(),
            config,
            stream: None,
            hello: HelloInfo {
                session: 0,
                max_statement_len: usize::MAX,
                limits: Limits::unbounded(),
                description: String::new(),
            },
            metrics_on: false,
            groups: Vec::new(),
            id_map: Vec::new(),
            server_ids: HashMap::new(),
            resume_token: String::new(),
            next_seq: 0,
            in_flight: None,
            bulk: None,
        };
        conn.dial()?;
        Ok(conn)
    }

    /// The server-assigned id of the current session (changes on
    /// reconnect; usable in [`RemoteConnection::cancel_session`]).
    pub fn session_id(&self) -> u64 {
        self.hello.session
    }

    /// The server's self-description from the handshake.
    pub fn server_description(&self) -> &str {
        &self.hello.description
    }

    /// The session resume token the server issued (stable across
    /// reconnects; a restarted durable server recognizes it).
    pub fn resume_token(&self) -> &str {
        &self.resume_token
    }

    /// Ask the server to cancel another live session (by the id its
    /// owner obtained from [`RemoteConnection::session_id`]). Returns
    /// whether the session existed.
    pub fn cancel_session(&mut self, session: u64) -> Result<bool> {
        match self.call(&Request::Cancel { session })? {
            Response::Bool(b) => Ok(b),
            other => Err(unexpected("Cancel", &other)),
        }
    }

    /// Establish the TCP stream, shake hands, and restore session state
    /// (metrics flag, prepared scripts) the server side may have lost.
    fn dial(&mut self) -> Result<()> {
        self.stream = None;
        let addrs: Vec<_> = self
            .addr
            .to_socket_addrs()
            .map_err(|e| Error::net_permanent("resolve", format!("{}: {e}", self.addr)))?
            .collect();
        let mut last: Option<Error> = None;
        let mut stream = None;
        for a in addrs {
            match TcpStream::connect_timeout(&a, self.config.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(crate::frame::io_to_net("connect", &e)),
            }
        }
        let Some(stream) = stream else {
            return Err(last.unwrap_or_else(|| {
                Error::net_permanent("resolve", format!("{}: no addresses", self.addr))
            }));
        };
        stream
            .set_nodelay(true)
            .map_err(|e| crate::frame::io_to_net("set_nodelay", &e))?;
        stream
            .set_read_timeout(self.config.read_timeout)
            .map_err(|e| crate::frame::io_to_net("set_read_timeout", &e))?;
        self.stream = Some(stream);

        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
            auth_token: self.config.auth_token.clone(),
            namespace: self.config.namespace.clone(),
            resume_token: self.resume_token.clone(),
        };
        match self.raw_call(&hello)? {
            Response::HelloAck {
                version: _,
                session,
                max_statement_len,
                limits,
                description,
                resume_token,
            } => {
                self.hello = HelloInfo {
                    session,
                    max_statement_len: max_statement_len as usize,
                    limits,
                    description,
                };
                self.resume_token = resume_token;
            }
            other => return Err(unexpected("Hello", &other)),
        }

        // Restore what the (possibly restarted) server no longer has.
        if self.metrics_on {
            match self.raw_call(&Request::SetMetrics { on: true })? {
                Response::Ok => {}
                other => return Err(unexpected("SetMetrics", &other)),
            }
        }
        self.server_ids.clear();
        for (group_idx, group) in self.groups.clone().iter().enumerate() {
            let resp = self.raw_call(&Request::Prepare {
                statements: group.clone(),
            })?;
            let ids = match resp {
                Response::PreparedIds(ids) => ids,
                Response::PrepareErr { error, .. } => return Err(error),
                other => return Err(unexpected("Prepare", &other)),
            };
            for (offset, server_id) in ids.into_iter().enumerate() {
                let client_id = self
                    .id_map
                    .iter()
                    .position(|&(g, o)| g == group_idx && o == offset)
                    .expect("id_map covers every prepared statement")
                    as u64;
                self.server_ids.insert(client_id, server_id);
            }
        }
        Ok(())
    }

    /// One request/response over the live stream. Any wire failure
    /// kills the stream so the next call re-dials.
    fn raw_call(&mut self, req: &Request) -> Result<Response> {
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| Error::net_transient("call", "connection is down"))?;
        let r = write_frame(stream, &req.encode()).and_then(|()| read_frame(stream));
        let payload = match r {
            Ok(p) => p,
            Err(e) => {
                self.stream = None;
                return Err(e);
            }
        };
        match Response::decode(&payload) {
            Ok(Response::Err(e)) => Err(e),
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// [`RemoteConnection::raw_call`] with transparent re-dial when the
    /// connection died earlier.
    fn call(&mut self, req: &Request) -> Result<Response> {
        if self.stream.is_none() {
            self.dial()?;
        }
        self.raw_call(req)
    }

    /// The statement metadata for this attempt: its sequence number
    /// plus a fresh deadline budget.
    fn meta(&self, seq: u64) -> StmtMeta {
        StmtMeta {
            seq,
            deadline_ms: self
                .config
                .statement_deadline
                .map_or(0, |d| d.as_millis().max(1) as u64),
        }
    }

    /// One statement-bearing request under the exactly-once contract.
    ///
    /// If `key` matches the in-flight statement (its reply was eaten by
    /// a wire failure), the send *replays* under the same sequence
    /// number; otherwise it is a fresh statement under a fresh number.
    /// Any decoded reply — success or engine error — resolves the
    /// in-flight slot; only a wire death keeps it armed for replay.
    fn keyed_call(
        &mut self,
        key: InFlightKey,
        build: impl FnOnce(StmtMeta) -> Request,
    ) -> Result<Response> {
        let seq = match &self.in_flight {
            Some((s, k)) if *k == key => *s,
            _ => {
                let s = self.next_seq;
                self.next_seq += 1;
                s
            }
        };
        self.in_flight = Some((seq, key));
        if self.stream.is_none() {
            self.dial()?; // in_flight stays armed if the dial fails
        }
        let result = self.raw_call(&build(self.meta(seq)));
        if self.stream.is_some() {
            // A reply was decoded (even an engine error): the statement
            // is resolved. A later application-level retry is a *new*
            // statement, never a replay.
            self.in_flight = None;
        }
        result
    }
}

impl std::fmt::Debug for RemoteConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteConnection")
            .field("addr", &self.addr)
            .field("session", &self.hello.session)
            .field("connected", &self.stream.is_some())
            .field("resume_token", &self.resume_token)
            .finish_non_exhaustive()
    }
}

fn unexpected(what: &str, got: &Response) -> Error {
    Error::net_permanent(
        "protocol",
        format!("unexpected response to {what}: {got:?}"),
    )
}

impl SqlExecutor for RemoteConnection {
    fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let key = InFlightKey::Query(sql.to_string());
        match self.keyed_call(key, |meta| Request::Query {
            meta,
            sql: sql.to_string(),
        })? {
            Response::Rows(q) => Ok(q),
            // The effects committed before the ack was lost; the result
            // bytes are gone. Reads are never answered this way (they
            // leave no effects and simply re-execute), so an empty
            // affected-rows result is a faithful reconciliation.
            Response::ReplayApplied => Ok(QueryResult::affected(0)),
            other => Err(unexpected("Query", &other)),
        }
    }

    fn execute_partial(&mut self, sql: &str) -> Result<sqlengine::PartialAggResult> {
        let key = InFlightKey::Partial(sql.to_string());
        match self.keyed_call(key, |meta| Request::ExecutePartial {
            meta,
            sql: sql.to_string(),
        })? {
            Response::Partial(p) => Ok(p),
            // Partial execution is a pure read: it leaves no effects,
            // so a server that lost the cached reply bytes can never
            // answer ReplayApplied for it — re-execution under a fresh
            // dial handles the recovery instead.
            other => Err(unexpected("ExecutePartial", &other)),
        }
    }

    fn prepare_script(
        &mut self,
        statements: &[String],
    ) -> std::result::Result<Vec<PreparedId>, PrepareError> {
        let wrap = |error: Error| PrepareError { index: 0, error };
        let resp = self
            .call(&Request::Prepare {
                statements: statements.to_vec(),
            })
            .map_err(wrap)?;
        let server_ids = match resp {
            Response::PreparedIds(ids) => ids,
            Response::PrepareErr { index, error } => {
                return Err(PrepareError {
                    index: index as usize,
                    error,
                })
            }
            other => return Err(wrap(unexpected("Prepare", &other))),
        };
        let group_idx = self.groups.len();
        self.groups.push(statements.to_vec());
        let mut client_ids = Vec::with_capacity(server_ids.len());
        for (offset, server_id) in server_ids.into_iter().enumerate() {
            let client_id = self.id_map.len() as u64;
            self.id_map.push((group_idx, offset));
            self.server_ids.insert(client_id, server_id);
            client_ids.push(PreparedId(client_id));
        }
        Ok(client_ids)
    }

    fn run_prepared(&mut self, id: PreparedId) -> Result<QueryResult> {
        if self.stream.is_none() {
            self.dial()?; // refreshes server_ids
        }
        let server_id = *self.server_ids.get(&id.0).ok_or_else(|| {
            Error::net_permanent("execute prepared", format!("unknown prepared id {}", id.0))
        })?;
        match self.keyed_call(InFlightKey::Exec(id.0), |meta| Request::ExecutePrepared {
            meta,
            id: server_id,
        })? {
            Response::Rows(q) => Ok(q),
            Response::ReplayApplied => Ok(QueryResult::affected(0)),
            other => Err(unexpected("ExecutePrepared", &other)),
        }
    }

    fn clear_prepared(&mut self) -> Result<()> {
        self.groups.clear();
        self.id_map.clear();
        self.server_ids.clear();
        match self.call(&Request::ClearPrepared)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("ClearPrepared", &other)),
        }
    }

    fn bulk_insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        if rows.is_empty() {
            // Arity/table checks still apply server-side.
            let key = InFlightKey::Bulk {
                table: table.to_string(),
                offset: 0,
            };
            return match self.keyed_call(key, |meta| Request::BulkInsert {
                meta,
                table: table.to_string(),
                rows,
            })? {
                Response::Count(n) => Ok(n as usize),
                Response::ReplayApplied => Ok(0),
                other => Err(unexpected("BulkInsert", &other)),
            };
        }
        // Resume a matching interrupted load (same table, same shape):
        // chunks the server acked are skipped locally; the unresolved
        // chunk replays under its original sequence number.
        let mut progress = match self.bulk.take() {
            Some(p) if p.table == table && p.total_rows == rows.len() => p,
            _ => {
                self.in_flight = None; // a different load abandons any old chunk
                BulkProgress {
                    table: table.to_string(),
                    total_rows: rows.len(),
                    acked_rows: 0,
                    acked_count: 0,
                }
            }
        };
        while progress.acked_rows < rows.len() {
            let offset = progress.acked_rows;
            let end = (offset + BULK_CHUNK_ROWS).min(rows.len());
            let chunk: Vec<Vec<Value>> = rows[offset..end].to_vec();
            let key = InFlightKey::Bulk {
                table: table.to_string(),
                offset,
            };
            let resp = self.keyed_call(key, |meta| Request::BulkInsert {
                meta,
                table: table.to_string(),
                rows: chunk,
            });
            match resp {
                Ok(Response::Count(n)) => {
                    progress.acked_rows = end;
                    progress.acked_count += n as usize;
                }
                // This chunk committed before its ack was lost: every
                // row of it is in (bulk inserts are all-or-nothing).
                Ok(Response::ReplayApplied) => {
                    progress.acked_rows = end;
                    progress.acked_count += end - offset;
                }
                Ok(other) => return Err(unexpected("BulkInsert", &other)),
                Err(e) => {
                    if e.is_transient() {
                        // Keep progress (and the armed in-flight chunk)
                        // so the retried load resumes, not restarts.
                        self.bulk = Some(progress);
                    }
                    return Err(e);
                }
            }
        }
        Ok(progress.acked_count)
    }

    fn table_rows(&mut self, table: &str) -> Result<usize> {
        match self.call(&Request::TableRows {
            table: table.to_string(),
        })? {
            Response::Count(n) => Ok(n as usize),
            other => Err(unexpected("TableRows", &other)),
        }
    }

    fn has_table(&mut self, table: &str) -> Result<bool> {
        match self.call(&Request::HasTable {
            table: table.to_string(),
        })? {
            Response::Bool(b) => Ok(b),
            other => Err(unexpected("HasTable", &other)),
        }
    }

    fn catalog_snapshot(&mut self) -> Result<SymbolicCatalog> {
        match self.call(&Request::CatalogSnapshot)? {
            Response::Catalog(c) => Ok(c),
            other => Err(unexpected("CatalogSnapshot", &other)),
        }
    }

    fn max_statement_len(&self) -> usize {
        self.hello.max_statement_len
    }

    fn analyze_limits(&self) -> Limits {
        self.hello.limits.clone()
    }

    fn note_statement_retry(&mut self) {
        // Best-effort: retry bookkeeping must never turn a retryable
        // situation into a new failure.
        let _ = self.call(&Request::NoteRetry);
    }

    fn set_metrics_enabled(&mut self, on: bool) -> Result<()> {
        match self.call(&Request::SetMetrics { on })? {
            Response::Ok => {
                self.metrics_on = on;
                Ok(())
            }
            other => Err(unexpected("SetMetrics", &other)),
        }
    }

    fn metrics_enabled(&self) -> bool {
        self.metrics_on
    }

    fn metrics_len(&mut self) -> Result<usize> {
        match self.call(&Request::MetricsLen)? {
            Response::Count(n) => Ok(n as usize),
            other => Err(unexpected("MetricsLen", &other)),
        }
    }

    fn metrics_since(&mut self, from: usize) -> Result<Vec<ExecMetrics>> {
        match self.call(&Request::MetricsSince { from: from as u64 })? {
            Response::Metrics(m) => Ok(m),
            other => Err(unexpected("MetricsSince", &other)),
        }
    }

    fn describe(&self) -> String {
        format!(
            "remote server at {} ({})",
            self.addr, self.hello.description
        )
    }
}

impl Drop for RemoteConnection {
    fn drop(&mut self) {
        // Orderly goodbye frees the namespace immediately instead of at
        // the server's idle timeout; errors are moot while dropping.
        if let Some(stream) = self.stream.as_mut() {
            let _ = write_frame(stream, &Request::Goodbye.encode());
            let _ = stream.flush();
        }
    }
}

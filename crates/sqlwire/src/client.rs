//! The remote [`SqlExecutor`]: SQLEM's workstation side of the wire.
//!
//! [`RemoteConnection`] speaks the [`crate::proto`] protocol over one
//! TCP connection and implements [`SqlExecutor`], so the entire `sqlem`
//! driver — preflight linting, prepared E/M scripts, checkpoints,
//! telemetry — runs against a server unchanged: the paper's two-tier
//! deployment (§1.4) falls out of the trait seam.
//!
//! ## Reconnection
//!
//! A transient wire failure (reset, timeout, refused dial while the
//! server restarts) marks the connection dead and surfaces as a
//! *transient* [`Error::Net`], which `sqlem`'s `RetryPolicy` already
//! classifies as retryable. The retried operation finds the dead
//! connection and re-dials transparently, restoring session state the
//! server lost: the handshake, the metrics-recording flag, and every
//! prepared script (client-side ids are stable across reconnects; the
//! fresh server ids are remapped internally).
//!
//! One ambiguity is inherent to lost acks: if the connection dies
//! *after* the server executed a statement but *before* the reply
//! arrived, a retry re-executes it (see `docs/SERVER.md` for why the
//! EM scripts tolerate this).

use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sqlengine::{
    Error, ExecMetrics, Limits, PrepareError, PreparedId, QueryResult, Result, SqlExecutor,
    SymbolicCatalog, Value,
};

use crate::frame::{read_frame, write_frame};
use crate::proto::{Request, Response, PROTOCOL_VERSION};

/// Rows per bulk-insert frame: keeps each frame far below
/// [`crate::frame::MAX_FRAME_LEN`] even for wide rows.
const BULK_CHUNK_ROWS: usize = 16 * 1024;

/// Connection settings for [`RemoteConnection::connect`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Token presented in the handshake (must match the server's).
    pub auth_token: String,
    /// Work-table namespace to claim exclusively ("" = no claim).
    pub namespace: String,
    /// Dial timeout per address.
    pub connect_timeout: Duration,
    /// Optional cap on waiting for any single reply (None = block).
    pub read_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            auth_token: String::new(),
            namespace: String::new(),
            connect_timeout: Duration::from_secs(5),
            read_timeout: None,
        }
    }
}

/// What the server told us at handshake, cached for the infallible
/// [`SqlExecutor`] accessors.
#[derive(Debug, Clone)]
struct HelloInfo {
    session: u64,
    max_statement_len: usize,
    limits: Limits,
    description: String,
}

/// A reconnecting client-side [`SqlExecutor`] over TCP.
pub struct RemoteConnection {
    addr: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
    hello: HelloInfo,
    metrics_on: bool,
    /// Every prepared script, in prepare order, for replay on reconnect.
    groups: Vec<Vec<String>>,
    /// Client id (stable) → (group index, offset within group).
    id_map: Vec<(usize, usize)>,
    /// Client id → current server id (rebuilt on reconnect).
    server_ids: HashMap<u64, u64>,
}

impl RemoteConnection {
    /// Dial `addr` (`host:port`) and complete the handshake eagerly, so
    /// a bad address, version or token fails here, not mid-run.
    pub fn connect(addr: &str, config: ClientConfig) -> Result<RemoteConnection> {
        let mut conn = RemoteConnection {
            addr: addr.to_string(),
            config,
            stream: None,
            hello: HelloInfo {
                session: 0,
                max_statement_len: usize::MAX,
                limits: Limits::unbounded(),
                description: String::new(),
            },
            metrics_on: false,
            groups: Vec::new(),
            id_map: Vec::new(),
            server_ids: HashMap::new(),
        };
        conn.dial()?;
        Ok(conn)
    }

    /// The server-assigned id of the current session (changes on
    /// reconnect; usable in [`RemoteConnection::cancel_session`]).
    pub fn session_id(&self) -> u64 {
        self.hello.session
    }

    /// The server's self-description from the handshake.
    pub fn server_description(&self) -> &str {
        &self.hello.description
    }

    /// Ask the server to cancel another live session (by the id its
    /// owner obtained from [`RemoteConnection::session_id`]). Returns
    /// whether the session existed.
    pub fn cancel_session(&mut self, session: u64) -> Result<bool> {
        match self.call(&Request::Cancel { session })? {
            Response::Bool(b) => Ok(b),
            other => Err(unexpected("Cancel", &other)),
        }
    }

    /// Establish the TCP stream, shake hands, and restore session state
    /// (metrics flag, prepared scripts) the server side may have lost.
    fn dial(&mut self) -> Result<()> {
        self.stream = None;
        let addrs: Vec<_> = self
            .addr
            .to_socket_addrs()
            .map_err(|e| Error::net_permanent("resolve", format!("{}: {e}", self.addr)))?
            .collect();
        let mut last: Option<Error> = None;
        let mut stream = None;
        for a in addrs {
            match TcpStream::connect_timeout(&a, self.config.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(crate::frame::io_to_net("connect", &e)),
            }
        }
        let Some(stream) = stream else {
            return Err(last.unwrap_or_else(|| {
                Error::net_permanent("resolve", format!("{}: no addresses", self.addr))
            }));
        };
        stream
            .set_nodelay(true)
            .map_err(|e| crate::frame::io_to_net("set_nodelay", &e))?;
        stream
            .set_read_timeout(self.config.read_timeout)
            .map_err(|e| crate::frame::io_to_net("set_read_timeout", &e))?;
        self.stream = Some(stream);

        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
            auth_token: self.config.auth_token.clone(),
            namespace: self.config.namespace.clone(),
        };
        match self.raw_call(&hello)? {
            Response::HelloAck {
                version: _,
                session,
                max_statement_len,
                limits,
                description,
            } => {
                self.hello = HelloInfo {
                    session,
                    max_statement_len: max_statement_len as usize,
                    limits,
                    description,
                };
            }
            other => return Err(unexpected("Hello", &other)),
        }

        // Restore what the (possibly restarted) server no longer has.
        if self.metrics_on {
            match self.raw_call(&Request::SetMetrics { on: true })? {
                Response::Ok => {}
                other => return Err(unexpected("SetMetrics", &other)),
            }
        }
        self.server_ids.clear();
        for (group_idx, group) in self.groups.clone().iter().enumerate() {
            let resp = self.raw_call(&Request::Prepare {
                statements: group.clone(),
            })?;
            let ids = match resp {
                Response::PreparedIds(ids) => ids,
                Response::PrepareErr { error, .. } => return Err(error),
                other => return Err(unexpected("Prepare", &other)),
            };
            for (offset, server_id) in ids.into_iter().enumerate() {
                let client_id = self
                    .id_map
                    .iter()
                    .position(|&(g, o)| g == group_idx && o == offset)
                    .expect("id_map covers every prepared statement")
                    as u64;
                self.server_ids.insert(client_id, server_id);
            }
        }
        Ok(())
    }

    /// One request/response over the live stream. Any wire failure
    /// kills the stream so the next call re-dials.
    fn raw_call(&mut self, req: &Request) -> Result<Response> {
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| Error::net_transient("call", "connection is down"))?;
        let r = write_frame(stream, &req.encode()).and_then(|()| read_frame(stream));
        let payload = match r {
            Ok(p) => p,
            Err(e) => {
                self.stream = None;
                return Err(e);
            }
        };
        match Response::decode(&payload) {
            Ok(Response::Err(e)) => Err(e),
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// [`RemoteConnection::raw_call`] with transparent re-dial when the
    /// connection died earlier.
    fn call(&mut self, req: &Request) -> Result<Response> {
        if self.stream.is_none() {
            self.dial()?;
        }
        self.raw_call(req)
    }
}

impl std::fmt::Debug for RemoteConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteConnection")
            .field("addr", &self.addr)
            .field("session", &self.hello.session)
            .field("connected", &self.stream.is_some())
            .finish_non_exhaustive()
    }
}

fn unexpected(what: &str, got: &Response) -> Error {
    Error::net_permanent(
        "protocol",
        format!("unexpected response to {what}: {got:?}"),
    )
}

impl SqlExecutor for RemoteConnection {
    fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        match self.call(&Request::Query {
            sql: sql.to_string(),
        })? {
            Response::Rows(q) => Ok(q),
            other => Err(unexpected("Query", &other)),
        }
    }

    fn prepare_script(
        &mut self,
        statements: &[String],
    ) -> std::result::Result<Vec<PreparedId>, PrepareError> {
        let wrap = |error: Error| PrepareError { index: 0, error };
        let resp = self
            .call(&Request::Prepare {
                statements: statements.to_vec(),
            })
            .map_err(wrap)?;
        let server_ids = match resp {
            Response::PreparedIds(ids) => ids,
            Response::PrepareErr { index, error } => {
                return Err(PrepareError {
                    index: index as usize,
                    error,
                })
            }
            other => return Err(wrap(unexpected("Prepare", &other))),
        };
        let group_idx = self.groups.len();
        self.groups.push(statements.to_vec());
        let mut client_ids = Vec::with_capacity(server_ids.len());
        for (offset, server_id) in server_ids.into_iter().enumerate() {
            let client_id = self.id_map.len() as u64;
            self.id_map.push((group_idx, offset));
            self.server_ids.insert(client_id, server_id);
            client_ids.push(PreparedId(client_id));
        }
        Ok(client_ids)
    }

    fn run_prepared(&mut self, id: PreparedId) -> Result<QueryResult> {
        if self.stream.is_none() {
            self.dial()?; // refreshes server_ids
        }
        let server_id = *self.server_ids.get(&id.0).ok_or_else(|| {
            Error::net_permanent("execute prepared", format!("unknown prepared id {}", id.0))
        })?;
        match self.raw_call(&Request::ExecutePrepared { id: server_id })? {
            Response::Rows(q) => Ok(q),
            other => Err(unexpected("ExecutePrepared", &other)),
        }
    }

    fn clear_prepared(&mut self) -> Result<()> {
        self.groups.clear();
        self.id_map.clear();
        self.server_ids.clear();
        match self.call(&Request::ClearPrepared)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("ClearPrepared", &other)),
        }
    }

    fn bulk_insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let mut total = 0usize;
        if rows.is_empty() {
            // Arity/table checks still apply server-side.
            match self.call(&Request::BulkInsert {
                table: table.to_string(),
                rows,
            })? {
                Response::Count(n) => return Ok(n as usize),
                other => return Err(unexpected("BulkInsert", &other)),
            }
        }
        let mut rows = rows;
        while !rows.is_empty() {
            let rest = rows.split_off(rows.len().min(BULK_CHUNK_ROWS));
            match self.call(&Request::BulkInsert {
                table: table.to_string(),
                rows,
            })? {
                Response::Count(n) => total += n as usize,
                other => return Err(unexpected("BulkInsert", &other)),
            }
            rows = rest;
        }
        Ok(total)
    }

    fn table_rows(&mut self, table: &str) -> Result<usize> {
        match self.call(&Request::TableRows {
            table: table.to_string(),
        })? {
            Response::Count(n) => Ok(n as usize),
            other => Err(unexpected("TableRows", &other)),
        }
    }

    fn has_table(&mut self, table: &str) -> Result<bool> {
        match self.call(&Request::HasTable {
            table: table.to_string(),
        })? {
            Response::Bool(b) => Ok(b),
            other => Err(unexpected("HasTable", &other)),
        }
    }

    fn catalog_snapshot(&mut self) -> Result<SymbolicCatalog> {
        match self.call(&Request::CatalogSnapshot)? {
            Response::Catalog(c) => Ok(c),
            other => Err(unexpected("CatalogSnapshot", &other)),
        }
    }

    fn max_statement_len(&self) -> usize {
        self.hello.max_statement_len
    }

    fn analyze_limits(&self) -> Limits {
        self.hello.limits.clone()
    }

    fn note_statement_retry(&mut self) {
        // Best-effort: retry bookkeeping must never turn a retryable
        // situation into a new failure.
        let _ = self.call(&Request::NoteRetry);
    }

    fn set_metrics_enabled(&mut self, on: bool) -> Result<()> {
        match self.call(&Request::SetMetrics { on })? {
            Response::Ok => {
                self.metrics_on = on;
                Ok(())
            }
            other => Err(unexpected("SetMetrics", &other)),
        }
    }

    fn metrics_enabled(&self) -> bool {
        self.metrics_on
    }

    fn metrics_len(&mut self) -> Result<usize> {
        match self.call(&Request::MetricsLen)? {
            Response::Count(n) => Ok(n as usize),
            other => Err(unexpected("MetricsLen", &other)),
        }
    }

    fn metrics_since(&mut self, from: usize) -> Result<Vec<ExecMetrics>> {
        match self.call(&Request::MetricsSince { from: from as u64 })? {
            Response::Metrics(m) => Ok(m),
            other => Err(unexpected("MetricsSince", &other)),
        }
    }

    fn describe(&self) -> String {
        format!(
            "remote server at {} ({})",
            self.addr, self.hello.description
        )
    }
}

impl Drop for RemoteConnection {
    fn drop(&mut self) {
        // Orderly goodbye frees the namespace immediately instead of at
        // the server's idle timeout; errors are moot while dropping.
        if let Some(stream) = self.stream.as_mut() {
            let _ = write_frame(stream, &Request::Goodbye.encode());
            let _ = stream.flush();
        }
    }
}

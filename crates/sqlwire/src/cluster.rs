//! Sharded scale-out: a hash-partitioned cluster behind one executor.
//!
//! The paper's performance argument (§1.4, §3.5) is that SQL-generated
//! EM inherits the DBMS's parallelism for free: every generated
//! statement is a scan, a rid-equi-join or a GROUP BY aggregate, all of
//! which partition cleanly. This module supplies that parallelism
//! across *processes*: [`Coordinator`] implements
//! [`sqlengine::SqlExecutor`] over N shard executors (remote
//! [`crate::RemoteConnection`]s or embedded [`Database`]s), so the
//! whole `sqlem` driver runs against a cluster **unchanged**.
//!
//! ## Partitioning
//!
//! Tables are classified by schema at `CREATE TABLE` time:
//!
//! * **partitioned** — tables with a `rid` column (`y`, `z`, `yd`,
//!   `yp`, `yx`, `x`, `xmax`, `ysump`, …): each row lives on exactly
//!   one shard, chosen by `splitmix64(rid) % nshards`.
//! * **broadcast** — everything else (the model tables `c`, `r`, `w`,
//!   `gmm`, `rk`, …): replicated in full on every shard, kept
//!   bit-identical by running every mutation on every shard.
//!
//! ## Statement fragmentation
//!
//! Each driver statement is classified against that map and routed:
//!
//! * DDL and broadcast-table mutations run verbatim on every shard.
//! * Statements over partitioned tables whose output stays partitioned
//!   (rid-preserving `INSERT … SELECT`, `UPDATE … FROM`, `DELETE`) run
//!   verbatim on every shard — each shard operates on its own rid
//!   slice, and rid-equi-joins never cross shards because joined
//!   tables are co-partitioned on `rid`.
//! * Aggregates over partitioned data *scatter*: each shard runs the
//!   statement through [`sqlengine::Database::execute_partial`],
//!   returning exact per-group accumulator states
//!   ([`sqlengine::PartialAggResult`]); the coordinator merges them in
//!   shard order and finalizes once on its rowless shadow catalog.
//!   Because `SUM`/`AVG` accumulate in an exact expansion
//!   ([`sqlengine::ExactSum`]), the merged result is **bit-identical**
//!   to a single-node run for any shard count.
//! * Non-aggregate reads over partitioned data *gather*: each shard
//!   executes the statement with its `ORDER BY` keys appended as
//!   hidden trailing columns, and the coordinator merge-sorts the
//!   per-shard streams on those keys.
//!
//! Bulk loads route each row by its rid hash; per-shard exactly-once
//! delivery is inherited from the shard executor (the remote client's
//! idempotent session protocol). Multi-shard mutations track per-shard
//! completion so a retry after a partial failure re-runs only the
//! shards that did not finish — the cluster-level analogue of the
//! wire-level replay cache.
//!
//! Per-shard telemetry is merged into **one [`ExecMetrics`] entry per
//! driver statement** (counters add, partitioned scans add to the full
//! `n`, duplicated broadcast scans are masked, gauges take the
//! per-shard max), so the paper's `2k+3` scans-per-iteration cost
//! model verifies against a cluster exactly as it does single-node.
//!
//! See `docs/CLUSTER.md` for the full fragment/merge grammar and the
//! failure semantics.

use sqlengine::ast::{BinOp, Expr, InsertSource, Select, SelectItem, Statement};
use sqlengine::parser::parse;
use sqlengine::{
    Database, Error, ExecMetrics, Limits, PartialAggResult, PrepareError, PreparedId, QueryResult,
    Result, SqlExecutor, StatementKind, SymbolicCatalog, Value,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// The shard owning `rid` in an `nshards`-way cluster: a splitmix64
/// finalizer over the rid, reduced mod `nshards`. Stateless and
/// version-stable — loaders, the coordinator and tests must agree on
/// this function exactly.
pub fn shard_of_rid(rid: i64, nshards: usize) -> usize {
    let mut z = (rid as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % nshards as u64) as usize
}

/// How a classified statement executes across the cluster.
#[derive(Debug)]
enum Class {
    /// DDL / broadcast-table mutation: verbatim on every shard, result
    /// identical everywhere (shard 0's is returned).
    AllShards,
    /// Pure read over broadcast tables only: shard 0 answers alone.
    ReadOne,
    /// Partition-local statement: verbatim on every shard, each shard
    /// touching only its rid slice; affected-row counts add.
    Local,
    /// Aggregate read over partitioned data: scatter partials, merge,
    /// finalize once on the shadow catalog.
    ScatterRead(Box<Select>),
    /// `INSERT` of a scattered aggregate into a broadcast table:
    /// finalize coordinator-side, then replicate the finished rows.
    ScatterInsert {
        table: String,
        columns: Option<Vec<String>>,
        select: Box<Select>,
    },
    /// Non-aggregate read over partitioned data: per-shard execution
    /// plus an ordered (or concatenating) gather.
    GatherRead(Box<Select>),
    /// `INSERT` of a gathered read into a broadcast table.
    GatherInsert {
        table: String,
        columns: Option<Vec<String>>,
        select: Box<Select>,
    },
    /// `INSERT … VALUES` into a partitioned table: rows route to their
    /// owning shard by rid hash.
    RoutedValues {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Value>>,
    },
}

/// A multi-shard mutation whose acknowledgement may have been lost:
/// per-shard completion flags keyed by a statement fingerprint, so a
/// retry of the *same* statement skips shards that already applied it
/// (re-running them would double-apply — the cluster-level analogue of
/// the wire protocol's reply cache).
#[derive(Debug)]
struct Inflight {
    fingerprint: u64,
    done: Vec<bool>,
}

/// Hash-partitioned scatter/gather coordinator over `E` shards.
///
/// Implements [`SqlExecutor`], so the EM driver, the plancheck
/// harness and the CLI run against a cluster without modification.
/// Construct with [`Coordinator::new`] over any executors — remote
/// connections for a real cluster, embedded [`Database`]s for tests
/// and benchmarks.
pub struct Coordinator<E: SqlExecutor + Send> {
    shards: Vec<E>,
    /// Rowless schema mirror: receives every DDL statement, validates
    /// prepared scripts, and finalizes scattered aggregates. Holding
    /// no base rows, it plans exactly like the shards do.
    shadow: Database,
    /// Partitioned table name → rid column slot.
    partitioned: HashMap<String, usize>,
    /// Prepared-statement id → original text (statements re-classify
    /// at execution; shards are not pre-prepared).
    prepared: HashMap<u64, String>,
    inflight: Option<Inflight>,
    /// Coordinator-level telemetry: one merged entry per statement.
    metrics: Vec<ExecMetrics>,
    metrics_on: bool,
    /// Per-shard drain cursor into each shard's metrics log.
    cursors: Vec<usize>,
}

/// A table adopted from a shard catalog: name, `(column, type)` pairs,
/// and primary-key column indexes.
type AdoptedTable = (String, Vec<(String, sqlengine::DataType)>, Vec<usize>);

impl<E: SqlExecutor + Send> Coordinator<E> {
    /// Build a coordinator over `shards` (at least one). Adopts the
    /// first shard's catalog into the shadow so a coordinator can
    /// attach to a cluster that already holds tables.
    pub fn new(mut shards: Vec<E>) -> Result<Self> {
        if shards.is_empty() {
            return Err(Error::Unsupported(
                "a cluster needs at least one shard".into(),
            ));
        }
        let mut shadow = Database::new();
        let min_len = shards.iter().map(|s| s.max_statement_len()).min().unwrap();
        shadow.set_max_statement_len(min_len);
        let mut partitioned = HashMap::new();
        let snapshot = shards[0].catalog_snapshot()?;
        let mut tables: Vec<AdoptedTable> = snapshot
            .tables()
            .map(|(name, schema)| {
                (
                    name.to_string(),
                    schema
                        .columns()
                        .iter()
                        .map(|c| (c.name.clone(), c.ty))
                        .collect(),
                    schema.primary_key().to_vec(),
                )
            })
            .collect();
        tables.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, cols, pk) in tables {
            let mut ddl = format!("CREATE TABLE {name} (");
            for (i, (cname, ty)) in cols.iter().enumerate() {
                if i > 0 {
                    ddl.push_str(", ");
                }
                let tyname = match ty {
                    sqlengine::DataType::BigInt => "BIGINT",
                    sqlengine::DataType::Double => "DOUBLE",
                    sqlengine::DataType::Varchar => "VARCHAR",
                };
                ddl.push_str(&format!("{cname} {tyname}"));
            }
            if !pk.is_empty() {
                let names: Vec<&str> = pk.iter().map(|&i| cols[i].0.as_str()).collect();
                ddl.push_str(&format!(", PRIMARY KEY ({})", names.join(", ")));
            }
            ddl.push(')');
            shadow.execute(&ddl)?;
            if let Some(idx) = cols.iter().position(|(c, _)| c == "rid") {
                partitioned.insert(name, idx);
            }
        }
        let cursors = vec![0; shards.len()];
        // Drain any pre-existing metrics so merged entries start clean.
        let metrics_on = shards[0].metrics_enabled();
        let mut coord = Coordinator {
            shards,
            shadow,
            partitioned,
            prepared: HashMap::new(),
            inflight: None,
            metrics: Vec::new(),
            metrics_on,
            cursors,
        };
        if metrics_on {
            coord.reset_cursors()?;
        }
        Ok(coord)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Is `table` hash-partitioned (as opposed to broadcast)?
    pub fn is_partitioned(&self, table: &str) -> bool {
        self.partitioned.contains_key(&table.to_ascii_lowercase())
    }

    fn reset_cursors(&mut self) -> Result<()> {
        for i in 0..self.shards.len() {
            self.cursors[i] = self.shards[i].metrics_len()?;
        }
        Ok(())
    }

    // ---- classification ----------------------------------------------

    /// The rid column slot of `table`, if partitioned.
    fn rid_slot(&self, table: &str) -> Option<usize> {
        self.partitioned.get(&table.to_ascii_lowercase()).copied()
    }

    /// Partitioned FROM entries of a select, as (visible_name, table).
    fn partitioned_from(&self, sel: &Select) -> Vec<(String, String)> {
        sel.from
            .iter()
            .filter(|t| self.rid_slot(&t.table).is_some())
            .map(|t| {
                (
                    t.visible_name().to_ascii_lowercase(),
                    t.table.to_ascii_lowercase(),
                )
            })
            .collect()
    }

    /// Are all partitioned FROM tables pairwise connected through
    /// `a.rid = b.rid` equality conjuncts? Co-partitioning on rid is
    /// what keeps shard-local joins equal to the global join.
    fn rid_join_connected(names: &[String], where_clause: Option<&Expr>) -> bool {
        if names.len() <= 1 {
            return true;
        }
        let mut parent: Vec<usize> = (0..names.len()).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let root = find(parent, parent[i]);
                parent[i] = root;
            }
            parent[i]
        }
        let index = |n: &str| names.iter().position(|x| x == n);
        let mut stack: Vec<&Expr> = where_clause.into_iter().collect();
        while let Some(e) = stack.pop() {
            match e {
                Expr::Binary {
                    op: BinOp::And,
                    left,
                    right,
                } => {
                    stack.push(left);
                    stack.push(right);
                }
                Expr::Binary {
                    op: BinOp::Eq,
                    left,
                    right,
                } => {
                    if let (
                        Expr::Column {
                            table: Some(a),
                            name: an,
                        },
                        Expr::Column {
                            table: Some(b),
                            name: bn,
                        },
                    ) = (left.as_ref(), right.as_ref())
                    {
                        if an == "rid" && bn == "rid" {
                            if let (Some(i), Some(j)) = (index(a), index(b)) {
                                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                                parent[ri] = rj;
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        let root = find(&mut parent, 0);
        (1..names.len()).all(|i| find(&mut parent, i) == root)
    }

    fn is_aggregate_select(sel: &Select) -> bool {
        !sel.group_by.is_empty()
            || sel.having.as_ref().is_some_and(Expr::contains_aggregate)
            || sel.items.iter().any(|it| match it {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            })
    }

    /// Does the expression name the rid column of a partitioned FROM
    /// table (bare `rid` with a single partitioned source, or
    /// `t.rid`)?
    fn is_rid_column(&self, e: &Expr, sel: &Select) -> bool {
        match e {
            Expr::Column { table: None, name } => {
                name == "rid" && !self.partitioned_from(sel).is_empty()
            }
            Expr::Column {
                table: Some(t),
                name,
            } => {
                name == "rid"
                    && self
                        .partitioned_from(sel)
                        .iter()
                        .any(|(vis, _)| vis == t.as_str())
            }
            _ => false,
        }
    }

    /// Does this `INSERT … SELECT` into partitioned `table` keep every
    /// produced row on the shard that computes it? True when the
    /// target's rid column is filled from a source rid column — the
    /// produced rids are then a subset of the shard's own partition.
    fn insert_preserves_partition(
        &self,
        table: &str,
        columns: Option<&[String]>,
        sel: &Select,
    ) -> bool {
        let Some(rid_slot) = self.rid_slot(table) else {
            return false;
        };
        // `SELECT *` / `SELECT t.*` from a single partitioned table
        // copies rid through positionally.
        if sel.from.len() == 1
            && columns.is_none()
            && sel
                .items
                .iter()
                .all(|it| matches!(it, SelectItem::Wildcard | SelectItem::QualifiedWildcard(_)))
        {
            return true;
        }
        // Which item feeds the target's rid column?
        let item_idx = match columns {
            Some(cols) => match cols.iter().position(|c| c == "rid") {
                Some(i) => i,
                None => return false, // rid filled with NULL: not routable
            },
            None => rid_slot,
        };
        match sel.items.get(item_idx) {
            Some(SelectItem::Expr { expr, .. }) => self.is_rid_column(expr, sel),
            _ => false,
        }
    }

    /// Classify one parsed statement against the partition map.
    fn classify(&self, stmt: &Statement) -> Result<Class> {
        match stmt {
            Statement::CreateTable { .. } | Statement::DropTable { .. } => Ok(Class::AllShards),
            Statement::Explain(_) => Ok(Class::ReadOne),
            Statement::ExplainAnalyze(_) => Err(Error::Unsupported(
                "EXPLAIN ANALYZE is not supported on a cluster (per-shard \
                 side effects cannot merge into one plan)"
                    .into(),
            )),
            Statement::Select(sel) => self.classify_select(sel).map(|c| match c {
                SelectClass::Broadcast => Class::ReadOne,
                SelectClass::Scatter => Class::ScatterRead(Box::new(sel.clone())),
                SelectClass::Gather => Class::GatherRead(Box::new(sel.clone())),
            }),
            Statement::Insert {
                table,
                columns,
                source,
            } => self.classify_insert(table, columns.as_deref(), source),
            Statement::Update { table, from, .. } => {
                let target_partitioned = self.rid_slot(table).is_some();
                let from_partitioned: Vec<String> = from
                    .iter()
                    .filter(|t| self.rid_slot(&t.table).is_some())
                    .map(|t| t.visible_name().to_ascii_lowercase())
                    .collect();
                if target_partitioned {
                    if from_partitioned.is_empty() {
                        return Ok(Class::Local);
                    }
                    // Target + partitioned FROM tables must co-join on rid.
                    let mut names = vec![table.to_ascii_lowercase()];
                    names.extend(from_partitioned);
                    let wc = match stmt {
                        Statement::Update { where_clause, .. } => where_clause.as_ref(),
                        _ => unreachable!(),
                    };
                    if Self::rid_join_connected(&names, wc) {
                        Ok(Class::Local)
                    } else {
                        Err(Error::Unsupported(format!(
                            "UPDATE {table}: partitioned FROM tables must join \
                             the target on rid to execute shard-locally"
                        )))
                    }
                } else if from_partitioned.is_empty() {
                    Ok(Class::AllShards)
                } else {
                    Err(Error::Unsupported(format!(
                        "UPDATE {table}: cannot update a broadcast table from \
                         partitioned data; aggregate into it with INSERT … SELECT instead"
                    )))
                }
            }
            Statement::Delete { table, .. } => {
                if self.rid_slot(table).is_some() {
                    Ok(Class::Local)
                } else {
                    Ok(Class::AllShards)
                }
            }
        }
    }

    fn classify_insert(
        &self,
        table: &str,
        columns: Option<&[String]>,
        source: &InsertSource,
    ) -> Result<Class> {
        let target_partitioned = self.rid_slot(table).is_some();
        match source {
            InsertSource::Values(rows) => {
                if !target_partitioned {
                    // Literal VALUES are deterministic: every shard
                    // computes the identical rows.
                    return Ok(Class::AllShards);
                }
                let mut literal_rows = Vec::with_capacity(rows.len());
                for row in rows {
                    let vals: Vec<Value> = row
                        .iter()
                        .map(literal_value)
                        .collect::<Option<Vec<_>>>()
                        .ok_or_else(|| {
                            Error::Unsupported(format!(
                                "INSERT INTO {table}: VALUES into a partitioned \
                                 table must be literals (rows route by rid hash)"
                            ))
                        })?;
                    literal_rows.push(vals);
                }
                Ok(Class::RoutedValues {
                    table: table.to_ascii_lowercase(),
                    columns: columns.map(<[String]>::to_vec),
                    rows: literal_rows,
                })
            }
            InsertSource::Select(sel) => {
                let inner = self.classify_select(sel)?;
                if target_partitioned {
                    match inner {
                        SelectClass::Broadcast => Err(Error::Unsupported(format!(
                            "INSERT INTO {table}: inserting broadcast-derived rows \
                             into a partitioned table would replicate them on every \
                             shard; load partitioned data with the bulk loader"
                        ))),
                        SelectClass::Scatter | SelectClass::Gather => {
                            if self.insert_preserves_partition(table, columns, sel) {
                                Ok(Class::Local)
                            } else {
                                Err(Error::Unsupported(format!(
                                    "INSERT INTO {table}: a partitioned target requires \
                                     the rid column to be copied from a partitioned \
                                     source (rows must stay on their shard)"
                                )))
                            }
                        }
                    }
                } else {
                    // Broadcast target: re-reading it while writing it
                    // breaks scatter/gather re-execution on retry.
                    if sel.from.iter().any(|t| t.table.eq_ignore_ascii_case(table)) {
                        return Err(Error::Unsupported(format!(
                            "INSERT INTO {table}: self-referential insert into a \
                             broadcast table is not supported on a cluster"
                        )));
                    }
                    match inner {
                        SelectClass::Broadcast => Ok(Class::AllShards),
                        SelectClass::Scatter => Ok(Class::ScatterInsert {
                            table: table.to_ascii_lowercase(),
                            columns: columns.map(<[String]>::to_vec),
                            select: Box::new((**sel).clone()),
                        }),
                        SelectClass::Gather => Ok(Class::GatherInsert {
                            table: table.to_ascii_lowercase(),
                            columns: columns.map(<[String]>::to_vec),
                            select: Box::new((**sel).clone()),
                        }),
                    }
                }
            }
        }
    }

    fn classify_select(&self, sel: &Select) -> Result<SelectClass> {
        let parts = self.partitioned_from(sel);
        if parts.is_empty() {
            return Ok(SelectClass::Broadcast);
        }
        let names: Vec<String> = parts.iter().map(|(vis, _)| vis.clone()).collect();
        if !Self::rid_join_connected(&names, sel.where_clause.as_ref()) {
            return Err(Error::Unsupported(
                "joins between partitioned tables must include a rid equality \
                 for every table (cross-shard joins are not supported)"
                    .into(),
            ));
        }
        if Self::is_aggregate_select(sel) {
            Ok(SelectClass::Scatter)
        } else {
            Ok(SelectClass::Gather)
        }
    }

    // ---- execution ---------------------------------------------------

    /// Run `f` against every shard whose `skip` flag is false, in
    /// parallel (one scoped thread per shard). Results come back in
    /// shard order; skipped shards yield `None`.
    fn fan_out<R, F>(shards: &mut [E], skip: &[bool], f: F) -> Vec<Option<Result<R>>>
    where
        R: Send,
        F: Fn(usize, &mut E) -> Result<R> + Sync,
    {
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = shards
                .iter_mut()
                .enumerate()
                .map(|(i, shard)| {
                    if skip.get(i).copied().unwrap_or(false) {
                        None
                    } else {
                        Some(scope.spawn(move || f(i, shard)))
                    }
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("shard worker panicked")))
                .collect()
        })
    }

    /// Per-shard completion flags for a mutating fan-out: fresh unless
    /// this exact statement is the one whose last attempt failed.
    fn arm_inflight(&mut self, fingerprint: u64) -> Vec<bool> {
        match &self.inflight {
            Some(f) if f.fingerprint == fingerprint => f.done.clone(),
            _ => vec![false; self.shards.len()],
        }
    }

    /// Run a mutating operation on every not-yet-done shard, recording
    /// completion so a retry after a partial failure skips the shards
    /// that already applied it.
    fn mutate_all<R, F>(&mut self, fingerprint: u64, f: F) -> Result<Vec<Option<R>>>
    where
        R: Send,
        F: Fn(usize, &mut E) -> Result<R> + Sync,
    {
        let mut done = self.arm_inflight(fingerprint);
        let results = Self::fan_out(&mut self.shards, &done, f);
        let mut out = Vec::with_capacity(results.len());
        let mut first_err = None;
        for (i, r) in results.into_iter().enumerate() {
            match r {
                None => out.push(None), // already applied in an earlier attempt
                Some(Ok(v)) => {
                    done[i] = true;
                    out.push(Some(v));
                }
                Some(Err(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    out.push(None);
                }
            }
        }
        match first_err {
            Some(e) => {
                self.inflight = Some(Inflight { fingerprint, done });
                Err(e)
            }
            None => {
                self.inflight = None;
                Ok(out)
            }
        }
    }

    /// Execute one parsed statement across the cluster.
    fn run_one(&mut self, stmt: &Statement) -> Result<QueryResult> {
        let text = stmt.to_string();
        match self.classify(stmt)? {
            Class::AllShards => {
                let fp = fingerprint_text(&text);
                let results = self.mutate_all(fp, |_, shard| shard.execute(&text))?;
                // DDL also lands on the shadow so the coordinator's
                // schema mirror stays exact.
                if matches!(
                    stmt,
                    Statement::CreateTable { .. } | Statement::DropTable { .. }
                ) {
                    self.shadow.execute(&text)?;
                    self.refresh_partition_map(stmt);
                }
                self.drain_metrics(MergeMode::KeepFirst, None)?;
                Ok(results
                    .into_iter()
                    .flatten()
                    .next()
                    .unwrap_or(QueryResult::affected(0)))
            }
            Class::Local => {
                let fp = fingerprint_text(&text);
                let results = self.mutate_all(fp, |_, shard| shard.execute(&text))?;
                self.drain_metrics(MergeMode::MergeMasked, None)?;
                let affected: usize = results
                    .iter()
                    .flatten()
                    .map(|q: &QueryResult| q.rows_affected)
                    .sum();
                Ok(QueryResult::affected(affected))
            }
            Class::ReadOne => {
                let result = self.shards[0].execute(&text)?;
                self.drain_metrics(MergeMode::KeepFirst, None)?;
                Ok(result)
            }
            Class::ScatterRead(sel) => {
                let (merged, groups) = self.scatter_partials(&sel)?;
                let text = Statement::Select((*sel).clone()).to_string();
                let result = self.shadow.finalize_partials(&text, &merged)?;
                self.drain_metrics(MergeMode::MergeMasked, Some((groups, result.rows.len())))?;
                Ok(result)
            }
            Class::ScatterInsert {
                table,
                columns,
                select,
            } => {
                let (merged, _) = self.scatter_partials(&select)?;
                let text = Statement::Select((*select).clone()).to_string();
                let finalized = self.shadow.finalize_partials(&text, &merged)?;
                let rows = self.full_arity_rows(&table, columns.as_deref(), finalized.rows)?;
                self.replicate_rows(&text, &table, rows)
            }
            Class::GatherRead(sel) => {
                let result = self.gather_read(&sel)?;
                self.drain_metrics(MergeMode::MergeMasked, Some((0, result.rows.len())))?;
                Ok(result)
            }
            Class::GatherInsert {
                table,
                columns,
                select,
            } => {
                let gathered = self.gather_read(&select)?;
                let rows = self.full_arity_rows(&table, columns.as_deref(), gathered.rows)?;
                let text = Statement::Select((*select).clone()).to_string();
                self.replicate_rows(&text, &table, rows)
            }
            Class::RoutedValues {
                table,
                columns,
                rows,
            } => {
                let full = self.full_arity_rows(
                    &table,
                    columns.as_deref(),
                    rows.into_iter().map(Vec::into_boxed_slice).collect(),
                )?;
                let n = self.route_bulk(&table, full)?;
                self.drain_metrics(MergeMode::MergeMasked, None)?;
                Ok(QueryResult::affected(n))
            }
        }
    }

    /// Scatter an aggregate select: every shard computes exact partial
    /// accumulator states over its slice; merge them in shard index
    /// order (the merge itself is order-free for `SUM`/`AVG`/`COUNT`/
    /// `MIN`/`MAX`, and shard order makes `VARIANCE`'s Chan combination
    /// deterministic too). Returns the merged partial and its group
    /// count.
    fn scatter_partials(&mut self, sel: &Select) -> Result<(PartialAggResult, usize)> {
        let text = Statement::Select(sel.clone()).to_string();
        let skip = vec![false; self.shards.len()];
        let results = Self::fan_out(&mut self.shards, &skip, |_, shard| {
            shard.execute_partial(&text)
        });
        let mut merged: Option<PartialAggResult> = None;
        for r in results {
            let partial = r.expect("no shard skipped")?;
            match &mut merged {
                None => merged = Some(partial),
                Some(m) => m.merge(&partial)?,
            }
        }
        let merged = merged.expect("at least one shard");
        let groups = merged.groups.len();
        Ok((merged, groups))
    }

    /// Gather a non-aggregate select: each shard executes it with the
    /// ORDER BY keys appended as hidden trailing columns, then the
    /// per-shard streams merge on those keys (ties break by shard
    /// index). Without ORDER BY the streams concatenate in shard order.
    fn gather_read(&mut self, sel: &Select) -> Result<QueryResult> {
        let nkeys = sel.order_by.len();
        let mut shard_sel = sel.clone();
        for (j, key) in sel.order_by.iter().enumerate() {
            let expr = substitute_aliases(&key.expr, &sel.items);
            shard_sel.items.push(SelectItem::Expr {
                expr,
                alias: Some(format!("__gk{j}")),
            });
        }
        let text = Statement::Select(shard_sel).to_string();
        let skip = vec![false; self.shards.len()];
        let results = Self::fan_out(&mut self.shards, &skip, |_, shard| shard.execute(&text));
        let mut parts = Vec::with_capacity(results.len());
        for r in results {
            parts.push(r.expect("no shard skipped")?);
        }
        let visible = parts[0].columns.len().saturating_sub(nkeys);
        let columns: Vec<String> = parts[0].columns[..visible].to_vec();
        let descs: Vec<bool> = sel.order_by.iter().map(|k| k.desc).collect();

        let mut rows: Vec<sqlengine::Row> = Vec::new();
        if nkeys == 0 {
            for part in parts {
                rows.extend(part.rows);
            }
        } else {
            // K-way merge over per-shard sorted streams.
            let mut streams: Vec<std::vec::IntoIter<sqlengine::Row>> =
                parts.into_iter().map(|p| p.rows.into_iter()).collect();
            let mut heads: Vec<Option<sqlengine::Row>> =
                streams.iter_mut().map(Iterator::next).collect();
            loop {
                let mut best: Option<usize> = None;
                for (i, head) in heads.iter().enumerate() {
                    let Some(row) = head else { continue };
                    let better = match best {
                        None => true,
                        Some(b) => {
                            key_cmp(row, heads[b].as_ref().unwrap(), visible, &descs).is_lt()
                        }
                    };
                    if better {
                        best = Some(i);
                    }
                }
                let Some(i) = best else { break };
                rows.push(heads[i].take().unwrap());
                heads[i] = streams[i].next();
            }
        }
        for row in &mut rows {
            let mut v = std::mem::take(row).into_vec();
            v.truncate(visible);
            *row = v.into_boxed_slice();
        }
        if let Some(limit) = sel.limit {
            rows.truncate(limit);
        }
        let n = rows.len();
        Ok(QueryResult {
            columns,
            rows,
            rows_affected: n,
        })
    }

    /// Replicate finished rows into a broadcast table on every shard
    /// (the merge step of a scatter/gather insert), with per-shard
    /// completion tracking keyed on the originating statement.
    fn replicate_rows(
        &mut self,
        origin_text: &str,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<QueryResult> {
        let n = rows.len();
        let fp = fingerprint_text(origin_text);
        let rows = &rows;
        let table_name = table.to_string();
        self.mutate_all(fp, move |_, shard| {
            if rows.is_empty() {
                return Ok(0usize);
            }
            shard.bulk_insert_rows(&table_name, rows.clone())
        })?;
        self.drain_metrics(MergeMode::MergeReplicated, None)?;
        Ok(QueryResult::affected(n))
    }

    /// Route full-arity rows of a partitioned table to their owning
    /// shards by rid hash and bulk-load each slice in parallel.
    fn route_bulk(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let slot = self.rid_slot(table).ok_or_else(|| {
            Error::Unsupported(format!("table {table} is not partitioned by rid"))
        })?;
        let n = self.shards.len();
        let mut buckets: Vec<Vec<Vec<Value>>> = vec![Vec::new(); n];
        let fp = fingerprint_bulk(table, &rows);
        for row in rows {
            let rid = match row.get(slot) {
                Some(Value::Int(r)) => *r,
                other => {
                    return Err(Error::Unsupported(format!(
                        "partitioned table {table} requires an integer rid to \
                         route rows (got {other:?})"
                    )))
                }
            };
            buckets[shard_of_rid(rid, n)].push(row);
        }
        let table_name = table.to_string();
        let buckets = &buckets;
        let counts = self.mutate_all(fp, move |i, shard| {
            if buckets[i].is_empty() {
                return Ok(0usize);
            }
            shard.bulk_insert_rows(&table_name, buckets[i].clone())
        })?;
        Ok(counts.into_iter().flatten().sum())
    }

    /// Expand a result row set to the target table's full arity,
    /// honoring an explicit INSERT column list (missing columns become
    /// NULL, exactly like the engine's INSERT).
    fn full_arity_rows(
        &self,
        table: &str,
        columns: Option<&[String]>,
        rows: Vec<sqlengine::Row>,
    ) -> Result<Vec<Vec<Value>>> {
        let snapshot = self.shadow.symbolic_catalog();
        let schema = snapshot
            .tables()
            .find(|(name, _)| *name == table)
            .map(|(_, s)| s.clone())
            .ok_or_else(|| Error::UnknownTable(table.to_string()))?;
        let arity = schema.columns().len();
        let slot_map: Option<Vec<usize>> = match columns {
            None => None,
            Some(cols) => {
                let mut map = Vec::with_capacity(cols.len());
                for c in cols {
                    let idx = schema
                        .columns()
                        .iter()
                        .position(|col| col.name == *c)
                        .ok_or_else(|| Error::UnknownColumn(c.clone()))?;
                    map.push(idx);
                }
                Some(map)
            }
        };
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            match &slot_map {
                None => {
                    if row.len() != arity {
                        return Err(Error::ArityMismatch {
                            table: table.to_string(),
                            expected: arity,
                            actual: row.len(),
                        });
                    }
                    out.push(row.into_vec());
                }
                Some(map) => {
                    if row.len() != map.len() {
                        return Err(Error::ArityMismatch {
                            table: table.to_string(),
                            expected: map.len(),
                            actual: row.len(),
                        });
                    }
                    let mut full = vec![Value::Null; arity];
                    for (v, &slot) in row.iter().zip(map) {
                        full[slot] = v.clone();
                    }
                    out.push(full);
                }
            }
        }
        Ok(out)
    }

    /// After DDL, re-derive the partition map entry for the table.
    fn refresh_partition_map(&mut self, stmt: &Statement) {
        match stmt {
            Statement::CreateTable { name, columns, .. } => {
                let lname = name.to_ascii_lowercase();
                if let Some(idx) = columns.iter().position(|c| c.name == "rid") {
                    self.partitioned.insert(lname, idx);
                } else {
                    self.partitioned.remove(&lname);
                }
            }
            Statement::DropTable { name, .. } => {
                self.partitioned.remove(&name.to_ascii_lowercase());
            }
            _ => {}
        }
    }

    // ---- telemetry ---------------------------------------------------

    /// Drain every shard's new metrics entries and append **one**
    /// merged entry per driver statement to the coordinator log.
    ///
    /// `KeepFirst`: the statement ran identically everywhere (or on
    /// shard 0 alone) — shard 0's entries stand for the cluster.
    /// `MergeMasked`: the statement split across shards — counters and
    /// partitioned-table scan rows add up to the single-node totals,
    /// duplicated broadcast-table scans on shards ≥ 1 are masked to 0
    /// rows, and gauges take the per-shard max. `finalize` overrides
    /// `(groups, rows_produced)` for scattered aggregates, whose true
    /// totals only exist after the coordinator's merge.
    fn drain_metrics(&mut self, mode: MergeMode, finalize: Option<(usize, usize)>) -> Result<()> {
        if !self.metrics_on {
            return Ok(());
        }
        let mut per_shard: Vec<Vec<ExecMetrics>> = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let entries = self.shards[i].metrics_since(self.cursors[i])?;
            self.cursors[i] += entries.len();
            per_shard.push(entries);
        }
        let merged = match mode {
            MergeMode::KeepFirst => fold_entries(per_shard.swap_remove(0)),
            MergeMode::MergeMasked | MergeMode::MergeReplicated => {
                let mut acc: Option<ExecMetrics> = None;
                for entries in per_shard {
                    let Some(mut folded) = fold_entries(entries) else {
                        continue;
                    };
                    // The first contributing shard stands in for the
                    // single node; later shards' broadcast-table scans
                    // are duplicates of it and mask to zero rows. For a
                    // replicated mutation the *effects* are duplicates
                    // too: a single node would write those rows once.
                    if acc.is_some() {
                        for scan in &mut folded.scans {
                            if !self.partitioned.contains_key(&scan.table) {
                                scan.rows = 0;
                            }
                        }
                        if matches!(mode, MergeMode::MergeReplicated) {
                            folded.rows_inserted = 0;
                            folded.rows_updated = 0;
                            folded.rows_deleted = 0;
                        }
                    }
                    match &mut acc {
                        None => acc = Some(folded),
                        Some(a) => a.merge(&folded),
                    }
                }
                acc
            }
        };
        if let Some(mut entry) = merged {
            if let Some((groups, rows_produced)) = finalize {
                entry.groups = groups;
                entry.rows_produced = rows_produced;
                entry.kind = Some(StatementKind::Select);
            }
            self.metrics.push(entry);
        }
        Ok(())
    }
}

/// Inner classification of a SELECT's data sources.
enum SelectClass {
    /// Broadcast tables only (or no FROM): any one shard answers.
    Broadcast,
    /// Aggregate over partitioned data.
    Scatter,
    /// Row-returning read over partitioned data.
    Gather,
}

#[derive(Clone, Copy)]
enum MergeMode {
    /// Shard 0's entries stand for the cluster (identical everywhere).
    KeepFirst,
    /// Counters and effects add across shards (partition-split work).
    MergeMasked,
    /// Like `MergeMasked`, but mutation effect counters (`rows_*`) come
    /// from the first contributor only — the statement replicated the
    /// same write to every shard, which a single node performs once.
    MergeReplicated,
}

/// Fold one shard's entries for a statement into one entry (bulk loads
/// record one entry per chunk server-side).
fn fold_entries(entries: Vec<ExecMetrics>) -> Option<ExecMetrics> {
    let mut it = entries.into_iter();
    let mut first = it.next()?;
    for e in it {
        first.merge(&e);
    }
    Some(first)
}

fn fingerprint_text(text: &str) -> u64 {
    let mut h = DefaultHasher::new();
    "stmt".hash(&mut h);
    text.hash(&mut h);
    h.finish()
}

fn fingerprint_bulk(table: &str, rows: &[Vec<Value>]) -> u64 {
    let mut h = DefaultHasher::new();
    "bulk".hash(&mut h);
    table.hash(&mut h);
    rows.len().hash(&mut h);
    if let Some(first) = rows.first() {
        first.hash(&mut h);
    }
    if let Some(last) = rows.last() {
        last.hash(&mut h);
    }
    h.finish()
}

/// A VALUES expression that is a literal (or a negated numeric
/// literal), evaluated without an engine.
fn literal_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Unary {
            op: sqlengine::ast::UnaryOp::Neg,
            expr,
        } => match literal_value(expr)? {
            Value::Int(i) => Some(Value::Int(-i)),
            Value::Double(d) => Some(Value::Double(-d)),
            _ => None,
        },
        _ => None,
    }
}

/// Replace references to output aliases in an ORDER BY key with the
/// aliased expressions, so the key can travel as a hidden projection
/// item on each shard.
fn substitute_aliases(e: &Expr, items: &[SelectItem]) -> Expr {
    if let Expr::Column { table: None, name } = e {
        for item in items {
            if let SelectItem::Expr {
                expr,
                alias: Some(a),
            } = item
            {
                if a == name {
                    return expr.clone();
                }
            }
        }
    }
    match e {
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute_aliases(expr, items)),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute_aliases(left, items)),
            right: Box::new(substitute_aliases(right, items)),
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|a| substitute_aliases(a, items)).collect(),
        },
        Expr::Case { whens, else_expr } => Expr::Case {
            whens: whens
                .iter()
                .map(|(c, r)| (substitute_aliases(c, items), substitute_aliases(r, items)))
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|x| Box::new(substitute_aliases(x, items))),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(substitute_aliases(expr, items)),
            negated: *negated,
        },
        other => other.clone(),
    }
}

/// Compare two gathered rows on their hidden trailing key columns.
fn key_cmp(
    a: &sqlengine::Row,
    b: &sqlengine::Row,
    visible: usize,
    descs: &[bool],
) -> std::cmp::Ordering {
    for (j, desc) in descs.iter().enumerate() {
        let ord = a[visible + j].total_cmp(&b[visible + j]);
        let ord = if *desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

impl<E: SqlExecutor + Send> SqlExecutor for Coordinator<E> {
    fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        if sql.len() > self.max_statement_len() {
            return Err(Error::StatementTooLong {
                len: sql.len(),
                max: self.max_statement_len(),
            });
        }
        let stmts = parse(sql)?;
        let mut last = None;
        for stmt in &stmts {
            last = Some(self.run_one(stmt)?);
        }
        last.ok_or(Error::Parse {
            pos: 0,
            message: "empty statement".into(),
        })
    }

    fn execute_partial(&mut self, sql: &str) -> Result<PartialAggResult> {
        let stmts = parse(sql)?;
        let [Statement::Select(sel)] = stmts.as_slice() else {
            return Err(Error::Unsupported(
                "partial execution requires a single SELECT".into(),
            ));
        };
        match self.classify_select(sel)? {
            SelectClass::Broadcast => self.shards[0].execute_partial(sql),
            SelectClass::Scatter => {
                let (merged, _) = self.scatter_partials(sel)?;
                self.drain_metrics(MergeMode::MergeMasked, None)?;
                Ok(merged)
            }
            SelectClass::Gather => Err(Error::Unsupported(
                "partial execution requires an aggregate SELECT".into(),
            )),
        }
    }

    fn prepare_script(
        &mut self,
        statements: &[String],
    ) -> std::result::Result<Vec<PreparedId>, PrepareError> {
        // The shadow validates the whole script (symbolic DDL replay
        // included) and allocates ids; shards see each statement only
        // when it runs, freshly classified.
        let ids = self.shadow.prepare_script(statements)?;
        for (id, text) in ids.iter().zip(statements) {
            self.prepared.insert(id.0, text.clone());
        }
        Ok(ids)
    }

    fn run_prepared(&mut self, id: PreparedId) -> Result<QueryResult> {
        let text = self
            .prepared
            .get(&id.0)
            .cloned()
            .ok_or_else(|| Error::Unsupported(format!("unknown prepared id {}", id.0)))?;
        self.execute(&text)
    }

    fn clear_prepared(&mut self) -> Result<()> {
        self.prepared.clear();
        self.shadow.clear_prepared()
    }

    fn bulk_insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let lname = table.to_ascii_lowercase();
        if self.partitioned.contains_key(&lname) {
            let inserted = self.route_bulk(&lname, rows)?;
            self.drain_metrics(MergeMode::MergeMasked, None)?;
            Ok(inserted)
        } else {
            let n = rows.len();
            let fp = fingerprint_bulk(&lname, &rows);
            {
                let rows = &rows;
                let table_name = lname.clone();
                self.mutate_all(fp, move |_, shard| {
                    if rows.is_empty() {
                        return Ok(0usize);
                    }
                    shard.bulk_insert_rows(&table_name, rows.clone())
                })?;
            }
            self.drain_metrics(MergeMode::MergeReplicated, None)?;
            Ok(n)
        }
    }

    fn table_rows(&mut self, table: &str) -> Result<usize> {
        if self.partitioned.contains_key(&table.to_ascii_lowercase()) {
            let skip = vec![false; self.shards.len()];
            let table = table.to_string();
            let results = Self::fan_out(&mut self.shards, &skip, move |_, shard| {
                shard.table_rows(&table)
            });
            let mut total = 0;
            for r in results {
                total += r.expect("no shard skipped")?;
            }
            Ok(total)
        } else {
            self.shards[0].table_rows(table)
        }
    }

    fn has_table(&mut self, table: &str) -> Result<bool> {
        self.shards[0].has_table(table)
    }

    fn catalog_snapshot(&mut self) -> Result<SymbolicCatalog> {
        Ok(self.shadow.symbolic_catalog())
    }

    fn max_statement_len(&self) -> usize {
        self.shards
            .iter()
            .map(SqlExecutor::max_statement_len)
            .min()
            .unwrap_or(0)
    }

    fn analyze_limits(&self) -> Limits {
        self.shards[0].analyze_limits()
    }

    fn memory_budget_bytes(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(SqlExecutor::memory_budget_bytes)
            .min()
    }

    fn note_statement_retry(&mut self) {
        for shard in &mut self.shards {
            shard.note_statement_retry();
        }
    }

    fn set_metrics_enabled(&mut self, on: bool) -> Result<()> {
        for shard in &mut self.shards {
            shard.set_metrics_enabled(on)?;
        }
        self.metrics_on = on;
        if on {
            self.reset_cursors()?;
        }
        Ok(())
    }

    fn metrics_enabled(&self) -> bool {
        self.metrics_on
    }

    fn metrics_len(&mut self) -> Result<usize> {
        Ok(self.metrics.len())
    }

    fn metrics_since(&mut self, from: usize) -> Result<Vec<ExecMetrics>> {
        let from = from.min(self.metrics.len());
        Ok(self.metrics[from..].to_vec())
    }

    fn describe(&self) -> String {
        let shards: Vec<String> = self.shards.iter().map(|s| s.describe()).collect();
        format!(
            "cluster coordinator over {} shard(s): [{}]",
            self.shards.len(),
            shards.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Coordinator<Database> {
        Coordinator::new((0..n).map(|_| Database::new()).collect()).unwrap()
    }

    /// Run `sqls` against both a fresh single-node database and a
    /// fresh n-shard cluster; assert the final statement's result is
    /// identical (columns, rows, bit-for-bit values).
    fn assert_parity(n: usize, sqls: &[&str]) {
        let mut single = Database::new();
        let mut coord = cluster(n);
        let mut last_single = None;
        let mut last_coord = None;
        for sql in sqls {
            last_single = Some(single.execute(sql).unwrap());
            last_coord = Some(coord.execute(sql).unwrap());
        }
        let s = last_single.unwrap();
        let c = last_coord.unwrap();
        assert_eq!(s.columns, c.columns);
        assert_eq!(s.rows, c.rows, "rows diverge at {n} shards");
    }

    const SETUP: &[&str] = &[
        "CREATE TABLE y (rid BIGINT PRIMARY KEY, y1 DOUBLE, y2 DOUBLE)",
        "CREATE TABLE c (j BIGINT PRIMARY KEY, c1 DOUBLE, c2 DOUBLE)",
        "INSERT INTO y VALUES (1, 1.0, 10.0), (2, 2.0, 20.0), (3, 3.5, 30.5), \
         (4, -4.25, 40.0), (5, 0.125, -50.0), (6, 6.0, 60.0), (7, 7.75, 70.0)",
        "INSERT INTO c VALUES (1, 0.5, 9.0), (2, 5.0, 55.0)",
    ];

    #[test]
    fn rid_routing_is_stable_and_total() {
        for n in [1usize, 2, 4, 7] {
            for rid in -100i64..100 {
                let s = shard_of_rid(rid, n);
                assert!(s < n);
                assert_eq!(s, shard_of_rid(rid, n), "must be deterministic");
            }
        }
        // One shard takes everything.
        assert!((0..64).all(|r| shard_of_rid(r, 1) == 0));
        // Several shards each get some rows for a modest rid range.
        let hit: std::collections::HashSet<usize> = (0..64).map(|r| shard_of_rid(r, 4)).collect();
        assert_eq!(hit.len(), 4, "64 rids should reach all 4 shards");
    }

    #[test]
    fn partition_map_tracks_ddl() {
        let mut coord = cluster(2);
        coord
            .execute("CREATE TABLE y (rid BIGINT, v DOUBLE)")
            .unwrap();
        coord
            .execute("CREATE TABLE w (j BIGINT, w DOUBLE)")
            .unwrap();
        assert!(coord.is_partitioned("y"));
        assert!(!coord.is_partitioned("w"));
        coord.execute("DROP TABLE y").unwrap();
        assert!(!coord.is_partitioned("y"));
    }

    #[test]
    fn routed_values_land_on_owning_shards_only() {
        let mut coord = cluster(4);
        for sql in SETUP {
            coord.execute(sql).unwrap();
        }
        assert_eq!(coord.table_rows("y").unwrap(), 7);
        // Per-shard counts match the hash routing exactly, and rows
        // are not replicated.
        let mut expect = [0usize; 4];
        for rid in 1..=7i64 {
            expect[shard_of_rid(rid, 4)] += 1;
        }
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(coord.shards[i].table_len("y").unwrap(), *want);
        }
        // Broadcast tables replicate in full.
        for shard in &mut coord.shards {
            assert_eq!(shard.table_len("c").unwrap(), 2);
        }
    }

    #[test]
    fn scatter_aggregates_match_single_node_bit_for_bit() {
        for n in [1, 2, 4] {
            let mut sqls = SETUP.to_vec();
            sqls.push("SELECT count(rid), sum(y1), avg(y2), min(y1), max(y2) FROM y");
            assert_parity(n, &sqls);
        }
    }

    #[test]
    fn grouped_scatter_with_join_matches_single_node() {
        for n in [1, 2, 4] {
            let mut sqls = SETUP.to_vec();
            sqls.push(
                "SELECT c.j, sum(y.y1 * c.c1), count(y.rid) FROM y, c \
                 GROUP BY c.j ORDER BY c.j",
            );
            assert_parity(n, &sqls);
        }
    }

    #[test]
    fn gather_read_merges_order_by_streams() {
        for n in [1, 2, 4] {
            let mut sqls = SETUP.to_vec();
            sqls.push("SELECT rid, y1 + y2 AS s FROM y ORDER BY s DESC, rid");
            assert_parity(n, &sqls);
        }
    }

    #[test]
    fn gather_read_honors_limit_after_merge() {
        for n in [2, 4] {
            let mut sqls = SETUP.to_vec();
            sqls.push("SELECT rid FROM y ORDER BY rid LIMIT 3");
            assert_parity(n, &sqls);
        }
    }

    #[test]
    fn local_insert_select_keeps_rows_on_their_shard() {
        let mut coord = cluster(4);
        for sql in SETUP {
            coord.execute(sql).unwrap();
        }
        coord
            .execute("CREATE TABLE yd (rid BIGINT, d DOUBLE)")
            .unwrap();
        let r = coord
            .execute(
                "INSERT INTO yd SELECT y.rid, sum((y.y1 - c.c1) * (y.y1 - c.c1)) \
                 FROM y, c GROUP BY y.rid",
            )
            .unwrap();
        assert_eq!(r.rows_affected, 7);
        // Derived rows co-locate with their source rows.
        for i in 0..4 {
            assert_eq!(
                coord.shards[i].table_len("yd").unwrap(),
                coord.shards[i].table_len("y").unwrap()
            );
        }
        // And the derived table reads back identically to single node.
        let mut sqls: Vec<&str> = SETUP.to_vec();
        sqls.push("CREATE TABLE yd (rid BIGINT, d DOUBLE)");
        sqls.push(
            "INSERT INTO yd SELECT y.rid, sum((y.y1 - c.c1) * (y.y1 - c.c1)) \
             FROM y, c GROUP BY y.rid",
        );
        sqls.push("SELECT rid, d FROM yd ORDER BY rid");
        assert_parity(4, &sqls);
    }

    #[test]
    fn scatter_insert_replicates_finalized_aggregates() {
        let mut coord = cluster(3);
        for sql in SETUP {
            coord.execute(sql).unwrap();
        }
        coord
            .execute("CREATE TABLE stats (j BIGINT, total DOUBLE, n BIGINT)")
            .unwrap();
        coord
            .execute(
                "INSERT INTO stats SELECT c.j, sum(y.y1 * c.c1), count(y.rid) \
                 FROM y, c GROUP BY c.j",
            )
            .unwrap();
        // The broadcast result lands in full on every shard.
        for shard in &mut coord.shards {
            assert_eq!(shard.table_len("stats").unwrap(), 2);
        }
        let mut sqls: Vec<&str> = SETUP.to_vec();
        sqls.push("CREATE TABLE stats (j BIGINT, total DOUBLE, n BIGINT)");
        sqls.push(
            "INSERT INTO stats SELECT c.j, sum(y.y1 * c.c1), count(y.rid) \
             FROM y, c GROUP BY c.j",
        );
        sqls.push("SELECT j, total, n FROM stats ORDER BY j");
        assert_parity(3, &sqls);
    }

    #[test]
    fn broadcast_update_and_delete_stay_replica_identical() {
        let mut sqls: Vec<&str> = SETUP.to_vec();
        sqls.push("UPDATE c SET c1 = c1 * 2.0 WHERE j = 1");
        sqls.push("DELETE FROM y WHERE y1 < 0.0");
        sqls.push("SELECT rid, y1 FROM y ORDER BY rid");
        assert_parity(2, &sqls);
        let mut sqls: Vec<&str> = SETUP.to_vec();
        sqls.push("UPDATE c SET c1 = c1 * 2.0 WHERE j = 1");
        sqls.push("SELECT j, c1, c2 FROM c ORDER BY j");
        assert_parity(2, &sqls);
    }

    #[test]
    fn cross_shard_joins_are_rejected_with_a_typed_error() {
        let mut coord = cluster(2);
        coord
            .execute("CREATE TABLE a (rid BIGINT, v DOUBLE)")
            .unwrap();
        coord
            .execute("CREATE TABLE b (rid BIGINT, w DOUBLE)")
            .unwrap();
        // No rid equality between the two partitioned tables.
        let err = coord
            .execute("SELECT sum(a.v * b.w) FROM a, b")
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "got {err:?}");
        // With the rid join it scatters fine.
        coord
            .execute("SELECT sum(a.v * b.w) FROM a, b WHERE a.rid = b.rid")
            .unwrap();
    }

    #[test]
    fn update_broadcast_from_partitioned_is_rejected() {
        let mut coord = cluster(2);
        for sql in SETUP {
            coord.execute(sql).unwrap();
        }
        let err = coord
            .execute("UPDATE c FROM y SET c1 = y.y1 WHERE c.j = 1")
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported(_)), "got {err:?}");
    }

    #[test]
    fn partial_retry_does_not_double_apply() {
        // Shard 1 fails the statement once (transient, not applied);
        // shard 0 applies it. The retry must skip shard 0.
        let mut coord = cluster(2);
        coord
            .execute("CREATE TABLE w (j BIGINT, v DOUBLE)")
            .unwrap();
        let plan =
            sqlengine::FaultPlan::single(sqlengine::FaultRule::table("w").transient().once());
        coord.shards[1].set_fault_plan(plan);
        let sql = "INSERT INTO w VALUES (1, 1.0)";
        let err = coord.execute(sql).unwrap_err();
        assert!(matches!(
            err,
            Error::Injected {
                transient: true,
                ..
            }
        ));
        coord.note_statement_retry();
        coord.execute(sql).unwrap();
        for shard in &mut coord.shards {
            assert_eq!(shard.table_len("w").unwrap(), 1, "exactly once per shard");
        }
    }

    #[test]
    fn merged_metrics_match_single_node_scan_counts() {
        let mut single = Database::new();
        let mut coord = cluster(4);
        for sql in SETUP {
            single.execute(sql).unwrap();
            coord.execute(sql).unwrap();
        }
        SqlExecutor::set_metrics_enabled(&mut single, true).unwrap();
        coord.set_metrics_enabled(true).unwrap();
        let sqls = [
            "SELECT c.j, sum(y.y1), count(y.rid) FROM y, c GROUP BY c.j",
            "SELECT rid, y1 FROM y ORDER BY rid",
            "SELECT j, c1 FROM c ORDER BY j",
        ];
        for sql in sqls {
            single.execute(sql).unwrap();
            coord.execute(sql).unwrap();
        }
        let s = SqlExecutor::metrics_since(&mut single, 0).unwrap();
        let c = coord.metrics_since(0).unwrap();
        assert_eq!(s.len(), c.len(), "one merged entry per statement");
        for (se, ce) in s.iter().zip(&c) {
            let srows: Vec<(String, usize)> =
                se.scans.iter().map(|m| (m.table.clone(), m.rows)).collect();
            let crows: Vec<(String, usize)> =
                ce.scans.iter().map(|m| (m.table.clone(), m.rows)).collect();
            assert_eq!(srows, crows, "scan rows must merge to single-node counts");
            assert_eq!(se.groups, ce.groups);
        }
    }

    #[test]
    fn prepared_scripts_run_through_classification() {
        let mut coord = cluster(2);
        for sql in SETUP {
            coord.execute(sql).unwrap();
        }
        let ids = coord
            .prepare_script(&[
                "SELECT count(rid) FROM y".to_string(),
                "SELECT sum(y1) FROM y".to_string(),
            ])
            .unwrap();
        let r = coord.run_prepared(ids[0]).unwrap();
        assert_eq!(r.scalar_f64(), Some(7.0));
        coord.clear_prepared().unwrap();
        assert!(coord.run_prepared(ids[0]).is_err());
    }

    #[test]
    fn bulk_insert_routes_partitioned_and_replicates_broadcast() {
        let mut coord = cluster(3);
        coord
            .execute("CREATE TABLE y (rid BIGINT, v DOUBLE)")
            .unwrap();
        coord
            .execute("CREATE TABLE m (j BIGINT, v DOUBLE)")
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..30)
            .map(|i| vec![Value::Int(i), Value::Double(i as f64 / 8.0)])
            .collect();
        assert_eq!(coord.bulk_insert_rows("y", rows.clone()).unwrap(), 30);
        assert_eq!(coord.bulk_insert_rows("m", rows).unwrap(), 30);
        assert_eq!(coord.table_rows("y").unwrap(), 30);
        let spread: usize = (0..3)
            .map(|i| coord.shards[i].table_len("y").unwrap())
            .sum();
        assert_eq!(spread, 30);
        for shard in &mut coord.shards {
            assert_eq!(shard.table_len("m").unwrap(), 30);
        }
    }

    #[test]
    fn coordinator_adopts_existing_catalog() {
        let mut shard0 = Database::new();
        let mut shard1 = Database::new();
        for db in [&mut shard0, &mut shard1] {
            db.execute("CREATE TABLE y (rid BIGINT, v DOUBLE)").unwrap();
            db.execute("CREATE TABLE c (j BIGINT, v DOUBLE)").unwrap();
        }
        let mut coord = Coordinator::new(vec![shard0, shard1]).unwrap();
        assert!(coord.is_partitioned("y"));
        assert!(!coord.is_partitioned("c"));
        assert!(coord.has_table("y").unwrap());
        let snap = coord.catalog_snapshot().unwrap();
        assert!(snap.contains("y") && snap.contains("c"));
    }
}

//! Length-prefixed, checksummed message framing.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! [u32 len (LE)] [u32 crc32(payload) (LE)] [payload: len bytes]
//! ```
//!
//! `len` counts the payload only. The CRC is the same IEEE CRC-32 the
//! storage layer uses for WAL records ([`sqlengine::storage::codec::crc32`]),
//! so a flipped bit anywhere in the payload is rejected before the
//! payload is parsed. The first payload byte is the opcode
//! (see [`crate::proto`]).
//!
//! Framing errors are reported as [`sqlengine::Error::Net`]: read/write
//! timeouts and connection resets are *transient* (a reconnect plus
//! re-submission may fix them, feeding [`sqlem`'s retry policy]); an
//! oversized length prefix or a CRC mismatch is *permanent* — on a
//! healthy TCP stream those mean a protocol bug or a hostile peer, and
//! retrying reproduces them.
//!
//! [`sqlem`'s retry policy]: ../../sqlem/struct.RetryPolicy.html

use std::io::{ErrorKind, Read, Write};

use sqlengine::storage::codec::{crc32, put_u32};
use sqlengine::{Error, Result};

/// Hard ceiling on a single frame's payload, defending both sides
/// against a corrupt or hostile length prefix asking for gigabytes.
/// Bulk inserts chunk themselves well below this (see
/// [`crate::client::RemoteConnection`]).
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Classify an I/O failure while talking to the peer: timeouts and
/// resets are transient wire conditions, anything else permanent.
pub fn io_to_net(context: &str, e: &std::io::Error) -> Error {
    let transient = matches!(
        e.kind(),
        ErrorKind::WouldBlock
            | ErrorKind::TimedOut
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof
            | ErrorKind::Interrupted
            | ErrorKind::ConnectionRefused
    );
    if transient {
        Error::net_transient(context, e.to_string())
    } else {
        Error::net_permanent(context, e.to_string())
    }
}

/// Encode `payload` as one frame (header + payload), ready to write.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Write one frame to `w` and flush it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(Error::net_permanent(
            "send frame",
            format!("payload of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
        ));
    }
    let frame = encode_frame(payload);
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| io_to_net("send frame", &e))
}

/// Read one frame from `r`, verifying the length bound and checksum.
///
/// A clean EOF *before any header byte* is reported as a transient
/// `Net` error with the message `"connection closed"` — the peer hung
/// up between messages, which a reconnect fixes. EOF in the middle of
/// a frame is a transient reset (the write was torn).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>> {
    let mut header = [0u8; 8];
    let mut got = 0usize;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return Err(Error::net_transient(
                    "read frame",
                    if got == 0 {
                        "connection closed".to_string()
                    } else {
                        format!("connection reset inside frame header ({got}/8 bytes)")
                    },
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(io_to_net("read frame header", &e)),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Err(Error::net_permanent(
            "read frame",
            format!("length prefix {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| io_to_net("read frame payload", &e))?;
    let actual = crc32(&payload);
    if actual != crc {
        return Err(Error::net_permanent(
            "read frame",
            format!("payload checksum mismatch: header {crc:#010x}, computed {actual:#010x}"),
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = b"\x01hello wire".to_vec();
        let framed = encode_frame(&payload);
        let mut cursor = &framed[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let framed = encode_frame(&[]);
        let mut cursor = &framed[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn bit_flip_rejected_as_permanent() {
        let framed = encode_frame(b"payload under test");
        for i in 8..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            let mut cursor = &bad[..];
            match read_frame(&mut cursor) {
                Err(e) => assert!(!e.is_transient(), "flip at byte {i}: {e}"),
                Ok(_) => panic!("flip at byte {i} went undetected"),
            }
        }
    }

    #[test]
    fn truncation_rejected_as_transient() {
        let framed = encode_frame(b"will be cut short");
        // Any strict prefix is either a torn header or a torn payload —
        // both the signature of a connection dying mid-write.
        for cut in 0..framed.len() {
            let mut cursor = &framed[..cut];
            let e = read_frame(&mut cursor).unwrap_err();
            assert!(e.is_transient(), "cut at {cut}: {e}");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut bad = Vec::new();
        put_u32(&mut bad, (MAX_FRAME_LEN + 1) as u32);
        put_u32(&mut bad, 0);
        let mut cursor = &bad[..];
        let e = read_frame(&mut cursor).unwrap_err();
        assert!(!e.is_transient(), "{e}");
    }
}

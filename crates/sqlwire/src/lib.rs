//! Client/server wire protocol for the SQLEM engine.
//!
//! The paper runs EM as a *two-tier* system (§1.4): the clustering
//! client lives on a workstation, generates SQL, and submits it over
//! the network to the DBMS where the data lives. This crate supplies
//! the network: a hermetic (std-only) binary protocol, a concurrent
//! TCP server wrapping a [`sqlengine::SharedDatabase`], and a
//! reconnecting client that implements [`sqlengine::SqlExecutor`] so
//! the whole `sqlem` driver runs remotely unchanged.
//!
//! - [`frame`] — length-prefixed, CRC-32-checked message framing.
//! - [`proto`] — the request/response vocabulary and its encoding;
//!   doubles cross the wire bit-exact, so remote runs converge
//!   bit-identically to in-process runs.
//! - [`server`] — sessions, namespaces, admission control, timeouts,
//!   graceful drain; composes with the engine's durability and fault
//!   layers.
//! - [`client`] — [`client::RemoteConnection`], the remote executor.
//!
//! See `docs/SERVER.md` for the frame grammar and session lifecycle.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{ClientConfig, RemoteConnection};
pub use proto::{Request, Response, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig, ServerHandle};

//! Client/server wire protocol for the SQLEM engine.
//!
//! The paper runs EM as a *two-tier* system (§1.4): the clustering
//! client lives on a workstation, generates SQL, and submits it over
//! the network to the DBMS where the data lives. This crate supplies
//! the network: a hermetic (std-only) binary protocol, a concurrent
//! TCP server wrapping a [`sqlengine::SharedDatabase`], and a
//! reconnecting client that implements [`sqlengine::SqlExecutor`] so
//! the whole `sqlem` driver runs remotely unchanged.
//!
//! - [`frame`] — length-prefixed, CRC-32-checked message framing.
//! - [`proto`] — the request/response vocabulary and its encoding;
//!   doubles cross the wire bit-exact, so remote runs converge
//!   bit-identically to in-process runs.
//! - [`server`] — sessions, namespaces, admission control, timeouts,
//!   graceful drain; composes with the engine's durability and fault
//!   layers.
//! - [`client`] — [`client::RemoteConnection`], the remote executor.
//! - [`session`] — exactly-once machinery: the per-session reply
//!   cache and the durable session log that lets statement dedup
//!   survive a server `kill -9`.
//! - [`chaos`] — a frame-aware byte-level chaos proxy for verifying
//!   the exactly-once contract under cut/delay/duplicate faults.
//! - [`cluster`] — the scatter/gather coordinator: hash-partitions
//!   base tables across N shard executors and fragments every
//!   generated statement, so one EM driver drives a whole cluster
//!   bit-identically to a single node (see `docs/CLUSTER.md`).
//!
//! See `docs/SERVER.md` for the frame grammar, the session lifecycle
//! and the exactly-once contract.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod client;
pub mod cluster;
pub mod frame;
pub mod proto;
pub mod server;
pub mod session;

pub use chaos::{ChaosAction, ChaosProxy, Direction};
pub use client::{ClientConfig, RemoteConnection};
pub use cluster::{shard_of_rid, Coordinator};
pub use proto::{Request, Response, StmtMeta, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::{Admit, ReplyCache, SessionLog};

//! The message vocabulary and its binary encoding.
//!
//! One frame payload (see [`crate::frame`]) encodes exactly one
//! [`Request`] or [`Response`]; the first byte is the opcode, the rest
//! is opcode-specific and reuses the storage layer's little-endian
//! codec ([`sqlengine::storage::codec`]) — the same length-prefixed
//! strings and tagged [`Value`]s the WAL writes, so doubles cross the
//! wire bit-exact (`f64::to_bits`) and remote EM runs can converge
//! *bit-identically* to in-process runs.
//!
//! ## Error relay
//!
//! Server-side [`Error`]s cross the wire with just enough structure for
//! the client-side driver logic to keep working remotely:
//! [`Error::StatementTooLong`] (the §3.3 capacity taxonomy that
//! `sqlem`'s purpose attribution promotes), [`Error::Arithmetic`] (the
//! degenerate-cluster recovery trigger), [`Error::Injected`] (fault
//! injection's transient/applied semantics feed the retry policy),
//! [`Error::Net`] and [`Error::Deadline`] (budget exhaustion must stay
//! typed so clients can render an actionable message), and
//! [`Error::ResourceExhausted`] (the memory governor's transient
//! rejection, which drives the driver's degradation ladder) travel as
//! themselves; every other variant arrives as its rendered message
//! wrapped in [`Error::Remote`].
//!
//! ## Statement idempotency keys
//!
//! The three statement-bearing requests ([`Request::Query`],
//! [`Request::ExecutePrepared`], [`Request::BulkInsert`]) carry a
//! [`StmtMeta`]: a per-session monotonically increasing sequence
//! number (the idempotency key the server's reply cache dedups on) and
//! the client's remaining per-statement deadline budget. Sessions are
//! resumable: [`Request::Hello`] carries a resume token (empty for a
//! new session) and [`Response::HelloAck`] returns the token the
//! server issued or adopted, so a reconnecting client reattaches to
//! its dedup window — even across a server `kill -9` when the server
//! is durable. See `docs/SERVER.md` §3 for the full contract.

use sqlengine::storage::codec::{put_str, put_u32, put_u64, put_value, read_value, Reader};
use sqlengine::{Column, Schema, SymbolicCatalog};
use sqlengine::{
    Error, ExecMetrics, Limits, PartialAggResult, PartialAggState, QueryResult, ScanMetric,
    StatementKind, Value,
};
use std::time::Duration;

/// Protocol version; [`Request::Hello`] carries the client's, the server
/// rejects mismatches permanently (a newer binary won't start working by
/// retrying). Version 2 added statement sequence numbers, deadline
/// propagation and session resume tokens.
pub const PROTOCOL_VERSION: u32 = 2;

/// Per-statement metadata every statement-bearing request carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StmtMeta {
    /// Session-scoped, monotonically increasing statement sequence
    /// number — the idempotency key the server's reply cache dedups
    /// on. A redial replays the in-flight statement under its original
    /// `seq`; a genuine retry after an *engine* error uses a fresh one.
    pub seq: u64,
    /// Remaining wall-clock budget for this statement in milliseconds,
    /// measured at send time (relative, so no clock synchronisation is
    /// assumed). `0` means no deadline.
    pub deadline_ms: u64,
}

impl StmtMeta {
    /// Metadata carrying only a sequence number (no deadline).
    pub fn seq(seq: u64) -> Self {
        StmtMeta {
            seq,
            deadline_ms: 0,
        }
    }
}

fn put_meta(buf: &mut Vec<u8>, m: &StmtMeta) {
    put_u64(buf, m.seq);
    put_u64(buf, m.deadline_ms);
}

fn read_meta(r: &mut Reader<'_>) -> Result<StmtMeta, Error> {
    Ok(StmtMeta {
        seq: r.u64()?,
        deadline_ms: r.u64()?,
    })
}

/// Client-to-server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the session: version/auth check plus the work-table
    /// namespace this client wants exclusively (empty = shared/no claim).
    Hello {
        /// Client's [`PROTOCOL_VERSION`].
        version: u32,
        /// Shared-secret token; must equal the server's (both default
        /// empty).
        auth_token: String,
        /// Work-table prefix the session claims exclusively.
        namespace: String,
        /// Resume token from a previous [`Response::HelloAck`], or empty
        /// to start a fresh session. A known token reattaches the
        /// client to its namespace, sequence window and reply cache.
        resume_token: String,
    },
    /// Execute one SQL statement.
    Query {
        /// Idempotency key + deadline budget.
        meta: StmtMeta,
        /// Statement text.
        sql: String,
    },
    /// Execute one aggregate `SELECT` up to — but not including — the
    /// finalize step, returning exact per-group accumulator states
    /// ([`Response::Partial`]). The scatter half of a distributed
    /// aggregate: a cluster coordinator merges every shard's partials
    /// and finalizes once, bit-identically to a single-node run.
    ExecutePartial {
        /// Idempotency key + deadline budget.
        meta: StmtMeta,
        /// Statement text (must be a single aggregate `SELECT`).
        sql: String,
    },
    /// Prepare a script of statements atomically (all or none).
    Prepare {
        /// Statement texts, in execution order.
        statements: Vec<String>,
    },
    /// Execute a previously prepared statement by server-assigned id.
    ExecutePrepared {
        /// Idempotency key + deadline budget.
        meta: StmtMeta,
        /// Id from the [`Response::PreparedIds`] answering a `Prepare`.
        id: u64,
    },
    /// Drop every prepared statement of this session.
    ClearPrepared,
    /// Parser-bypassing bulk load (the FastLoad analogue, DESIGN.md §5).
    BulkInsert {
        /// Idempotency key + deadline budget.
        meta: StmtMeta,
        /// Destination table.
        table: String,
        /// Rows; every row must match the table's arity.
        rows: Vec<Vec<Value>>,
    },
    /// Row count of a table.
    TableRows {
        /// Table name.
        table: String,
    },
    /// Does the table exist?
    HasTable {
        /// Table name.
        table: String,
    },
    /// Schema snapshot of every table, for client-side pre-flight linting.
    CatalogSnapshot,
    /// Start/stop recording per-statement execution telemetry.
    SetMetrics {
        /// `true` to record.
        on: bool,
    },
    /// Current length of the metrics log (cursor acquisition).
    MetricsLen,
    /// Metrics entries from a cursor to the end (non-draining).
    MetricsSince {
        /// 0-based start index.
        from: u64,
    },
    /// Forward a client-side retry notice to the server's fault injector
    /// (keeps statement sequence numbers aligned across the wire).
    NoteRetry,
    /// Ask the server to cancel another live session: its namespace is
    /// released and its next operation fails permanently.
    Cancel {
        /// Session id from that session's [`Response::HelloAck`].
        session: u64,
    },
    /// Orderly goodbye; the server closes after acknowledging.
    Goodbye,
}

/// Server-to-client messages.
///
/// No `PartialEq`: [`SymbolicCatalog`] is not comparable; tests use
/// [`same_encoding`] instead.
#[derive(Debug, Clone)]
pub enum Response {
    /// Successful handshake; carries everything the client caches.
    HelloAck {
        /// Server's [`PROTOCOL_VERSION`].
        version: u32,
        /// This session's id (usable in [`Request::Cancel`]).
        session: u64,
        /// The engine's statement-length parser cap.
        max_statement_len: u64,
        /// The engine's semantic-analysis complexity ceilings.
        limits: Limits,
        /// Human-readable server identification.
        description: String,
        /// Session resume token: either the one the client presented
        /// (reattach/adopt) or a freshly issued one. The client stores
        /// it and presents it on every redial.
        resume_token: String,
    },
    /// Operation succeeded with nothing to return.
    Ok,
    /// Boolean answer ([`Request::HasTable`]).
    Bool(bool),
    /// Numeric answer (row counts, metrics length).
    Count(u64),
    /// Full query result.
    Rows(QueryResult),
    /// The operation failed; see the module docs for the relay taxonomy.
    Err(Error),
    /// Ids answering a [`Request::Prepare`], one per statement in order.
    PreparedIds(Vec<u64>),
    /// A `Prepare` failed at statement `index`; nothing was registered.
    PrepareErr {
        /// 0-based index of the offending statement.
        index: u64,
        /// Why it failed.
        error: Error,
    },
    /// Schema snapshot answering [`Request::CatalogSnapshot`].
    Catalog(SymbolicCatalog),
    /// Telemetry entries answering [`Request::MetricsSince`].
    Metrics(Vec<ExecMetrics>),
    /// Exact per-group partial accumulator states answering a
    /// [`Request::ExecutePartial`]. Expansion components travel as raw
    /// IEEE-754 bits, so merged sums finalize bit-identically to a
    /// single-node run.
    Partial(PartialAggResult),
    /// A replayed statement is *proven applied* (its WAL frame
    /// committed before the crash) but the cached reply bytes did not
    /// survive the server restart. The client reconciles: the mutation
    /// happened exactly once, only the result payload is gone — safe
    /// for the DML/bulk statements the EM driver replays, which only
    /// need the applied/not-applied bit.
    ReplayApplied,
}

// ---------------------------------------------------------------------
// opcodes

const OP_HELLO: u8 = 0x01;
const OP_QUERY: u8 = 0x02;
const OP_PREPARE: u8 = 0x03;
const OP_EXECUTE_PREPARED: u8 = 0x04;
const OP_CLEAR_PREPARED: u8 = 0x05;
const OP_BULK_INSERT: u8 = 0x06;
const OP_TABLE_ROWS: u8 = 0x07;
const OP_HAS_TABLE: u8 = 0x08;
const OP_CATALOG_SNAPSHOT: u8 = 0x09;
const OP_SET_METRICS: u8 = 0x0A;
const OP_METRICS_LEN: u8 = 0x0B;
const OP_METRICS_SINCE: u8 = 0x0C;
const OP_NOTE_RETRY: u8 = 0x0D;
const OP_CANCEL: u8 = 0x0E;
const OP_GOODBYE: u8 = 0x0F;
const OP_EXECUTE_PARTIAL: u8 = 0x10;

const OP_HELLO_ACK: u8 = 0x81;
const OP_OK: u8 = 0x82;
const OP_BOOL: u8 = 0x83;
const OP_COUNT: u8 = 0x84;
const OP_ROWS: u8 = 0x85;
const OP_ERR: u8 = 0x86;
const OP_PREPARED_IDS: u8 = 0x87;
const OP_PREPARE_ERR: u8 = 0x88;
const OP_CATALOG: u8 = 0x89;
const OP_METRICS: u8 = 0x8A;
const OP_REPLAY_APPLIED: u8 = 0x8B;
const OP_PARTIAL: u8 = 0x8C;

// partial-aggregate state tags
const AGG_COUNT: u8 = 0;
const AGG_SUM: u8 = 1;
const AGG_AVG: u8 = 2;
const AGG_MIN: u8 = 3;
const AGG_MAX: u8 = 4;
const AGG_VAR: u8 = 5;

// error relay tags
const ERR_OTHER: u8 = 0;
const ERR_TOO_LONG: u8 = 1;
const ERR_ARITHMETIC: u8 = 2;
const ERR_INJECTED: u8 = 3;
const ERR_NET: u8 = 4;
const ERR_DEADLINE: u8 = 5;
const ERR_RESOURCE: u8 = 6;

fn malformed(what: &str) -> Error {
    Error::net_permanent("decode message", format!("malformed {what}"))
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

fn read_bool(r: &mut Reader<'_>) -> Result<bool, Error> {
    Ok(r.u8()? != 0)
}

fn read_usize(r: &mut Reader<'_>) -> Result<usize, Error> {
    Ok(r.u64()? as usize)
}

// ---------------------------------------------------------------------
// error relay

fn put_error(buf: &mut Vec<u8>, e: &Error) {
    match e {
        Error::StatementTooLong { len, max } => {
            buf.push(ERR_TOO_LONG);
            put_u64(buf, *len as u64);
            put_u64(buf, *max as u64);
        }
        Error::Arithmetic(m) => {
            buf.push(ERR_ARITHMETIC);
            put_str(buf, m);
        }
        Error::Injected {
            transient,
            applied,
            statement,
        } => {
            buf.push(ERR_INJECTED);
            put_bool(buf, *transient);
            put_bool(buf, *applied);
            put_u64(buf, *statement as u64);
        }
        Error::Net {
            context,
            message,
            transient,
        } => {
            buf.push(ERR_NET);
            put_str(buf, context);
            put_str(buf, message);
            put_bool(buf, *transient);
        }
        Error::Deadline { context, budget_ms } => {
            buf.push(ERR_DEADLINE);
            put_str(buf, context);
            put_u64(buf, *budget_ms);
        }
        Error::ResourceExhausted {
            context,
            used_bytes,
            budget_bytes,
        } => {
            buf.push(ERR_RESOURCE);
            put_str(buf, context);
            put_u64(buf, *used_bytes);
            put_u64(buf, *budget_bytes);
        }
        // Re-relaying an already-relayed error must not stack
        // "server error:" prefixes.
        Error::Remote(m) => {
            buf.push(ERR_OTHER);
            put_str(buf, m);
        }
        other => {
            buf.push(ERR_OTHER);
            put_str(buf, &other.to_string());
        }
    }
}

fn read_error(r: &mut Reader<'_>) -> Result<Error, Error> {
    Ok(match r.u8()? {
        ERR_TOO_LONG => Error::StatementTooLong {
            len: read_usize(r)?,
            max: read_usize(r)?,
        },
        ERR_ARITHMETIC => Error::Arithmetic(r.str()?),
        ERR_INJECTED => Error::Injected {
            transient: read_bool(r)?,
            applied: read_bool(r)?,
            statement: read_usize(r)?,
        },
        ERR_NET => Error::Net {
            context: r.str()?,
            message: r.str()?,
            transient: read_bool(r)?,
        },
        ERR_DEADLINE => Error::Deadline {
            context: r.str()?,
            budget_ms: r.u64()?,
        },
        ERR_RESOURCE => Error::ResourceExhausted {
            context: r.str()?,
            used_bytes: r.u64()?,
            budget_bytes: r.u64()?,
        },
        ERR_OTHER => Error::Remote(r.str()?),
        _ => return Err(malformed("error tag")),
    })
}

// ---------------------------------------------------------------------
// composite payloads

fn put_rows(buf: &mut Vec<u8>, rows: &[Vec<Value>]) {
    put_u32(buf, rows.len() as u32);
    for row in rows {
        put_u32(buf, row.len() as u32);
        for v in row {
            put_value(buf, v);
        }
    }
}

fn read_rows(r: &mut Reader<'_>) -> Result<Vec<Vec<Value>>, Error> {
    let n = r.u32()? as usize;
    let mut rows = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        let w = r.u32()? as usize;
        let mut row = Vec::with_capacity(w.min(r.remaining() + 1));
        for _ in 0..w {
            row.push(read_value(r)?);
        }
        rows.push(row);
    }
    Ok(rows)
}

fn put_query_result(buf: &mut Vec<u8>, q: &QueryResult) {
    put_u32(buf, q.columns.len() as u32);
    for c in &q.columns {
        put_str(buf, c);
    }
    // Result rows are boxed slices ([`sqlengine::Row`]); same layout as
    // put_rows.
    put_u32(buf, q.rows.len() as u32);
    for row in &q.rows {
        put_u32(buf, row.len() as u32);
        for v in row.iter() {
            put_value(buf, v);
        }
    }
    put_u64(buf, q.rows_affected as u64);
}

fn read_query_result(r: &mut Reader<'_>) -> Result<QueryResult, Error> {
    let ncols = r.u32()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(r.remaining()));
    for _ in 0..ncols {
        columns.push(r.str()?);
    }
    let rows = read_rows(r)?
        .into_iter()
        .map(Vec::into_boxed_slice)
        .collect();
    let rows_affected = read_usize(r)?;
    Ok(QueryResult {
        columns,
        rows,
        rows_affected,
    })
}

// Doubles in partial states travel as raw IEEE-754 bits — an expansion
// component reconstructed from anything lossier would destroy the
// exact-sum invariant.
fn put_f64(buf: &mut Vec<u8>, x: f64) {
    put_u64(buf, x.to_bits());
}

fn read_f64(r: &mut Reader<'_>) -> Result<f64, Error> {
    Ok(f64::from_bits(r.u64()?))
}

fn put_opt_value(buf: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None => put_bool(buf, false),
        Some(v) => {
            put_bool(buf, true);
            put_value(buf, v);
        }
    }
}

fn read_opt_value(r: &mut Reader<'_>) -> Result<Option<Value>, Error> {
    Ok(if read_bool(r)? {
        Some(read_value(r)?)
    } else {
        None
    })
}

fn put_agg_state(buf: &mut Vec<u8>, s: &PartialAggState) {
    match s {
        PartialAggState::Count(n) => {
            buf.push(AGG_COUNT);
            put_u64(buf, *n);
        }
        PartialAggState::Sum {
            comps,
            has_nan,
            pos_inf,
            neg_inf,
            count,
            all_int,
        } => {
            buf.push(AGG_SUM);
            put_u32(buf, comps.len() as u32);
            for &c in comps {
                put_f64(buf, c);
            }
            put_bool(buf, *has_nan);
            put_bool(buf, *pos_inf);
            put_bool(buf, *neg_inf);
            put_u64(buf, *count);
            put_bool(buf, *all_int);
        }
        PartialAggState::Avg {
            comps,
            has_nan,
            pos_inf,
            neg_inf,
            count,
        } => {
            buf.push(AGG_AVG);
            put_u32(buf, comps.len() as u32);
            for &c in comps {
                put_f64(buf, c);
            }
            put_bool(buf, *has_nan);
            put_bool(buf, *pos_inf);
            put_bool(buf, *neg_inf);
            put_u64(buf, *count);
        }
        PartialAggState::Min(v) => {
            buf.push(AGG_MIN);
            put_opt_value(buf, v);
        }
        PartialAggState::Max(v) => {
            buf.push(AGG_MAX);
            put_opt_value(buf, v);
        }
        PartialAggState::Var {
            count,
            mean,
            m2,
            stddev,
        } => {
            buf.push(AGG_VAR);
            put_u64(buf, *count);
            put_f64(buf, *mean);
            put_f64(buf, *m2);
            put_bool(buf, *stddev);
        }
    }
}

fn read_agg_state(r: &mut Reader<'_>) -> Result<PartialAggState, Error> {
    Ok(match r.u8()? {
        AGG_COUNT => PartialAggState::Count(r.u64()?),
        AGG_SUM => {
            let n = r.u32()? as usize;
            let mut comps = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                comps.push(read_f64(r)?);
            }
            PartialAggState::Sum {
                comps,
                has_nan: read_bool(r)?,
                pos_inf: read_bool(r)?,
                neg_inf: read_bool(r)?,
                count: r.u64()?,
                all_int: read_bool(r)?,
            }
        }
        AGG_AVG => {
            let n = r.u32()? as usize;
            let mut comps = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                comps.push(read_f64(r)?);
            }
            PartialAggState::Avg {
                comps,
                has_nan: read_bool(r)?,
                pos_inf: read_bool(r)?,
                neg_inf: read_bool(r)?,
                count: r.u64()?,
            }
        }
        AGG_MIN => PartialAggState::Min(read_opt_value(r)?),
        AGG_MAX => PartialAggState::Max(read_opt_value(r)?),
        AGG_VAR => PartialAggState::Var {
            count: r.u64()?,
            mean: read_f64(r)?,
            m2: read_f64(r)?,
            stddev: read_bool(r)?,
        },
        _ => return Err(malformed("aggregate state tag")),
    })
}

fn put_partial_result(buf: &mut Vec<u8>, p: &PartialAggResult) {
    put_u32(buf, p.groups.len() as u32);
    for (key, states) in &p.groups {
        put_u32(buf, key.len() as u32);
        for v in key {
            put_value(buf, v);
        }
        put_u32(buf, states.len() as u32);
        for s in states {
            put_agg_state(buf, s);
        }
    }
}

fn read_partial_result(r: &mut Reader<'_>) -> Result<PartialAggResult, Error> {
    let ngroups = r.u32()? as usize;
    let mut groups = Vec::with_capacity(ngroups.min(r.remaining()));
    for _ in 0..ngroups {
        let nkey = r.u32()? as usize;
        let mut key = Vec::with_capacity(nkey.min(r.remaining()));
        for _ in 0..nkey {
            key.push(read_value(r)?);
        }
        let nstates = r.u32()? as usize;
        let mut states = Vec::with_capacity(nstates.min(r.remaining()));
        for _ in 0..nstates {
            states.push(read_agg_state(r)?);
        }
        groups.push((key, states));
    }
    Ok(PartialAggResult { groups })
}

fn put_limits(buf: &mut Vec<u8>, l: &Limits) {
    put_u64(buf, l.max_terms as u64);
    put_u64(buf, l.max_depth as u64);
    put_u64(buf, l.max_columns as u64);
    put_u64(buf, l.max_tables as u64);
}

fn read_limits(r: &mut Reader<'_>) -> Result<Limits, Error> {
    Ok(Limits {
        max_terms: read_usize(r)?,
        max_depth: read_usize(r)?,
        max_columns: read_usize(r)?,
        max_tables: read_usize(r)?,
    })
}

fn datatype_tag(t: sqlengine::DataType) -> u8 {
    match t {
        sqlengine::DataType::BigInt => 0,
        sqlengine::DataType::Double => 1,
        sqlengine::DataType::Varchar => 2,
    }
}

fn read_datatype(r: &mut Reader<'_>) -> Result<sqlengine::DataType, Error> {
    Ok(match r.u8()? {
        0 => sqlengine::DataType::BigInt,
        1 => sqlengine::DataType::Double,
        2 => sqlengine::DataType::Varchar,
        _ => return Err(malformed("data type tag")),
    })
}

fn put_catalog(buf: &mut Vec<u8>, cat: &SymbolicCatalog) {
    // Deterministic order keeps encodings reproducible (and testable).
    let mut tables: Vec<(&str, &Schema)> = cat.tables().collect();
    tables.sort_by_key(|(n, _)| n.to_string());
    put_u32(buf, tables.len() as u32);
    for (name, schema) in tables {
        put_str(buf, name);
        put_u32(buf, schema.columns().len() as u32);
        for c in schema.columns() {
            put_str(buf, &c.name);
            buf.push(datatype_tag(c.ty));
        }
        put_u32(buf, schema.primary_key().len() as u32);
        for &i in schema.primary_key() {
            put_u32(buf, i as u32);
        }
    }
}

fn read_catalog(r: &mut Reader<'_>) -> Result<SymbolicCatalog, Error> {
    let ntables = r.u32()? as usize;
    let mut cat = SymbolicCatalog::new();
    for _ in 0..ntables {
        let name = r.str()?;
        let ncols = r.u32()? as usize;
        let mut cols = Vec::with_capacity(ncols.min(r.remaining()));
        for _ in 0..ncols {
            let cname = r.str()?;
            let ty = read_datatype(r)?;
            cols.push(Column::new(cname, ty));
        }
        let npk = r.u32()? as usize;
        let mut pk_names = Vec::with_capacity(npk.min(r.remaining()));
        for _ in 0..npk {
            let idx = r.u32()? as usize;
            let col = cols.get(idx).ok_or_else(|| malformed("pk index"))?;
            pk_names.push(col.name.clone());
        }
        let pk_refs: Vec<&str> = pk_names.iter().map(String::as_str).collect();
        let schema =
            Schema::new(cols, &pk_refs).map_err(|_| malformed("schema in catalog snapshot"))?;
        cat.insert(&name, schema);
    }
    Ok(cat)
}

fn kind_tag(k: Option<StatementKind>) -> u8 {
    match k {
        None => 0,
        Some(StatementKind::CreateTable) => 1,
        Some(StatementKind::DropTable) => 2,
        Some(StatementKind::Insert) => 3,
        Some(StatementKind::Update) => 4,
        Some(StatementKind::Delete) => 5,
        Some(StatementKind::Select) => 6,
        Some(StatementKind::Explain) => 7,
    }
}

fn read_kind(r: &mut Reader<'_>) -> Result<Option<StatementKind>, Error> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(StatementKind::CreateTable),
        2 => Some(StatementKind::DropTable),
        3 => Some(StatementKind::Insert),
        4 => Some(StatementKind::Update),
        5 => Some(StatementKind::Delete),
        6 => Some(StatementKind::Select),
        7 => Some(StatementKind::Explain),
        _ => return Err(malformed("statement kind tag")),
    })
}

fn put_metrics_entry(buf: &mut Vec<u8>, m: &ExecMetrics) {
    buf.push(kind_tag(m.kind));
    put_u32(buf, m.scans.len() as u32);
    for s in &m.scans {
        put_str(buf, &s.table);
        put_u64(buf, s.rows as u64);
        put_bool(buf, s.build);
    }
    put_u64(buf, m.rows_produced as u64);
    put_u64(buf, m.rows_inserted as u64);
    put_u64(buf, m.rows_updated as u64);
    put_u64(buf, m.rows_deleted as u64);
    put_u64(buf, m.join_build_rows);
    put_u64(buf, m.join_probe_rows);
    put_u64(buf, m.groups as u64);
    put_u64(buf, m.expr_evals);
    put_u64(buf, m.peak_mem_bytes);
    put_u64(buf, m.plan_time.as_nanos() as u64);
    put_u64(buf, m.elapsed.as_nanos() as u64);
}

fn read_metrics_entry(r: &mut Reader<'_>) -> Result<ExecMetrics, Error> {
    let kind = read_kind(r)?;
    let nscans = r.u32()? as usize;
    let mut scans = Vec::with_capacity(nscans.min(r.remaining()));
    for _ in 0..nscans {
        scans.push(ScanMetric {
            table: r.str()?,
            rows: read_usize(r)?,
            build: read_bool(r)?,
        });
    }
    Ok(ExecMetrics {
        kind,
        scans,
        rows_produced: read_usize(r)?,
        rows_inserted: read_usize(r)?,
        rows_updated: read_usize(r)?,
        rows_deleted: read_usize(r)?,
        join_build_rows: r.u64()?,
        join_probe_rows: r.u64()?,
        groups: read_usize(r)?,
        expr_evals: r.u64()?,
        peak_mem_bytes: r.u64()?,
        plan_time: Duration::from_nanos(r.u64()?),
        elapsed: Duration::from_nanos(r.u64()?),
    })
}

// ---------------------------------------------------------------------
// top-level encode/decode

impl Request {
    /// Serialize to a frame payload (opcode byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello {
                version,
                auth_token,
                namespace,
                resume_token,
            } => {
                buf.push(OP_HELLO);
                put_u32(&mut buf, *version);
                put_str(&mut buf, auth_token);
                put_str(&mut buf, namespace);
                put_str(&mut buf, resume_token);
            }
            Request::Query { meta, sql } => {
                buf.push(OP_QUERY);
                put_meta(&mut buf, meta);
                put_str(&mut buf, sql);
            }
            Request::ExecutePartial { meta, sql } => {
                buf.push(OP_EXECUTE_PARTIAL);
                put_meta(&mut buf, meta);
                put_str(&mut buf, sql);
            }
            Request::Prepare { statements } => {
                buf.push(OP_PREPARE);
                put_u32(&mut buf, statements.len() as u32);
                for s in statements {
                    put_str(&mut buf, s);
                }
            }
            Request::ExecutePrepared { meta, id } => {
                buf.push(OP_EXECUTE_PREPARED);
                put_meta(&mut buf, meta);
                put_u64(&mut buf, *id);
            }
            Request::ClearPrepared => buf.push(OP_CLEAR_PREPARED),
            Request::BulkInsert { meta, table, rows } => {
                buf.push(OP_BULK_INSERT);
                put_meta(&mut buf, meta);
                put_str(&mut buf, table);
                put_rows(&mut buf, rows);
            }
            Request::TableRows { table } => {
                buf.push(OP_TABLE_ROWS);
                put_str(&mut buf, table);
            }
            Request::HasTable { table } => {
                buf.push(OP_HAS_TABLE);
                put_str(&mut buf, table);
            }
            Request::CatalogSnapshot => buf.push(OP_CATALOG_SNAPSHOT),
            Request::SetMetrics { on } => {
                buf.push(OP_SET_METRICS);
                put_bool(&mut buf, *on);
            }
            Request::MetricsLen => buf.push(OP_METRICS_LEN),
            Request::MetricsSince { from } => {
                buf.push(OP_METRICS_SINCE);
                put_u64(&mut buf, *from);
            }
            Request::NoteRetry => buf.push(OP_NOTE_RETRY),
            Request::Cancel { session } => {
                buf.push(OP_CANCEL);
                put_u64(&mut buf, *session);
            }
            Request::Goodbye => buf.push(OP_GOODBYE),
        }
        buf
    }

    /// Parse a frame payload; rejects trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, Error> {
        let mut r = Reader::new(payload, "wire request");
        let req = match r.u8()? {
            OP_HELLO => Request::Hello {
                version: r.u32()?,
                auth_token: r.str()?,
                namespace: r.str()?,
                resume_token: r.str()?,
            },
            OP_QUERY => Request::Query {
                meta: read_meta(&mut r)?,
                sql: r.str()?,
            },
            OP_EXECUTE_PARTIAL => Request::ExecutePartial {
                meta: read_meta(&mut r)?,
                sql: r.str()?,
            },
            OP_PREPARE => {
                let n = r.u32()? as usize;
                let mut statements = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    statements.push(r.str()?);
                }
                Request::Prepare { statements }
            }
            OP_EXECUTE_PREPARED => Request::ExecutePrepared {
                meta: read_meta(&mut r)?,
                id: r.u64()?,
            },
            OP_CLEAR_PREPARED => Request::ClearPrepared,
            OP_BULK_INSERT => Request::BulkInsert {
                meta: read_meta(&mut r)?,
                table: r.str()?,
                rows: read_rows(&mut r)?,
            },
            OP_TABLE_ROWS => Request::TableRows { table: r.str()? },
            OP_HAS_TABLE => Request::HasTable { table: r.str()? },
            OP_CATALOG_SNAPSHOT => Request::CatalogSnapshot,
            OP_SET_METRICS => Request::SetMetrics {
                on: read_bool(&mut r)?,
            },
            OP_METRICS_LEN => Request::MetricsLen,
            OP_METRICS_SINCE => Request::MetricsSince { from: r.u64()? },
            OP_NOTE_RETRY => Request::NoteRetry,
            OP_CANCEL => Request::Cancel { session: r.u64()? },
            OP_GOODBYE => Request::Goodbye,
            _ => return Err(malformed("request opcode")),
        };
        if r.remaining() != 0 {
            return Err(malformed("request (trailing bytes)"));
        }
        Ok(req)
    }
}

impl Response {
    /// Serialize to a frame payload (opcode byte + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::HelloAck {
                version,
                session,
                max_statement_len,
                limits,
                description,
                resume_token,
            } => {
                buf.push(OP_HELLO_ACK);
                put_u32(&mut buf, *version);
                put_u64(&mut buf, *session);
                put_u64(&mut buf, *max_statement_len);
                put_limits(&mut buf, limits);
                put_str(&mut buf, description);
                put_str(&mut buf, resume_token);
            }
            Response::Ok => buf.push(OP_OK),
            Response::Bool(b) => {
                buf.push(OP_BOOL);
                put_bool(&mut buf, *b);
            }
            Response::Count(n) => {
                buf.push(OP_COUNT);
                put_u64(&mut buf, *n);
            }
            Response::Rows(q) => {
                buf.push(OP_ROWS);
                put_query_result(&mut buf, q);
            }
            Response::Err(e) => {
                buf.push(OP_ERR);
                put_error(&mut buf, e);
            }
            Response::PreparedIds(ids) => {
                buf.push(OP_PREPARED_IDS);
                put_u32(&mut buf, ids.len() as u32);
                for id in ids {
                    put_u64(&mut buf, *id);
                }
            }
            Response::PrepareErr { index, error } => {
                buf.push(OP_PREPARE_ERR);
                put_u64(&mut buf, *index);
                put_error(&mut buf, error);
            }
            Response::Catalog(cat) => {
                buf.push(OP_CATALOG);
                put_catalog(&mut buf, cat);
            }
            Response::Metrics(entries) => {
                buf.push(OP_METRICS);
                put_u32(&mut buf, entries.len() as u32);
                for m in entries {
                    put_metrics_entry(&mut buf, m);
                }
            }
            Response::Partial(p) => {
                buf.push(OP_PARTIAL);
                put_partial_result(&mut buf, p);
            }
            Response::ReplayApplied => buf.push(OP_REPLAY_APPLIED),
        }
        buf
    }

    /// Parse a frame payload; rejects trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Response, Error> {
        let mut r = Reader::new(payload, "wire response");
        let resp = match r.u8()? {
            OP_HELLO_ACK => Response::HelloAck {
                version: r.u32()?,
                session: r.u64()?,
                max_statement_len: r.u64()?,
                limits: read_limits(&mut r)?,
                description: r.str()?,
                resume_token: r.str()?,
            },
            OP_OK => Response::Ok,
            OP_BOOL => Response::Bool(read_bool(&mut r)?),
            OP_COUNT => Response::Count(r.u64()?),
            OP_ROWS => Response::Rows(read_query_result(&mut r)?),
            OP_ERR => Response::Err(read_error(&mut r)?),
            OP_PREPARED_IDS => {
                let n = r.u32()? as usize;
                let mut ids = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    ids.push(r.u64()?);
                }
                Response::PreparedIds(ids)
            }
            OP_PREPARE_ERR => Response::PrepareErr {
                index: r.u64()?,
                error: read_error(&mut r)?,
            },
            OP_CATALOG => Response::Catalog(read_catalog(&mut r)?),
            OP_METRICS => {
                let n = r.u32()? as usize;
                let mut entries = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    entries.push(read_metrics_entry(&mut r)?);
                }
                Response::Metrics(entries)
            }
            OP_PARTIAL => Response::Partial(read_partial_result(&mut r)?),
            OP_REPLAY_APPLIED => Response::ReplayApplied,
            _ => return Err(malformed("response opcode")),
        };
        if r.remaining() != 0 {
            return Err(malformed("response (trailing bytes)"));
        }
        Ok(resp)
    }
}

/// Responses don't implement `PartialEq` for `Catalog` comparison via
/// schema identity alone, so tests compare re-encodings; this helper
/// exposes that as a first-class equivalence.
pub fn same_encoding(a: &Response, b: &Response) -> bool {
    a.encode() == b.encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
    }

    fn roundtrip_resp(resp: Response) {
        let back = Response::decode(&resp.encode()).unwrap();
        assert!(same_encoding(&back, &resp), "{resp:?} vs {back:?}");
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
            auth_token: "sekrit".into(),
            namespace: "run1_".into(),
            resume_token: "tok-42".into(),
        });
        roundtrip_req(Request::Query {
            meta: StmtMeta {
                seq: 3,
                deadline_ms: 1500,
            },
            sql: "SELECT 1".into(),
        });
        roundtrip_req(Request::Prepare {
            statements: vec!["DELETE FROM c".into(), "INSERT INTO c VALUES (1)".into()],
        });
        roundtrip_req(Request::ExecutePrepared {
            meta: StmtMeta::seq(8),
            id: 7,
        });
        roundtrip_req(Request::ClearPrepared);
        roundtrip_req(Request::BulkInsert {
            meta: StmtMeta::seq(9),
            table: "z".into(),
            rows: vec![
                vec![Value::Int(1), Value::Double(0.5), Value::Null],
                vec![
                    Value::Int(2),
                    Value::Double(f64::NEG_INFINITY),
                    Value::Str("x".into()),
                ],
            ],
        });
        roundtrip_req(Request::TableRows { table: "y".into() });
        roundtrip_req(Request::HasTable { table: "w".into() });
        roundtrip_req(Request::CatalogSnapshot);
        roundtrip_req(Request::SetMetrics { on: true });
        roundtrip_req(Request::MetricsLen);
        roundtrip_req(Request::MetricsSince { from: 42 });
        roundtrip_req(Request::NoteRetry);
        roundtrip_req(Request::Cancel { session: 3 });
        roundtrip_req(Request::Goodbye);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::HelloAck {
            version: 2,
            session: 9,
            max_statement_len: 1 << 20,
            limits: Limits::default(),
            description: "sqlem-server".into(),
            resume_token: "tok-9".into(),
        });
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::ReplayApplied);
        roundtrip_resp(Response::Bool(true));
        roundtrip_resp(Response::Count(12345));
        roundtrip_resp(Response::Rows(QueryResult {
            columns: vec!["llh".into()],
            rows: vec![vec![Value::Double(-1234.5678901234567)].into_boxed_slice()],
            rows_affected: 1,
        }));
        roundtrip_resp(Response::PreparedIds(vec![0, 1, 2]));
        roundtrip_resp(Response::Metrics(vec![ExecMetrics {
            kind: Some(StatementKind::Update),
            scans: vec![ScanMetric {
                table: "yd".into(),
                rows: 1000,
                build: true,
            }],
            rows_produced: 0,
            rows_inserted: 0,
            rows_updated: 1000,
            rows_deleted: 0,
            join_build_rows: 8,
            join_probe_rows: 1000,
            groups: 0,
            expr_evals: 4000,
            peak_mem_bytes: 65536,
            plan_time: Duration::from_micros(120),
            elapsed: Duration::from_millis(3),
        }]));
    }

    #[test]
    fn error_relay_preserves_structure_where_it_matters() {
        // StatementTooLong must survive for §3.3 purpose attribution.
        let e = roundtrip_err(Error::StatementTooLong { len: 99, max: 10 });
        assert!(matches!(e, Error::StatementTooLong { len: 99, max: 10 }));
        // Arithmetic must survive for degenerate-cluster recovery.
        let e = roundtrip_err(Error::Arithmetic("division by zero".into()));
        assert!(matches!(e, Error::Arithmetic(_)));
        // Injected transients must stay transient for the retry policy.
        let e = roundtrip_err(Error::Injected {
            transient: true,
            applied: false,
            statement: 4,
        });
        assert!(e.is_transient());
        // Deadline overruns must survive typed (transient, actionable).
        let e = roundtrip_err(Error::deadline("lock wait", 250));
        assert!(matches!(e, Error::Deadline { budget_ms: 250, .. }));
        assert!(e.is_transient());
        // Memory-governor rejections must survive typed and transient
        // so the remote driver's degradation ladder can react.
        let e = roundtrip_err(Error::resource_exhausted("join build", 2048, 1024));
        match &e {
            Error::ResourceExhausted {
                used_bytes: 2048,
                budget_bytes: 1024,
                context,
            } => assert_eq!(context, "join build"),
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        assert!(e.is_transient());
        // Everything else flattens to Remote with the rendered text.
        let e = roundtrip_err(Error::UnknownTable("nope".into()));
        match &e {
            Error::Remote(m) => assert!(m.contains("nope"), "{m}"),
            other => panic!("expected Remote, got {other:?}"),
        }
        assert!(!e.is_transient());
        // Relaying a relay must not stack prefixes.
        let twice = roundtrip_err(e);
        match twice {
            Error::Remote(m) => assert_eq!(m.matches("server error").count(), 0, "{m}"),
            other => panic!("expected Remote, got {other:?}"),
        }
    }

    fn roundtrip_err(e: Error) -> Error {
        match Response::decode(&Response::Err(e).encode()).unwrap() {
            Response::Err(e) => e,
            other => panic!("expected Err, got {other:?}"),
        }
    }

    #[test]
    fn catalog_roundtrips_schemas() {
        use sqlengine::DataType;
        let mut cat = SymbolicCatalog::new();
        cat.insert(
            "z",
            Schema::new(
                vec![
                    Column::new("rid", DataType::BigInt),
                    Column::new("y1", DataType::Double),
                ],
                &["rid"],
            )
            .unwrap(),
        );
        cat.insert(
            "names",
            Schema::new(vec![Column::new("s", DataType::Varchar)], &[]).unwrap(),
        );
        let resp = Response::Catalog(cat);
        let back = Response::decode(&resp.encode()).unwrap();
        let Response::Catalog(cat2) = &back else {
            panic!("expected Catalog");
        };
        assert!(cat2.contains("z"));
        assert!(cat2.contains("names"));
        assert!(same_encoding(&resp, &back));
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let full = Request::BulkInsert {
            meta: StmtMeta::seq(5),
            table: "z".into(),
            rows: vec![vec![Value::Int(1), Value::Str("abc".into())]],
        }
        .encode();
        for cut in 0..full.len() {
            assert!(
                Request::decode(&full[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn partial_aggregates_roundtrip_bit_exact() {
        roundtrip_req(Request::ExecutePartial {
            meta: StmtMeta {
                seq: 11,
                deadline_ms: 2500,
            },
            sql: "SELECT j, SUM(w) FROM gmm GROUP BY j".into(),
        });
        // One group per accumulator kind, with awkward doubles: a
        // two-component expansion, a negative zero, infinities, NaN
        // flags — everything must survive as raw bits.
        let partial = PartialAggResult {
            groups: vec![
                (
                    vec![Value::Int(3), Value::Str("a".into())],
                    vec![
                        PartialAggState::Count(7),
                        PartialAggState::Sum {
                            comps: vec![4.9e-324, -0.0, 1e300],
                            has_nan: false,
                            pos_inf: true,
                            neg_inf: false,
                            count: 7,
                            all_int: false,
                        },
                    ],
                ),
                (
                    vec![Value::Null],
                    vec![
                        PartialAggState::Avg {
                            comps: vec![0.1, 1e-17],
                            has_nan: true,
                            pos_inf: false,
                            neg_inf: true,
                            count: 2,
                        },
                        PartialAggState::Min(Some(Value::Double(-1.5))),
                        PartialAggState::Max(None),
                        PartialAggState::Var {
                            count: 5,
                            mean: 2.5,
                            m2: 0.125,
                            stddev: true,
                        },
                    ],
                ),
            ],
        };
        let resp = Response::Partial(partial.clone());
        let back = Response::decode(&resp.encode()).unwrap();
        let Response::Partial(p2) = back else {
            panic!("expected Partial");
        };
        // PartialEq is not enough for -0.0 vs 0.0; compare encodings too.
        assert_eq!(p2, partial);
        assert!(same_encoding(&resp, &Response::Partial(p2)));
    }

    #[test]
    fn truncated_partial_payloads_are_rejected() {
        let full = Response::Partial(PartialAggResult {
            groups: vec![(
                vec![Value::Int(1)],
                vec![PartialAggState::Sum {
                    comps: vec![1.0, 1e-30],
                    has_nan: false,
                    pos_inf: false,
                    neg_inf: false,
                    count: 2,
                    all_int: false,
                }],
            )],
        })
        .encode();
        for cut in 0..full.len() {
            assert!(
                Response::decode(&full[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Request::Goodbye.encode();
        buf.push(0);
        assert!(Request::decode(&buf).is_err());
        let mut buf = Response::Ok.encode();
        buf.push(0);
        assert!(Response::decode(&buf).is_err());
    }
}

//! The concurrent SQL server: a TCP accept loop wrapping one
//! [`SharedDatabase`].
//!
//! This is the "DBMS side" of the paper's two-tier deployment (§1.4):
//! SQLEM's client generates SQL on a workstation and submits it over
//! the network; all heavy lifting happens where the data lives. Each
//! accepted connection becomes one *session* on its own thread:
//!
//! 1. **Admission** — the accept loop reserves a session slot with a
//!    capped atomic update *before* spawning the session thread, so
//!    live sessions can never exceed [`ServerConfig::max_connections`],
//!    even momentarily. An over-capacity connection is *shed*: its
//!    handshake is answered with a transient error carrying a
//!    retry-after hint ([`ServerConfig::shed_retry_after`]) and the
//!    connection is closed (backpressure: a client retry policy will
//!    wait and reconnect). Shed connections are counted
//!    ([`ServerHandle::shed_count`]).
//! 2. **Handshake** — the client's [`Request::Hello`] carries the
//!    protocol version, a shared-secret token and the work-table
//!    namespace it wants, plus an optional *resume token* from an
//!    earlier session. Version and token mismatches are rejected
//!    *permanently*; a namespace another live session owns is rejected
//!    transiently (it frees on that session's disconnect). A known
//!    resume token reattaches the client to its namespace and its
//!    exactly-once dedup window — cancelling any zombie session still
//!    holding the token.
//! 3. **Statements** — executed under the shared database lock with a
//!    bounded wait ([`ServerConfig::lock_timeout`]): a session that
//!    cannot get the lock in time gets a transient statement-timeout
//!    error instead of wedging behind a long-running peer forever.
//!    Statement-bearing requests carry a [`StmtMeta`] idempotency key;
//!    the server deduplicates replays through a per-token
//!    [`ReplyCache`], and — when the database is durable — journals
//!    intent/outcome records to a sidecar session log so dedup
//!    survives `kill -9` (see [`crate::session`]). Requests may also
//!    carry a deadline budget, enforced against both the lock wait and
//!    the execution path and surfaced as the typed, transient
//!    [`sqlengine::Error::Deadline`].
//! 4. **Idle timeout** — a session that sends nothing for
//!    [`ServerConfig::idle_timeout`] is closed and its namespace freed.
//! 5. **Teardown** — orderly ([`Request::Goodbye`]) or not, the session
//!    unregisters its prepared statements and releases its namespace.
//!    An orderly goodbye also retires the resume token; a torn
//!    connection keeps it alive for reattach.
//!
//! Shutdown ([`ServerHandle::shutdown`]) stops accepting and *drains*:
//! live sessions keep working until they disconnect or the drain
//! timeout passes. Composability with the durability layer is free —
//! hand [`Server::bind`] a `SharedDatabase` whose inner database was
//! opened with [`Database::open_durable`](sqlengine::Database::open_durable)
//! and every mutation is WAL-logged exactly as in-process; the session
//! log is created next to the WAL automatically.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sqlengine::{Database, Error, MemoryBudget, Result, SharedDatabase, SqlExecutor, WalRecovery};

use crate::frame::{read_frame, write_frame};
use crate::proto::{Request, Response, StmtMeta, PROTOCOL_VERSION};
use crate::session::{format_token, token_ordinal, Admit, ReplyCache, SessionLog};

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrent sessions; further handshakes are rejected
    /// with a transient error (admission control / backpressure).
    pub max_connections: usize,
    /// Shared-secret token clients must present (empty = open server).
    pub auth_token: String,
    /// Close a session that sends nothing for this long.
    pub idle_timeout: Duration,
    /// Bounded wait for the database lock per statement; beyond it the
    /// statement fails with a transient timeout error.
    pub lock_timeout: Duration,
    /// How long [`ServerHandle::shutdown`] waits for live sessions to
    /// finish before the accept loop returns anyway.
    pub drain_timeout: Duration,
    /// Chaos hook: drop the nth accepted connection (1-based) on the
    /// floor without a single response byte — deterministic
    /// connection-failure injection for retry tests.
    pub drop_nth_connection: Option<u64>,
    /// Global working-memory budget in bytes, shared by every session:
    /// an allocating statement that would push the server past this
    /// fails with the typed transient
    /// [`sqlengine::Error::ResourceExhausted`]. `None` = unbounded.
    pub memory_budget: Option<u64>,
    /// Per-session working-memory budget in bytes, chained under the
    /// global one when both are set
    /// ([`sqlengine::MemoryBudget::child_of`]): one greedy session hits
    /// its own ceiling before it can starve the shared pool. `None` =
    /// only the global budget (if any) applies.
    pub session_memory_budget: Option<u64>,
    /// Retry-after hint carried in the backpressure error a shed
    /// (over-capacity) connection receives.
    pub shed_retry_after: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 32,
            auth_token: String::new(),
            idle_timeout: Duration::from_secs(300),
            lock_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            drop_nth_connection: None,
            memory_budget: None,
            session_memory_budget: None,
            shed_retry_after: Duration::from_millis(100),
        }
    }
}

/// One live session's registry entry.
struct SessionEntry {
    /// Namespace the session claimed exclusively ("" = none).
    namespace: String,
    /// The session's resume token (used for zombie takeover).
    token: String,
    /// Set by [`Request::Cancel`]; the session fails its next request.
    cancelled: Arc<AtomicBool>,
}

/// Exactly-once state for one resume token. Lives in the dedup
/// registry, which outlives individual connections: a reconnect
/// presenting the token reattaches to this entry.
struct DedupEntry {
    /// Namespace the token is bound to.
    namespace: String,
    /// Sequence window + cached replies + applied watermark.
    cache: ReplyCache,
}

/// State shared between the accept loop, session threads and handles.
struct ServerState {
    shutdown: AtomicBool,
    active: AtomicUsize,
    accepted: AtomicU64,
    /// Connections shed at admission (over capacity).
    shed: AtomicU64,
    /// Global memory budget every session budget chains under.
    global_budget: Option<MemoryBudget>,
    next_session: AtomicU64,
    next_token: AtomicU64,
    sessions: Mutex<HashMap<u64, SessionEntry>>,
    /// Resume-token → dedup window. All access to the session log is
    /// serialized under this lock (lock order: dedup → db → log).
    dedup: Mutex<HashMap<String, DedupEntry>>,
    /// Durable sidecar journal; `None` for in-memory databases.
    session_log: Option<Mutex<SessionLog>>,
}

/// Control handle for a running [`Server`] (cloneable across threads).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Stop accepting connections and let the accept loop drain.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Number of currently live sessions.
    pub fn active_sessions(&self) -> usize {
        self.state.active.load(Ordering::SeqCst)
    }

    /// Connections shed at admission so far (load-shedding telemetry;
    /// the overload bench reports this next to throughput).
    pub fn shed_count(&self) -> u64 {
        self.state.shed.load(Ordering::SeqCst)
    }

    /// Peak bytes charged against the global memory budget, if one is
    /// configured ([`ServerConfig::memory_budget`]).
    pub fn peak_memory_bytes(&self) -> Option<u64> {
        self.state.global_budget.as_ref().map(MemoryBudget::peak)
    }

    /// Number of resume tokens with live dedup state (tests).
    pub fn live_tokens(&self) -> usize {
        self.state
            .dedup
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }
}

/// A bound, not-yet-running server. Call [`Server::run`] to serve.
pub struct Server {
    listener: TcpListener,
    db: SharedDatabase,
    config: ServerConfig,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// For a durable database this opens (or creates) the session log
    /// next to the WAL and rebuilds the exactly-once dedup state of
    /// every session the previous incarnation left behind, correlating
    /// unresolved intents with what WAL recovery found.
    pub fn bind(addr: &str, db: SharedDatabase, config: ServerConfig) -> Result<Server> {
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::net_permanent("bind", e.to_string()))?;
        let durable: Option<(std::path::PathBuf, WalRecovery)> =
            db.with(|d| match (d.data_dir(), d.wal_recovery_info()) {
                (Some(dir), Some(rec)) => Some((dir.to_path_buf(), rec.clone())),
                _ => None,
            });
        let mut dedup = HashMap::new();
        let mut max_token = 0u64;
        let session_log = match durable {
            Some((dir, recovery)) => {
                let (log, recovered, max_id) = SessionLog::open(&dir, &recovery)?;
                max_token = max_id;
                for (token, s) in recovered {
                    dedup.insert(
                        token,
                        DedupEntry {
                            namespace: s.namespace,
                            cache: ReplyCache::recovered(
                                crate::session::DEFAULT_REPLY_WINDOW,
                                s.applied,
                                s.max_intent,
                            ),
                        },
                    );
                }
                Some(Mutex::new(log))
            }
            None => None,
        };
        let global_budget = config.memory_budget.map(MemoryBudget::new);
        Ok(Server {
            listener,
            db,
            config,
            state: Arc::new(ServerState {
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                accepted: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                global_budget,
                next_session: AtomicU64::new(1),
                next_token: AtomicU64::new(max_token + 1),
                sessions: Mutex::new(HashMap::new()),
                dedup: Mutex::new(dedup),
                session_log,
            }),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| Error::net_permanent("local_addr", e.to_string()))
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serve until [`ServerHandle::shutdown`], then drain and return.
    pub fn run(self) -> Result<()> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| Error::net_permanent("set_nonblocking", e.to_string()))?;
        while !self.state.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let n = self.state.accepted.fetch_add(1, Ordering::SeqCst) + 1;
                    if self.config.drop_nth_connection == Some(n) {
                        drop(stream); // chaos: simulate a mid-dial crash
                        continue;
                    }
                    let db = self.db.clone();
                    let config = self.config.clone();
                    let state = Arc::clone(&self.state);
                    // Admission: reserve a session slot with a capped
                    // compare-and-swap *before* spawning, so `active`
                    // can never exceed `max_connections`, even
                    // transiently. (It used to be bumped optimistically
                    // and checked later, so a burst of dials overshot
                    // the cap for the length of a handshake.)
                    let admitted = state
                        .active
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |live| {
                            (live < config.max_connections).then_some(live + 1)
                        })
                        .is_ok();
                    if !admitted {
                        state.shed.fetch_add(1, Ordering::SeqCst);
                        std::thread::spawn(move || shed_session(stream, &config));
                        continue;
                    }
                    std::thread::spawn(move || {
                        // The session outcome is reported to the peer over
                        // the wire; a torn connection has nowhere to report.
                        let _ = serve_session(stream, &db, &config, &state);
                        state.active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(Error::net_permanent("accept", e.to_string())),
            }
        }
        // Drain: no new sessions; wait for the live ones.
        let deadline = std::time::Instant::now() + self.config.drain_timeout;
        while self.state.active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

/// Shed one over-capacity connection: read its Hello (so the reply is
/// a well-formed answer to a well-formed question), respond with a
/// transient backpressure error carrying the retry-after hint, close.
/// The shed path never touches the database or the session registry.
fn shed_session(mut stream: TcpStream, config: &ServerConfig) {
    let _ = stream.set_nodelay(true);
    // A shed connection must not occupy the shedding thread for long;
    // the retry-after hint doubles as the read patience.
    let _ = stream.set_read_timeout(Some(config.shed_retry_after.max(Duration::from_millis(10))));
    if read_frame(&mut stream).is_err() {
        return;
    }
    let e = Error::net_transient(
        "handshake",
        format!(
            "server at capacity ({} sessions); retry after {} ms",
            config.max_connections,
            config.shed_retry_after.as_millis()
        ),
    );
    let _ = write_frame(&mut stream, &Response::Err(e).encode());
}

/// Receive the handshake, register the session, then serve requests
/// until goodbye / disconnect / idle timeout / cancellation.
fn serve_session(
    mut stream: TcpStream,
    db: &SharedDatabase,
    config: &ServerConfig,
    state: &ServerState,
) -> Result<()> {
    stream
        .set_nodelay(true)
        .map_err(|e| Error::net_permanent("set_nodelay", e.to_string()))?;
    stream
        .set_read_timeout(Some(config.idle_timeout))
        .map_err(|e| Error::net_permanent("set_read_timeout", e.to_string()))?;

    // ---- handshake -------------------------------------------------
    let hello = Request::decode(&read_frame(&mut stream)?)?;
    let Request::Hello {
        version,
        auth_token,
        namespace,
        resume_token,
    } = hello
    else {
        let e = Error::net_permanent("handshake", "first message must be Hello");
        let _ = write_frame(&mut stream, &Response::Err(e.clone()).encode());
        return Err(e);
    };
    if version != PROTOCOL_VERSION {
        let e = Error::net_permanent(
            "handshake",
            format!("protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"),
        );
        write_frame(&mut stream, &Response::Err(e.clone()).encode())?;
        return Err(e);
    }
    if auth_token != config.auth_token {
        let e = Error::net_permanent("handshake", "auth token rejected");
        write_frame(&mut stream, &Response::Err(e.clone()).encode())?;
        return Err(e);
    }
    // Admission already happened in the accept loop (a capped slot
    // reservation); a thread running here holds a slot by construction.

    // Resolve the resume token: issue, reattach, or adopt.
    let token = match attach_token(state, &resume_token, &namespace) {
        Ok(t) => t,
        Err(e) => {
            write_frame(&mut stream, &Response::Err(e.clone()).encode())?;
            return Err(e);
        }
    };

    let session_id;
    let cancelled = Arc::new(AtomicBool::new(false));
    {
        let mut sessions = state.sessions.lock().unwrap_or_else(|e| e.into_inner());
        // Zombie takeover: a live session still holding this token is a
        // previous incarnation of *this* client whose wire death the
        // server has not noticed yet. Cancel it and free its slot so
        // the namespace check below does not see our own ghost.
        sessions.retain(|_, s| {
            if s.token == token {
                s.cancelled.store(true, Ordering::SeqCst);
                false
            } else {
                true
            }
        });
        if !namespace.is_empty() && sessions.values().any(|s| s.namespace == namespace) {
            drop(sessions);
            let e = Error::net_transient(
                "handshake",
                format!("namespace {namespace:?} is held by another live session; retry later"),
            );
            write_frame(&mut stream, &Response::Err(e.clone()).encode())?;
            return Err(e);
        }
        session_id = state.next_session.fetch_add(1, Ordering::SeqCst);
        sessions.insert(
            session_id,
            SessionEntry {
                namespace: namespace.clone(),
                token: token.clone(),
                cancelled: Arc::clone(&cancelled),
            },
        );
    }

    let (max_statement_len, limits) = db.with(|d| {
        (
            d.config().max_statement_len as u64,
            d.config().limits.clone(),
        )
    });
    write_frame(
        &mut stream,
        &Response::HelloAck {
            version: PROTOCOL_VERSION,
            session: session_id,
            max_statement_len,
            limits,
            description: format!(
                "sqlem-server v{} ({})",
                env!("CARGO_PKG_VERSION"),
                if db.with(|d| d.is_durable()) {
                    "durable"
                } else {
                    "in-memory"
                }
            ),
            resume_token: token.clone(),
        }
        .encode(),
    )?;

    // ---- request loop ----------------------------------------------
    // This session's working-memory budget: chained under the global
    // pool when both knobs are set, so one greedy session trips its own
    // ceiling before it can starve everyone else's.
    let budget = match (&state.global_budget, config.session_memory_budget) {
        (Some(global), Some(per)) => Some(MemoryBudget::child_of(global, per)),
        (Some(global), None) => Some(global.clone()),
        (None, Some(per)) => Some(MemoryBudget::new(per)),
        (None, None) => None,
    };
    let mut my_prepared: Vec<u64> = Vec::new();
    let result = request_loop(
        &mut stream,
        db,
        config,
        state,
        &token,
        budget.as_ref(),
        &cancelled,
        &mut my_prepared,
    );

    // ---- teardown --------------------------------------------------
    db.with(|d| {
        for id in &my_prepared {
            d.unregister_prepared(*id);
        }
    });
    state
        .sessions
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&session_id);
    if result.is_ok() {
        // Orderly goodbye: retire the token and its dedup window. A
        // torn connection keeps both alive for reattach.
        let mut dedup = state.dedup.lock().unwrap_or_else(|e| e.into_inner());
        if dedup.remove(&token).is_some() {
            if let Some(log) = state.session_log.as_ref() {
                let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
                let _ = log.close_token(&token);
            }
        }
    }
    result
}

/// Resolve the Hello's resume token against the dedup registry:
/// empty → issue a fresh token; known → reattach (namespace must
/// match); unknown → adopt it with a fresh window (a non-durable
/// restart forgot the token — the data is gone too, so a fresh window
/// is exactly right).
fn attach_token(state: &ServerState, resume_token: &str, namespace: &str) -> Result<String> {
    let mut dedup = state.dedup.lock().unwrap_or_else(|e| e.into_inner());
    let token = if resume_token.is_empty() {
        loop {
            let t = format_token(state.next_token.fetch_add(1, Ordering::SeqCst));
            if !dedup.contains_key(&t) {
                break t;
            }
        }
    } else {
        resume_token.to_string()
    };
    match dedup.get(&token) {
        Some(entry) => {
            if entry.namespace != namespace {
                return Err(Error::net_permanent(
                    "handshake",
                    format!(
                        "resume token is bound to namespace {:?}, not {namespace:?}",
                        entry.namespace
                    ),
                ));
            }
        }
        None => {
            if let Some(n) = token_ordinal(&token) {
                // Keep issued ordinals ahead of any adopted token.
                state.next_token.fetch_max(n + 1, Ordering::SeqCst);
            }
            dedup.insert(
                token.clone(),
                DedupEntry {
                    namespace: namespace.to_string(),
                    cache: ReplyCache::default(),
                },
            );
            if let Some(log) = state.session_log.as_ref() {
                let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
                log.open_token(&token, namespace)?;
            }
        }
    }
    Ok(token)
}

#[allow(clippy::too_many_arguments)]
fn request_loop(
    stream: &mut TcpStream,
    db: &SharedDatabase,
    config: &ServerConfig,
    state: &ServerState,
    token: &str,
    budget: Option<&MemoryBudget>,
    cancelled: &AtomicBool,
    my_prepared: &mut Vec<u64>,
) -> Result<()> {
    loop {
        let payload = read_frame(stream)?; // idle timeout closes here
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                write_frame(stream, &Response::Err(e.clone()).encode())?;
                return Err(e);
            }
        };
        if cancelled.load(Ordering::SeqCst) {
            let e = Error::net_permanent("session", "session cancelled by peer request");
            write_frame(stream, &Response::Err(e.clone()).encode())?;
            return Err(e);
        }
        let response = match request {
            Request::Hello { .. } => {
                Response::Err(Error::net_permanent("session", "duplicate Hello"))
            }
            Request::Goodbye => {
                write_frame(stream, &Response::Ok.encode())?;
                return Ok(());
            }
            Request::Cancel { session } => {
                let sessions = state.sessions.lock().unwrap_or_else(|e| e.into_inner());
                match sessions.get(&session) {
                    Some(entry) => {
                        entry.cancelled.store(true, Ordering::SeqCst);
                        Response::Bool(true)
                    }
                    None => Response::Bool(false),
                }
            }
            other => dispatch_db(db, config, state, token, budget, other, my_prepared),
        };
        write_frame(stream, &response.encode())?;
    }
}

/// Execute one database-touching request under the bounded lock wait.
#[allow(clippy::too_many_arguments)]
fn dispatch_db(
    db: &SharedDatabase,
    config: &ServerConfig,
    state: &ServerState,
    token: &str,
    budget: Option<&MemoryBudget>,
    request: Request,
    my_prepared: &mut Vec<u64>,
) -> Response {
    let run = |f: &mut dyn FnMut(&mut Database) -> Response| -> Response {
        match db.with_timeout(config.lock_timeout, |d| f(d)) {
            Some(resp) => resp,
            None => Response::Err(Error::net_transient(
                "execute",
                format!(
                    "statement timeout: database lock not acquired within {:?}",
                    config.lock_timeout
                ),
            )),
        }
    };
    fn reply<T>(r: Result<T>, ok: impl FnOnce(T) -> Response) -> Response {
        match r {
            Ok(v) => ok(v),
            Err(e) => Response::Err(e),
        }
    }
    match request {
        Request::Query { meta, sql } => keyed(db, config, state, token, budget, meta, &mut |d| {
            d.execute(&sql).map(Response::Rows)
        }),
        Request::ExecutePartial { meta, sql } => {
            keyed(db, config, state, token, budget, meta, &mut |d| {
                d.execute_partial(&sql).map(Response::Partial)
            })
        }
        Request::Prepare { statements } => {
            run(&mut |d| match SqlExecutor::prepare_script(d, &statements) {
                Ok(ids) => {
                    my_prepared.extend(ids.iter().map(|i| i.0));
                    Response::PreparedIds(ids.iter().map(|i| i.0).collect())
                }
                Err(e) => Response::PrepareErr {
                    index: e.index as u64,
                    error: e.error,
                },
            })
        }
        Request::ExecutePrepared { meta, id } => {
            if !my_prepared.contains(&id) {
                return Response::Err(Error::net_permanent(
                    "execute prepared",
                    format!("unknown prepared id {id} for this session"),
                ));
            }
            keyed(db, config, state, token, budget, meta, &mut |d| {
                SqlExecutor::run_prepared(d, sqlengine::PreparedId(id)).map(Response::Rows)
            })
        }
        Request::ClearPrepared => run(&mut |d| {
            for id in my_prepared.drain(..) {
                d.unregister_prepared(id);
            }
            Response::Ok
        }),
        Request::BulkInsert { meta, table, rows } => {
            // `keyed` takes an FnMut but calls it at most once; Option
            // lets the rows move into bulk_insert without a clone.
            let mut rows = Some(rows);
            keyed(db, config, state, token, budget, meta, &mut |d| {
                let rows = rows.take().expect("bulk-insert closure runs once");
                d.bulk_insert(&table, rows)
                    .map(|n| Response::Count(n as u64))
            })
        }
        Request::TableRows { table } => {
            run(&mut |d| reply(d.table_len(&table), |n| Response::Count(n as u64)))
        }
        Request::HasTable { table } => run(&mut |d| Response::Bool(d.contains_table(&table))),
        Request::CatalogSnapshot => run(&mut |d| Response::Catalog(d.symbolic_catalog())),
        Request::SetMetrics { on } => run(&mut |d| {
            if on {
                d.enable_metrics();
            } else {
                d.disable_metrics();
            }
            Response::Ok
        }),
        Request::MetricsLen => {
            run(&mut |d| reply(SqlExecutor::metrics_len(d), |n| Response::Count(n as u64)))
        }
        Request::MetricsSince { from } => run(&mut |d| {
            reply(
                SqlExecutor::metrics_since(d, from as usize),
                Response::Metrics,
            )
        }),
        Request::NoteRetry => run(&mut |d| {
            d.note_statement_retry();
            Response::Ok
        }),
        // Handled by the caller.
        Request::Hello { .. } | Request::Goodbye | Request::Cancel { .. } => {
            Response::Err(Error::net_permanent("session", "unreachable request"))
        }
    }
}

/// Rewrite an engine-raised deadline error (which only knows "the
/// budget expired", `budget_ms == 0`) with the budget the client
/// actually sent, so the surfaced error is actionable.
fn rewrite_deadline(e: Error, budget_ms: u64) -> Error {
    match e {
        Error::Deadline {
            context,
            budget_ms: 0,
        } => Error::Deadline { context, budget_ms },
        other => other,
    }
}

/// Execute one idempotency-keyed statement: admit it against the
/// session's dedup window, journal intent/outcome around execution
/// (durable servers), enforce the deadline budget against both lock
/// wait and execution, install the session's memory budget for the
/// statement's duration, and record the reply for future replays.
#[allow(clippy::too_many_arguments)]
fn keyed(
    db: &SharedDatabase,
    config: &ServerConfig,
    state: &ServerState,
    token: &str,
    budget: Option<&MemoryBudget>,
    meta: StmtMeta,
    exec: &mut dyn FnMut(&mut Database) -> Result<Response>,
) -> Response {
    // The dedup registry is held for the whole statement: it serializes
    // replay classification, session-log access and the rewrite pass
    // (lock order: dedup → db → log; the log is always innermost).
    let mut dedup = state.dedup.lock().unwrap_or_else(|e| e.into_inner());
    match dedup.get_mut(token) {
        None => {
            return Response::Err(Error::net_permanent(
                "session",
                "unknown session token (session was closed)",
            ))
        }
        Some(entry) => match entry.cache.admit(meta.seq) {
            Admit::Replay(r) => return r,
            Admit::ProvenApplied => return Response::ReplayApplied,
            Admit::Fresh | Admit::NotApplied => {}
        },
    }

    // Deadline budget: bounds the lock wait below and, via the engine's
    // statement deadline, the execution inside.
    let deadline =
        (meta.deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(meta.deadline_ms));
    let lock_wait = match deadline {
        Some(dl) => {
            let remaining = dl.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Response::Err(Error::deadline("lock wait", meta.deadline_ms));
            }
            config.lock_timeout.min(remaining)
        }
        None => config.lock_timeout,
    };

    let executed = db.with_timeout(lock_wait, |d| {
        // Journal the intent (fsynced) *before* executing: the WAL seq
        // recorded here lets recovery decide whether this statement's
        // effects committed. This fsync also flushes every earlier
        // outcome append — the invariant recovery judgement relies on.
        let engine_seq = d.wal_next_seq();
        if let (Some(log), Some(eseq)) = (state.session_log.as_ref(), engine_seq) {
            let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = log.intent(token, meta.seq, eseq) {
                // Refuse to execute without a durable intent: failing
                // closed keeps exactly-once sound.
                return (Response::Err(e), false);
            }
        }
        d.set_statement_deadline(deadline);
        d.set_memory_budget(budget.cloned());
        let result = exec(d);
        d.set_memory_budget(None);
        d.set_statement_deadline(None);
        // Applied = succeeded and consumed a WAL frame. In-memory
        // databases report false: their replies never outlive the
        // process, so the applied watermark is never consulted.
        let applied = result.is_ok()
            && match (engine_seq, d.wal_next_seq()) {
                (Some(before), Some(after)) => after > before,
                _ => false,
            };
        let response = match result {
            Ok(r) => r,
            Err(e) => Response::Err(rewrite_deadline(e, meta.deadline_ms)),
        };
        if let Some(log) = state.session_log.as_ref() {
            let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
            // Failures are fsynced (their WAL evidence may be compacted
            // away later); success outcomes ride the next intent's
            // fsync. An append failure here is survivable either way:
            // recovery re-derives the outcome from the WAL.
            let failed = matches!(response, Response::Err(_));
            let _ = log.outcome(token, meta.seq, applied, failed);
        }
        (response, applied)
    });

    let (response, applied) = match executed {
        Some(v) => v,
        None => {
            // Lock not acquired in time. Not recorded in the dedup
            // window: nothing executed, so a replay (or retry) should
            // attempt the lock again rather than be served this error.
            return if deadline.is_some_and(|dl| Instant::now() >= dl) {
                Response::Err(Error::deadline("lock wait", meta.deadline_ms))
            } else {
                Response::Err(Error::net_transient(
                    "execute",
                    format!(
                        "statement timeout: database lock not acquired within {:?}",
                        config.lock_timeout
                    ),
                ))
            };
        }
    };

    if let Some(entry) = dedup.get_mut(token) {
        entry.cache.record(meta.seq, response.clone(), applied);
    }

    // Size-bound the session log: rewrite it as per-token baselines.
    // Safe here because we hold the dedup lock — no statement is
    // between its intent and outcome, and no other log writer runs.
    if let Some(log) = state.session_log.as_ref() {
        let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
        if log.wants_rewrite() {
            let live: Vec<(String, String, Option<u64>, u64)> = dedup
                .iter()
                .map(|(t, e)| {
                    (
                        t.clone(),
                        e.namespace.clone(),
                        e.cache.applied_watermark(),
                        e.cache.expected(),
                    )
                })
                .collect();
            let _ = log.rewrite(&live);
        }
    }
    response
}

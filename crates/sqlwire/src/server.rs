//! The concurrent SQL server: a TCP accept loop wrapping one
//! [`SharedDatabase`].
//!
//! This is the "DBMS side" of the paper's two-tier deployment (§1.4):
//! SQLEM's client generates SQL on a workstation and submits it over
//! the network; all heavy lifting happens where the data lives. Each
//! accepted connection becomes one *session* on its own thread:
//!
//! 1. **Admission** — beyond [`ServerConfig::max_connections`] live
//!    sessions, the handshake is rejected with a *transient* error
//!    (backpressure: a client retry policy will wait and reconnect).
//! 2. **Handshake** — the client's [`Request::Hello`] carries the
//!    protocol version, a shared-secret token and the work-table
//!    namespace it wants. Version and token mismatches are rejected
//!    *permanently*; a namespace another live session owns is rejected
//!    transiently (it frees on that session's disconnect).
//! 3. **Statements** — executed under the shared database lock with a
//!    bounded wait ([`ServerConfig::lock_timeout`]): a session that
//!    cannot get the lock in time gets a transient statement-timeout
//!    error instead of wedging behind a long-running peer forever.
//! 4. **Idle timeout** — a session that sends nothing for
//!    [`ServerConfig::idle_timeout`] is closed and its namespace freed.
//! 5. **Teardown** — orderly ([`Request::Goodbye`]) or not, the session
//!    unregisters its prepared statements and releases its namespace.
//!
//! Shutdown ([`ServerHandle::shutdown`]) stops accepting and *drains*:
//! live sessions keep working until they disconnect or the drain
//! timeout passes. Composability with the durability layer is free —
//! hand [`Server::bind`] a `SharedDatabase` whose inner database was
//! opened with [`Database::open_durable`](sqlengine::Database::open_durable)
//! and every mutation is WAL-logged exactly as in-process.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sqlengine::{Database, Error, Result, SharedDatabase, SqlExecutor};

use crate::frame::{read_frame, write_frame};
use crate::proto::{Request, Response, PROTOCOL_VERSION};

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrent sessions; further handshakes are rejected
    /// with a transient error (admission control / backpressure).
    pub max_connections: usize,
    /// Shared-secret token clients must present (empty = open server).
    pub auth_token: String,
    /// Close a session that sends nothing for this long.
    pub idle_timeout: Duration,
    /// Bounded wait for the database lock per statement; beyond it the
    /// statement fails with a transient timeout error.
    pub lock_timeout: Duration,
    /// How long [`ServerHandle::shutdown`] waits for live sessions to
    /// finish before the accept loop returns anyway.
    pub drain_timeout: Duration,
    /// Chaos hook: drop the nth accepted connection (1-based) on the
    /// floor without a single response byte — deterministic
    /// connection-failure injection for retry tests.
    pub drop_nth_connection: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 32,
            auth_token: String::new(),
            idle_timeout: Duration::from_secs(300),
            lock_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            drop_nth_connection: None,
        }
    }
}

/// One live session's registry entry.
struct SessionEntry {
    /// Namespace the session claimed exclusively ("" = none).
    namespace: String,
    /// Set by [`Request::Cancel`]; the session fails its next request.
    cancelled: Arc<AtomicBool>,
}

/// State shared between the accept loop, session threads and handles.
struct ServerState {
    shutdown: AtomicBool,
    active: AtomicUsize,
    accepted: AtomicU64,
    next_session: AtomicU64,
    sessions: Mutex<HashMap<u64, SessionEntry>>,
}

/// Control handle for a running [`Server`] (cloneable across threads).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Stop accepting connections and let the accept loop drain.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Number of currently live sessions.
    pub fn active_sessions(&self) -> usize {
        self.state.active.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running server. Call [`Server::run`] to serve.
pub struct Server {
    listener: TcpListener,
    db: SharedDatabase,
    config: ServerConfig,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str, db: SharedDatabase, config: ServerConfig) -> Result<Server> {
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::net_permanent("bind", e.to_string()))?;
        Ok(Server {
            listener,
            db,
            config,
            state: Arc::new(ServerState {
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                accepted: AtomicU64::new(0),
                next_session: AtomicU64::new(1),
                sessions: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| Error::net_permanent("local_addr", e.to_string()))
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serve until [`ServerHandle::shutdown`], then drain and return.
    pub fn run(self) -> Result<()> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| Error::net_permanent("set_nonblocking", e.to_string()))?;
        while !self.state.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let n = self.state.accepted.fetch_add(1, Ordering::SeqCst) + 1;
                    if self.config.drop_nth_connection == Some(n) {
                        drop(stream); // chaos: simulate a mid-dial crash
                        continue;
                    }
                    let db = self.db.clone();
                    let config = self.config.clone();
                    let state = Arc::clone(&self.state);
                    state.active.fetch_add(1, Ordering::SeqCst);
                    std::thread::spawn(move || {
                        // The session outcome is reported to the peer over
                        // the wire; a torn connection has nowhere to report.
                        let _ = serve_session(stream, &db, &config, &state);
                        state.active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(Error::net_permanent("accept", e.to_string())),
            }
        }
        // Drain: no new sessions; wait for the live ones.
        let deadline = std::time::Instant::now() + self.config.drain_timeout;
        while self.state.active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

/// Receive the handshake, register the session, then serve requests
/// until goodbye / disconnect / idle timeout / cancellation.
fn serve_session(
    mut stream: TcpStream,
    db: &SharedDatabase,
    config: &ServerConfig,
    state: &ServerState,
) -> Result<()> {
    stream
        .set_nodelay(true)
        .map_err(|e| Error::net_permanent("set_nodelay", e.to_string()))?;
    stream
        .set_read_timeout(Some(config.idle_timeout))
        .map_err(|e| Error::net_permanent("set_read_timeout", e.to_string()))?;

    // ---- handshake -------------------------------------------------
    let hello = Request::decode(&read_frame(&mut stream)?)?;
    let Request::Hello {
        version,
        auth_token,
        namespace,
    } = hello
    else {
        let e = Error::net_permanent("handshake", "first message must be Hello");
        let _ = write_frame(&mut stream, &Response::Err(e.clone()).encode());
        return Err(e);
    };
    if version != PROTOCOL_VERSION {
        let e = Error::net_permanent(
            "handshake",
            format!("protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"),
        );
        write_frame(&mut stream, &Response::Err(e.clone()).encode())?;
        return Err(e);
    }
    if auth_token != config.auth_token {
        let e = Error::net_permanent("handshake", "auth token rejected");
        write_frame(&mut stream, &Response::Err(e.clone()).encode())?;
        return Err(e);
    }
    // Admission control: the session slot was taken optimistically by
    // the accept loop; over capacity means *this* session must go.
    if state.active.load(Ordering::SeqCst) > config.max_connections {
        let e = Error::net_transient(
            "handshake",
            format!(
                "server at capacity ({} sessions); retry later",
                config.max_connections
            ),
        );
        write_frame(&mut stream, &Response::Err(e.clone()).encode())?;
        return Err(e);
    }

    let session_id;
    let cancelled = Arc::new(AtomicBool::new(false));
    {
        let mut sessions = state.sessions.lock().unwrap_or_else(|e| e.into_inner());
        if !namespace.is_empty() && sessions.values().any(|s| s.namespace == namespace) {
            drop(sessions);
            let e = Error::net_transient(
                "handshake",
                format!("namespace {namespace:?} is held by another live session; retry later"),
            );
            write_frame(&mut stream, &Response::Err(e.clone()).encode())?;
            return Err(e);
        }
        session_id = state.next_session.fetch_add(1, Ordering::SeqCst);
        sessions.insert(
            session_id,
            SessionEntry {
                namespace: namespace.clone(),
                cancelled: Arc::clone(&cancelled),
            },
        );
    }

    let (max_statement_len, limits) = db.with(|d| {
        (
            d.config().max_statement_len as u64,
            d.config().limits.clone(),
        )
    });
    write_frame(
        &mut stream,
        &Response::HelloAck {
            version: PROTOCOL_VERSION,
            session: session_id,
            max_statement_len,
            limits,
            description: format!(
                "sqlem-server v{} ({})",
                env!("CARGO_PKG_VERSION"),
                if db.with(|d| d.is_durable()) {
                    "durable"
                } else {
                    "in-memory"
                }
            ),
        }
        .encode(),
    )?;

    // ---- request loop ----------------------------------------------
    let mut my_prepared: Vec<u64> = Vec::new();
    let result = request_loop(&mut stream, db, config, state, &cancelled, &mut my_prepared);

    // ---- teardown --------------------------------------------------
    db.with(|d| {
        for id in &my_prepared {
            d.unregister_prepared(*id);
        }
    });
    state
        .sessions
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&session_id);
    result
}

fn request_loop(
    stream: &mut TcpStream,
    db: &SharedDatabase,
    config: &ServerConfig,
    state: &ServerState,
    cancelled: &AtomicBool,
    my_prepared: &mut Vec<u64>,
) -> Result<()> {
    loop {
        let payload = read_frame(stream)?; // idle timeout closes here
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                write_frame(stream, &Response::Err(e.clone()).encode())?;
                return Err(e);
            }
        };
        if cancelled.load(Ordering::SeqCst) {
            let e = Error::net_permanent("session", "session cancelled by peer request");
            write_frame(stream, &Response::Err(e.clone()).encode())?;
            return Err(e);
        }
        let response = match request {
            Request::Hello { .. } => {
                Response::Err(Error::net_permanent("session", "duplicate Hello"))
            }
            Request::Goodbye => {
                write_frame(stream, &Response::Ok.encode())?;
                return Ok(());
            }
            Request::Cancel { session } => {
                let sessions = state.sessions.lock().unwrap_or_else(|e| e.into_inner());
                match sessions.get(&session) {
                    Some(entry) => {
                        entry.cancelled.store(true, Ordering::SeqCst);
                        Response::Bool(true)
                    }
                    None => Response::Bool(false),
                }
            }
            other => dispatch_db(db, config, other, my_prepared),
        };
        write_frame(stream, &response.encode())?;
    }
}

/// Execute one database-touching request under the bounded lock wait.
fn dispatch_db(
    db: &SharedDatabase,
    config: &ServerConfig,
    request: Request,
    my_prepared: &mut Vec<u64>,
) -> Response {
    let run = |f: &mut dyn FnMut(&mut Database) -> Response| -> Response {
        match db.with_timeout(config.lock_timeout, |d| f(d)) {
            Some(resp) => resp,
            None => Response::Err(Error::net_transient(
                "execute",
                format!(
                    "statement timeout: database lock not acquired within {:?}",
                    config.lock_timeout
                ),
            )),
        }
    };
    fn reply<T>(r: Result<T>, ok: impl FnOnce(T) -> Response) -> Response {
        match r {
            Ok(v) => ok(v),
            Err(e) => Response::Err(e),
        }
    }
    match request {
        Request::Query { sql } => run(&mut |d| reply(d.execute(&sql), Response::Rows)),
        Request::Prepare { statements } => {
            run(&mut |d| match SqlExecutor::prepare_script(d, &statements) {
                Ok(ids) => {
                    my_prepared.extend(ids.iter().map(|i| i.0));
                    Response::PreparedIds(ids.iter().map(|i| i.0).collect())
                }
                Err(e) => Response::PrepareErr {
                    index: e.index as u64,
                    error: e.error,
                },
            })
        }
        Request::ExecutePrepared { id } => {
            if !my_prepared.contains(&id) {
                return Response::Err(Error::net_permanent(
                    "execute prepared",
                    format!("unknown prepared id {id} for this session"),
                ));
            }
            run(&mut |d| {
                reply(
                    SqlExecutor::run_prepared(d, sqlengine::PreparedId(id)),
                    Response::Rows,
                )
            })
        }
        Request::ClearPrepared => run(&mut |d| {
            for id in my_prepared.drain(..) {
                d.unregister_prepared(id);
            }
            Response::Ok
        }),
        Request::BulkInsert { table, rows } => {
            // `run` takes an FnMut but calls it at most once; Option
            // lets the rows move into bulk_insert without a clone.
            let mut rows = Some(rows);
            run(&mut |d| {
                let rows = rows.take().expect("bulk-insert closure runs once");
                reply(d.bulk_insert(&table, rows), |n| Response::Count(n as u64))
            })
        }
        Request::TableRows { table } => {
            run(&mut |d| reply(d.table_len(&table), |n| Response::Count(n as u64)))
        }
        Request::HasTable { table } => run(&mut |d| Response::Bool(d.contains_table(&table))),
        Request::CatalogSnapshot => run(&mut |d| Response::Catalog(d.symbolic_catalog())),
        Request::SetMetrics { on } => run(&mut |d| {
            if on {
                d.enable_metrics();
            } else {
                d.disable_metrics();
            }
            Response::Ok
        }),
        Request::MetricsLen => {
            run(&mut |d| reply(SqlExecutor::metrics_len(d), |n| Response::Count(n as u64)))
        }
        Request::MetricsSince { from } => run(&mut |d| {
            reply(
                SqlExecutor::metrics_since(d, from as usize),
                Response::Metrics,
            )
        }),
        Request::NoteRetry => run(&mut |d| {
            d.note_statement_retry();
            Response::Ok
        }),
        // Handled by the caller.
        Request::Hello { .. } | Request::Goodbye | Request::Cancel { .. } => {
            Response::Err(Error::net_permanent("session", "unreachable request"))
        }
    }
}

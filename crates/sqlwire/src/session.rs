//! Exactly-once session state: the per-session reply cache and the
//! durable session log that lets dedup survive a server `kill -9`.
//!
//! ## The reply cache
//!
//! Every statement-bearing request carries a session-scoped,
//! monotonically increasing sequence number ([`crate::proto::StmtMeta`]).
//! The client is synchronous: it sends `seq` only after resolving every
//! smaller sequence number, and it *replays* (re-sends under the same
//! `seq`) only the statement whose reply was lost to a wire failure.
//! [`ReplyCache::admit`] classifies an incoming `seq` against that
//! contract:
//!
//! - a fresh `seq` executes and its reply (success *or* engine error)
//!   is recorded; the cache keeps a bounded window of recent replies,
//!   evicting the oldest as the sequence advances past them;
//! - a replayed or stale `seq` whose reply is still cached is answered
//!   from the cache, byte-identical, without re-execution;
//! - a replayed `seq` whose reply is gone but which is *proven applied*
//!   (it committed effects before the reply was lost) is answered with
//!   [`Response::ReplayApplied`] — applied exactly once, result bytes
//!   lost;
//! - everything else provably did **not** apply effects (reads, failed
//!   statements, statements the crash pre-empted) and is safe to
//!   re-execute.
//!
//! ## The durable session log
//!
//! On a durable server the cache's *applied* knowledge must survive
//! `kill -9`. Statement effects live in the engine WAL; the mapping
//! from client sequence numbers to WAL fates lives in a sidecar log
//! (`sessions.log`) so the dedup layer adds **no statements** to the
//! SQL path (remote and embedded runs stay statement-for-statement
//! identical). The protocol per keyed request:
//!
//! 1. `Intent { token, seq, engine_seq }` is appended and fsynced
//!    *before* execution, with `engine_seq` read under the database
//!    lock — the WAL sequence number the statement will consume if it
//!    mutates.
//! 2. The statement executes (the engine WAL fsyncs commits itself).
//! 3. `Outcome { token, seq, applied }` is appended — fsynced only
//!    when execution failed (success outcomes are made durable for
//!    free by the *next* request's intent fsync; see below).
//!
//! Recovery correlates unresolved intents with what
//! [`sqlengine::WalRecovery`] found: `engine_seq` recovered committed
//! means applied; recovered-but-uncommitted or never-reached means not
//! applied; erased by compaction means applied (only a *committed*
//! statement's own commit path can compact the log before its outcome
//! is appended — every other compaction runs inside a later request,
//! whose intent fsync made this outcome durable first).
//!
//! The log is size-bounded: once it outgrows its budget it is
//! rewritten (tmp + rename + directory fsync, the snapshot protocol)
//! as one `Open` + `Watermark` baseline per live session.

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use sqlengine::storage::codec::{crc32, put_str, put_u64, Reader};
use sqlengine::storage::snapshot::sync_dir;
use sqlengine::{Error, Result, WalRecovery};

use crate::proto::Response;

/// Magic prefix identifying a session log (versioned).
pub const SESSION_LOG_MAGIC: &[u8] = b"SQLEMSES1\n";
/// Session log file name within the database directory.
pub const SESSION_LOG_FILE: &str = "sessions.log";
/// Rewrite the log once it exceeds this many bytes.
const SESSION_LOG_MAX_BYTES: u64 = 1024 * 1024;
/// Default bound on cached replies per session.
pub const DEFAULT_REPLY_WINDOW: usize = 64;

// ---------------------------------------------------------------------
// reply cache

/// How [`ReplyCache::admit`] classified an incoming sequence number.
#[derive(Debug, Clone)]
pub enum Admit {
    /// Never seen: execute and [`ReplyCache::record`] the reply.
    Fresh,
    /// Replay with the reply still cached: resend it verbatim.
    Replay(Response),
    /// Replay of a statement proven to have applied its effects, but
    /// the reply bytes are gone (server restart): answer
    /// [`Response::ReplayApplied`]. Never re-execute.
    ProvenApplied,
    /// Replay of a statement proven **not** to have applied effects
    /// (a read, a failed statement, or one the crash pre-empted):
    /// re-executing is safe and is the only way to produce a reply.
    NotApplied,
}

/// Bounded, ack-advancing reply cache for one session.
#[derive(Debug)]
pub struct ReplyCache {
    /// Next fresh sequence number ( = max seen + 1; 0 for a new session).
    expected: u64,
    /// Maximum cached replies (hard cap; ack-advance usually keeps the
    /// map much smaller).
    window: usize,
    /// Cached replies by sequence number, including error replies — a
    /// replayed failed statement must observe the *same* failure.
    replies: BTreeMap<u64, Response>,
    /// Highest sequence number whose statement applied effects
    /// (executed successfully *and* was mutating). Everything at or
    /// below it that is no longer cached is answered `ProvenApplied`.
    applied: Option<u64>,
}

impl Default for ReplyCache {
    fn default() -> Self {
        ReplyCache::new(DEFAULT_REPLY_WINDOW)
    }
}

impl ReplyCache {
    /// Empty cache for a brand-new session.
    pub fn new(window: usize) -> Self {
        ReplyCache {
            expected: 0,
            window: window.max(1),
            replies: BTreeMap::new(),
            applied: None,
        }
    }

    /// Rebuild a cache from durable recovery: the replies themselves
    /// are gone, but the applied watermark and the highest intent seen
    /// survive, which is exactly what replay judgement needs.
    pub fn recovered(window: usize, applied: Option<u64>, max_intent: Option<u64>) -> Self {
        ReplyCache {
            expected: max_intent
                .map_or(0, |m| m + 1)
                .max(applied.map_or(0, |a| a + 1)),
            window: window.max(1),
            replies: BTreeMap::new(),
            applied,
        }
    }

    /// Classify an incoming sequence number.
    pub fn admit(&mut self, seq: u64) -> Admit {
        if seq >= self.expected {
            // Fresh — possibly with a gap (a statement the client
            // abandoned, or recovery that could not observe reads).
            // Accepting the gap is safe: nothing is re-executed.
            return Admit::Fresh;
        }
        if let Some(r) = self.replies.get(&seq) {
            return Admit::Replay(r.clone());
        }
        match self.applied {
            Some(a) if seq <= a => Admit::ProvenApplied,
            _ => Admit::NotApplied,
        }
    }

    /// Record the reply for an executed statement. `applied` is true
    /// when the statement executed successfully **and** was mutating —
    /// the only case a later evicted replay must not re-execute.
    pub fn record(&mut self, seq: u64, reply: Response, applied: bool) {
        self.replies.insert(seq, reply);
        self.expected = self.expected.max(seq + 1);
        if applied {
            self.applied = Some(self.applied.map_or(seq, |a| a.max(seq)));
        }
        while self.replies.len() > self.window {
            let oldest = *self.replies.keys().next().expect("non-empty");
            self.replies.remove(&oldest);
        }
    }

    /// Next fresh sequence number (diagnostics / persistence baseline).
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// The applied watermark (persistence baseline).
    pub fn applied_watermark(&self) -> Option<u64> {
        self.applied
    }

    /// Number of cached replies (tests).
    pub fn cached_len(&self) -> usize {
        self.replies.len()
    }
}

// ---------------------------------------------------------------------
// durable session log

const TAG_OPEN: u8 = 0x01;
const TAG_INTENT: u8 = 0x02;
const TAG_OUTCOME: u8 = 0x03;
const TAG_CLOSE: u8 = 0x04;
const TAG_WATERMARK: u8 = 0x05;

/// One decoded session-log record.
#[derive(Debug, Clone, PartialEq)]
enum SessionRecord {
    /// A session token came into existence, bound to a namespace.
    Open { token: String, namespace: String },
    /// About to execute the statement `seq` of session `token`; if it
    /// mutates, it will consume WAL sequence number `engine_seq`.
    Intent {
        token: String,
        seq: u64,
        engine_seq: u64,
    },
    /// Statement `seq` finished; `applied` = successfully executed and
    /// mutating.
    Outcome {
        token: String,
        seq: u64,
        applied: bool,
    },
    /// Orderly goodbye: the token's dedup state can be dropped.
    Close { token: String },
    /// Rewrite baseline: everything at or below `applied` applied
    /// effects; everything at or below `max_intent` has been seen.
    Watermark {
        token: String,
        applied: u64,
        has_applied: bool,
        max_intent: u64,
    },
}

fn encode_session_record(rec: &SessionRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    match rec {
        SessionRecord::Open { token, namespace } => {
            payload.push(TAG_OPEN);
            put_str(&mut payload, token);
            put_str(&mut payload, namespace);
        }
        SessionRecord::Intent {
            token,
            seq,
            engine_seq,
        } => {
            payload.push(TAG_INTENT);
            put_str(&mut payload, token);
            put_u64(&mut payload, *seq);
            put_u64(&mut payload, *engine_seq);
        }
        SessionRecord::Outcome {
            token,
            seq,
            applied,
        } => {
            payload.push(TAG_OUTCOME);
            put_str(&mut payload, token);
            put_u64(&mut payload, *seq);
            payload.push(u8::from(*applied));
        }
        SessionRecord::Close { token } => {
            payload.push(TAG_CLOSE);
            put_str(&mut payload, token);
        }
        SessionRecord::Watermark {
            token,
            applied,
            has_applied,
            max_intent,
        } => {
            payload.push(TAG_WATERMARK);
            put_str(&mut payload, token);
            put_u64(&mut payload, *applied);
            payload.push(u8::from(*has_applied));
            put_u64(&mut payload, *max_intent);
        }
    }
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_session_payload(payload: &[u8]) -> Result<SessionRecord> {
    let mut r = Reader::new(payload, "session record");
    let rec = match r.u8()? {
        TAG_OPEN => SessionRecord::Open {
            token: r.str()?,
            namespace: r.str()?,
        },
        TAG_INTENT => SessionRecord::Intent {
            token: r.str()?,
            seq: r.u64()?,
            engine_seq: r.u64()?,
        },
        TAG_OUTCOME => SessionRecord::Outcome {
            token: r.str()?,
            seq: r.u64()?,
            applied: r.u8()? != 0,
        },
        TAG_CLOSE => SessionRecord::Close { token: r.str()? },
        TAG_WATERMARK => SessionRecord::Watermark {
            token: r.str()?,
            applied: r.u64()?,
            has_applied: r.u8()? != 0,
            max_intent: r.u64()?,
        },
        tag => {
            return Err(Error::corruption(format!(
                "session record: unknown tag {tag:#04x}"
            )))
        }
    };
    if r.remaining() != 0 {
        return Err(Error::corruption("session record: trailing bytes"));
    }
    Ok(rec)
}

/// What one recovered session knew before the crash, prior to WAL
/// correlation.
#[derive(Debug, Clone, Default)]
struct RawSession {
    namespace: String,
    /// Latest intent per client seq, with its recorded engine seq, or
    /// `None` once an outcome resolved it.
    unresolved: BTreeMap<u64, u64>,
    applied: Option<u64>,
    max_intent: Option<u64>,
}

/// A recovered session after correlating unresolved intents with the
/// engine WAL: everything the server needs to rebuild its dedup state.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredSession {
    /// Work-table namespace the token was bound to.
    pub namespace: String,
    /// Highest client seq proven to have applied effects.
    pub applied: Option<u64>,
    /// Highest client seq ever seen (intents included).
    pub max_intent: Option<u64>,
}

/// Durable sidecar log mapping client sequence numbers to engine WAL
/// fates. See the module docs for the append/fsync protocol.
#[derive(Debug)]
pub struct SessionLog {
    file: fs::File,
    dir: PathBuf,
    len: u64,
}

/// Path of the session log inside a database directory.
pub fn session_log_path(dir: &Path) -> PathBuf {
    dir.join(SESSION_LOG_FILE)
}

/// Scan a session-log byte image into per-token raw state. Torn tails
/// are tolerated (only unacknowledged suffixes can be torn — every
/// judgement-relevant record was fsynced or flushed by a later fsync);
/// checksum mismatches before the tail are corruption.
fn scan_session_log(bytes: &[u8]) -> Result<(HashMap<String, RawSession>, u64)> {
    let mut sessions: HashMap<String, RawSession> = HashMap::new();
    let mut max_token_id = 0u64;
    if bytes.len() < SESSION_LOG_MAGIC.len() {
        return Ok((sessions, max_token_id));
    }
    if &bytes[..SESSION_LOG_MAGIC.len()] != SESSION_LOG_MAGIC {
        return Err(Error::corruption("session log: bad magic"));
    }
    let mut pos = SESSION_LOG_MAGIC.len();
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            break; // torn header
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let stored_crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if remaining - 8 < len {
            break; // torn payload
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != stored_crc {
            return Err(Error::corruption(format!(
                "session log: checksum mismatch at byte {pos}"
            )));
        }
        let record = decode_session_payload(payload)?;
        pos += 8 + len;
        match record {
            SessionRecord::Open { token, namespace } => {
                if let Some(id) = token_ordinal(&token) {
                    max_token_id = max_token_id.max(id);
                }
                sessions.entry(token).or_default().namespace = namespace;
            }
            SessionRecord::Intent {
                token,
                seq,
                engine_seq,
            } => {
                let s = sessions.entry(token).or_default();
                // A fresh intent supersedes any stale outcome a prior
                // incarnation of this seq left behind.
                s.unresolved.insert(seq, engine_seq);
                s.max_intent = Some(s.max_intent.map_or(seq, |m| m.max(seq)));
            }
            SessionRecord::Outcome {
                token,
                seq,
                applied,
            } => {
                let s = sessions.entry(token).or_default();
                s.unresolved.remove(&seq);
                if applied {
                    s.applied = Some(s.applied.map_or(seq, |a| a.max(seq)));
                }
            }
            SessionRecord::Close { token } => {
                sessions.remove(&token);
            }
            SessionRecord::Watermark {
                token,
                applied,
                has_applied,
                max_intent,
            } => {
                let s = sessions.entry(token).or_default();
                if has_applied {
                    s.applied = Some(s.applied.map_or(applied, |a| a.max(applied)));
                }
                s.max_intent = Some(s.max_intent.map_or(max_intent, |m| m.max(max_intent)));
            }
        }
    }
    Ok((sessions, max_token_id))
}

/// Parse the numeric ordinal out of a server-issued `t<N>` token.
pub(crate) fn token_ordinal(token: &str) -> Option<u64> {
    token.strip_prefix('t').and_then(|s| s.parse().ok())
}

/// Render the server-issued token with ordinal `n`.
pub fn format_token(n: u64) -> String {
    format!("t{n}")
}

/// Correlate one unresolved intent with the recovered engine WAL: did
/// the statement that recorded `engine_seq` apply its effects?
fn intent_applied(engine_seq: u64, wal: &WalRecovery) -> bool {
    if wal.committed.contains(&engine_seq) {
        return true; // its frame committed
    }
    if wal.uncommitted.contains(&engine_seq) {
        return false; // its frame never committed (failed / crashed)
    }
    if engine_seq >= wal.next_seq {
        return false; // never reached the log (read, or pre-empted)
    }
    // Below the recovered counter yet absent from the log: erased by
    // compaction, which only a committed statement's own commit path
    // can reach before the outcome record lands (module docs).
    true
}

impl SessionLog {
    /// Open (or create) the session log in `dir`, recovering per-token
    /// state by correlating unresolved intents against `wal`. Returns
    /// the log plus the recovered sessions and the highest server-issued
    /// token ordinal (so reissued tokens never collide).
    pub fn open(
        dir: &Path,
        wal: &WalRecovery,
    ) -> Result<(SessionLog, HashMap<String, RecoveredSession>, u64)> {
        let path = session_log_path(dir);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(Error::io("read session log", e)),
        };
        let (raw, max_token_id) = scan_session_log(&bytes)?;
        let mut recovered = HashMap::with_capacity(raw.len());
        for (token, s) in raw {
            let mut applied = s.applied;
            for (&seq, &engine_seq) in &s.unresolved {
                if intent_applied(engine_seq, wal) {
                    applied = Some(applied.map_or(seq, |a| a.max(seq)));
                }
            }
            recovered.insert(
                token,
                RecoveredSession {
                    namespace: s.namespace,
                    applied,
                    max_intent: s.max_intent,
                },
            );
        }
        // Fresh file (or recreate after reading): append from the end.
        let exists = !bytes.is_empty();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| Error::io("open session log", e))?;
        let mut len = bytes.len() as u64;
        if !exists {
            file.write_all(SESSION_LOG_MAGIC)
                .map_err(|e| Error::io("write session log magic", e))?;
            file.sync_all()
                .map_err(|e| Error::io("sync session log", e))?;
            sync_dir(dir)?;
            len = SESSION_LOG_MAGIC.len() as u64;
        }
        Ok((
            SessionLog {
                file,
                dir: dir.to_path_buf(),
                len,
            },
            recovered,
            max_token_id,
        ))
    }

    fn append(&mut self, rec: &SessionRecord, fsync: bool) -> Result<()> {
        let bytes = encode_session_record(rec);
        self.file
            .write_all(&bytes)
            .map_err(|e| Error::io("append session log", e))?;
        self.len += bytes.len() as u64;
        if fsync {
            self.file
                .sync_all()
                .map_err(|e| Error::io("sync session log", e))?;
        }
        Ok(())
    }

    /// Record (durably) that `token` exists and owns `namespace`.
    pub fn open_token(&mut self, token: &str, namespace: &str) -> Result<()> {
        self.append(
            &SessionRecord::Open {
                token: token.into(),
                namespace: namespace.into(),
            },
            true,
        )
    }

    /// Record (durably, *before* execution) that statement `seq` of
    /// `token` is about to run and would consume WAL seq `engine_seq`.
    /// This fsync also flushes every outcome appended before it — the
    /// property the recovery judgement leans on.
    pub fn intent(&mut self, token: &str, seq: u64, engine_seq: u64) -> Result<()> {
        self.append(
            &SessionRecord::Intent {
                token: token.into(),
                seq,
                engine_seq,
            },
            true,
        )
    }

    /// Record that statement `seq` finished. Fsynced only when the
    /// statement failed (`fsync_now`) — a failed mutation's WAL frame
    /// can later be erased by compaction, so its failure must outlive
    /// the evidence; success is provable from the WAL itself.
    pub fn outcome(&mut self, token: &str, seq: u64, applied: bool, fsync_now: bool) -> Result<()> {
        self.append(
            &SessionRecord::Outcome {
                token: token.into(),
                seq,
                applied,
            },
            fsync_now,
        )
    }

    /// Record an orderly goodbye: the token's state is gone.
    pub fn close_token(&mut self, token: &str) -> Result<()> {
        self.append(
            &SessionRecord::Close {
                token: token.into(),
            },
            true,
        )
    }

    /// Current log length in bytes (tests / rewrite trigger).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len <= SESSION_LOG_MAGIC.len() as u64
    }

    /// Does the log want a rewrite? Checked by the server between
    /// statements; the rewrite itself needs the live session baselines.
    pub fn wants_rewrite(&self) -> bool {
        self.len > SESSION_LOG_MAX_BYTES
    }

    /// Rewrite the log as one `Open` + `Watermark` baseline per live
    /// session (crash-safe: staged to a tmp file, fsynced, renamed over
    /// the old log, directory fsynced). Callers pass the authoritative
    /// in-memory state; every prior intent has its outcome by the time
    /// this runs (rewrites happen between statements, under the same
    /// lock the append path holds).
    pub fn rewrite(&mut self, live: &[(String, String, Option<u64>, u64)]) -> Result<()> {
        let tmp = self.dir.join("sessions.log.tmp");
        let mut buf = SESSION_LOG_MAGIC.to_vec();
        for (token, namespace, applied, expected) in live {
            buf.extend_from_slice(&encode_session_record(&SessionRecord::Open {
                token: token.clone(),
                namespace: namespace.clone(),
            }));
            buf.extend_from_slice(&encode_session_record(&SessionRecord::Watermark {
                token: token.clone(),
                applied: applied.unwrap_or(0),
                has_applied: applied.is_some(),
                max_intent: expected.saturating_sub(1),
            }));
        }
        let mut f = fs::File::create(&tmp).map_err(|e| Error::io("create session log tmp", e))?;
        f.write_all(&buf)
            .map_err(|e| Error::io("write session log tmp", e))?;
        f.sync_all()
            .map_err(|e| Error::io("sync session log tmp", e))?;
        drop(f);
        fs::rename(&tmp, session_log_path(&self.dir))
            .map_err(|e| Error::io("rename session log", e))?;
        sync_dir(&self.dir)?;
        self.file = fs::OpenOptions::new()
            .append(true)
            .open(session_log_path(&self.dir))
            .map_err(|e| Error::io("reopen session log", e))?;
        self.len = buf.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::QueryResult;

    fn ok_reply() -> Response {
        Response::Rows(QueryResult::affected(1))
    }

    #[test]
    fn fresh_then_replay_is_served_from_cache() {
        let mut c = ReplyCache::new(8);
        assert!(matches!(c.admit(0), Admit::Fresh));
        c.record(0, ok_reply(), true);
        // Replay of 0: cached, never re-executed.
        match c.admit(0) {
            Admit::Replay(r) => assert!(crate::proto::same_encoding(&r, &ok_reply())),
            other => panic!("expected Replay, got {other:?}"),
        }
        assert!(matches!(c.admit(1), Admit::Fresh));
    }

    #[test]
    fn error_replies_are_cached_too() {
        let mut c = ReplyCache::new(8);
        assert!(matches!(c.admit(0), Admit::Fresh));
        c.record(
            0,
            Response::Err(Error::Remote("duplicate key".into())),
            false,
        );
        match c.admit(0) {
            Admit::Replay(Response::Err(Error::Remote(m))) => assert!(m.contains("duplicate")),
            other => panic!("expected cached Err, got {other:?}"),
        }
    }

    #[test]
    fn stale_sequences_are_served_from_the_window() {
        let mut c = ReplyCache::new(64);
        for s in 0..5 {
            assert!(matches!(c.admit(s), Admit::Fresh));
            c.record(s, ok_reply(), true);
        }
        // A stale sequence number inside the window is acked from the
        // cache, never re-executed.
        assert!(matches!(c.admit(2), Admit::Replay(_)));
        // A gap is fresh; the stale reply stays cached behind it.
        assert!(matches!(c.admit(10), Admit::Fresh));
        c.record(10, ok_reply(), true);
        assert!(matches!(c.admit(3), Admit::Replay(_)));
    }

    #[test]
    fn evicted_applied_seqs_answer_proven_applied() {
        let mut c = ReplyCache::new(4);
        for s in 0..10 {
            assert!(matches!(c.admit(s), Admit::Fresh));
            c.record(s, ok_reply(), true);
        }
        assert_eq!(c.cached_len(), 4, "window cap evicts the oldest");
        // Evicted applied seqs answer ProvenApplied, never re-execute.
        assert!(matches!(c.admit(3), Admit::ProvenApplied));
        // Recent ones still replay from the cache.
        assert!(matches!(c.admit(9), Admit::Replay(_)));
    }

    #[test]
    fn window_cap_bounds_memory() {
        let mut c = ReplyCache::new(4);
        for s in 0..10 {
            // No admit() between records (simulates recording without
            // ack-advance); the hard cap must hold alone.
            c.record(s, ok_reply(), false);
        }
        assert!(c.cached_len() <= 4);
    }

    #[test]
    fn recovered_cache_judges_replays() {
        // Recovery: seqs through 7 seen, applied through 5.
        let mut c = ReplyCache::recovered(8, Some(5), Some(7));
        assert_eq!(c.expected(), 8);
        // Applied, reply lost: proven applied.
        assert!(matches!(c.admit(4), Admit::ProvenApplied));
        assert!(matches!(c.admit(5), Admit::ProvenApplied));
        // Seen but not applied (read or failed): safe to re-execute.
        assert!(matches!(c.admit(6), Admit::NotApplied));
        assert!(matches!(c.admit(7), Admit::NotApplied));
        // Next statement is fresh.
        assert!(matches!(c.admit(8), Admit::Fresh));
    }

    fn wal(committed: &[u64], uncommitted: &[u64], next_seq: u64) -> WalRecovery {
        WalRecovery {
            committed: committed.to_vec(),
            uncommitted: uncommitted.to_vec(),
            watermark: 0,
            next_seq,
        }
    }

    #[test]
    fn intent_judgement_covers_every_wal_fate() {
        let w = wal(&[3], &[4], 6);
        assert!(intent_applied(3, &w), "committed frame = applied");
        assert!(!intent_applied(4, &w), "uncommitted frame = not applied");
        assert!(!intent_applied(6, &w), "never logged = not applied");
        assert!(!intent_applied(7, &w), "future seq = not applied");
        assert!(intent_applied(5, &w), "compacted away = applied");
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sqlem_sessionlog_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn session_log_round_trips_across_reopen() {
        let dir = tempdir("roundtrip");
        let none = WalRecovery::default();
        {
            let (mut log, recovered, max_id) = SessionLog::open(&dir, &none).unwrap();
            assert!(recovered.is_empty());
            assert_eq!(max_id, 0);
            log.open_token("t1", "ns_").unwrap();
            log.intent("t1", 0, 10).unwrap();
            log.outcome("t1", 0, true, false).unwrap();
            log.intent("t1", 1, 11).unwrap();
            // seq 1 has no outcome: the crash window.
        }
        // Engine WAL says seq 11 committed: statement 1 applied.
        let w = wal(&[10, 11], &[], 12);
        let (_log, recovered, max_id) = SessionLog::open(&dir, &w).unwrap();
        assert_eq!(max_id, 1);
        let s = &recovered["t1"];
        assert_eq!(s.namespace, "ns_");
        assert_eq!(s.applied, Some(1));
        assert_eq!(s.max_intent, Some(1));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unresolved_read_intent_is_not_applied() {
        let dir = tempdir("read");
        let none = WalRecovery::default();
        {
            let (mut log, _, _) = SessionLog::open(&dir, &none).unwrap();
            log.open_token("t1", "ns_").unwrap();
            // A read records the *next* WAL seq but never consumes it.
            log.intent("t1", 0, 10).unwrap();
        }
        // Nothing committed seq 10: the read is judged not applied and
        // will simply be re-executed on replay.
        let w = wal(&[], &[], 10);
        let (_log, recovered, _) = SessionLog::open(&dir, &w).unwrap();
        assert_eq!(recovered["t1"].applied, None);
        assert_eq!(recovered["t1"].max_intent, Some(0));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn close_token_drops_state_and_torn_tail_is_tolerated() {
        let dir = tempdir("close");
        let none = WalRecovery::default();
        {
            let (mut log, _, _) = SessionLog::open(&dir, &none).unwrap();
            log.open_token("t1", "a_").unwrap();
            log.open_token("t2", "b_").unwrap();
            log.close_token("t1").unwrap();
        }
        // Tear the file mid-record: recovery must still see t2.
        let path = session_log_path(&dir);
        let bytes = fs::read(&path).unwrap();
        let mut torn = bytes.clone();
        torn.extend_from_slice(&[5, 0, 0, 0, 1, 2]); // header + partial garbage
        fs::write(&path, &torn).unwrap();
        let (_log, recovered, max_id) = SessionLog::open(&dir, &none).unwrap();
        assert!(!recovered.contains_key("t1"));
        assert!(recovered.contains_key("t2"));
        assert_eq!(max_id, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_preserves_judgement_baselines() {
        let dir = tempdir("rewrite");
        let none = WalRecovery::default();
        {
            let (mut log, _, _) = SessionLog::open(&dir, &none).unwrap();
            log.open_token("t3", "ns_").unwrap();
            for seq in 0..20 {
                log.intent("t3", seq, 100 + seq).unwrap();
                log.outcome("t3", seq, seq % 2 == 0, false).unwrap();
            }
            let before = log.len();
            log.rewrite(&[("t3".into(), "ns_".into(), Some(18), 20)])
                .unwrap();
            assert!(log.len() < before);
            // Post-rewrite appends still work.
            log.intent("t3", 20, 120).unwrap();
            log.outcome("t3", 20, false, true).unwrap();
        }
        let (_log, recovered, max_id) = SessionLog::open(&dir, &none).unwrap();
        let s = &recovered["t3"];
        assert_eq!(s.namespace, "ns_");
        assert_eq!(s.applied, Some(18));
        assert_eq!(s.max_intent, Some(20));
        assert_eq!(max_id, 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_record_is_reported() {
        let dir = tempdir("corrupt");
        let none = WalRecovery::default();
        {
            let (mut log, _, _) = SessionLog::open(&dir, &none).unwrap();
            log.open_token("t1", "ns_").unwrap();
            log.open_token("t2", "ns2_").unwrap();
        }
        let path = session_log_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte inside the FIRST record's payload (not the tail).
        let pos = SESSION_LOG_MAGIC.len() + 9;
        bytes[pos] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SessionLog::open(&dir, &none),
            Err(Error::Corruption { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }
}

//! End-to-end client/server tests: the paper's two-tier deployment
//! (§1.4) must reproduce the in-process reproduction *bit-exactly*.
//!
//! Each test binds a [`Server`] on an ephemeral port with its accept
//! loop on a thread, drives it through [`RemoteConnection`] (the
//! `SqlExecutor` the whole `sqlem` driver is generic over), and
//! compares against the embedded equivalent:
//!
//! * a full hybrid EM run over the wire — params, llh history and
//!   telemetry identical to the in-process run;
//! * two concurrent clients on one server, namespace-isolated, each
//!   bit-identical to its own embedded run;
//! * wire flakes (idle disconnects, connections dropped at accept)
//!   absorbed by the existing `RetryPolicy` machinery;
//! * a durable server restarted mid-study, with the client resuming
//!   from its in-database checkpoint to the uninterrupted result;
//! * handshake rejection (version, token, namespace, admission) with
//!   the transient/permanent taxonomy the retry policy keys on.

use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use emcore::init::InitStrategy;
use emcore::GmmParams;
use sqlem::{EmSession, RetryPolicy, SqlemConfig, SqlemRun, Strategy};
use sqlengine::{Database, SharedDatabase, SqlExecutor, Value};
use sqlwire::frame::{read_frame, write_frame};
use sqlwire::proto::{same_encoding, Request, Response};
use sqlwire::{
    ClientConfig, RemoteConnection, Server, ServerConfig, ServerHandle, StmtMeta, PROTOCOL_VERSION,
};

// ---------------------------------------------------------------------
// harness

struct TestServer {
    addr: String,
    handle: ServerHandle,
    join: thread::JoinHandle<sqlengine::Result<()>>,
}

impl TestServer {
    fn start(db: SharedDatabase, mut config: ServerConfig) -> TestServer {
        // Tests drop their clients before stopping; a long drain would
        // only ever stretch a failure.
        config.drain_timeout = Duration::from_secs(2);
        let server = Server::bind("127.0.0.1:0", db, config).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle();
        let join = thread::spawn(move || server.run());
        TestServer { addr, handle, join }
    }

    fn stop(self) {
        self.handle.shutdown();
        self.join.join().unwrap().unwrap();
    }
}

fn connect(addr: &str, namespace: &str) -> RemoteConnection {
    RemoteConnection::connect(
        addr,
        ClientConfig {
            namespace: namespace.to_string(),
            ..ClientConfig::default()
        },
    )
    .unwrap()
}

/// Two well-separated Gaussian blobs around `(c, c)` and `(c+9, c+9)`.
fn blobs(c: f64) -> Vec<Vec<f64>> {
    let mut pts = Vec::new();
    for i in 0..40 {
        let t = (i % 5) as f64 * 0.1;
        pts.push(vec![c + t, c - t]);
        pts.push(vec![c + 9.0 + t, c + 9.0 - t]);
    }
    pts
}

fn blob_init(c: f64) -> GmmParams {
    GmmParams::new(
        vec![vec![c + 2.0, c + 2.0], vec![c + 7.0, c + 7.0]],
        vec![8.0, 8.0],
        vec![0.5, 0.5],
    )
}

fn run_em<E: SqlExecutor>(
    db: &mut E,
    cfg: &SqlemConfig,
    points: &[Vec<f64>],
    init: &GmmParams,
    telemetry: bool,
) -> SqlemRun {
    let mut session = EmSession::create(db, cfg, 2).unwrap();
    session.load_points(points).unwrap();
    session
        .initialize(&InitStrategy::Explicit(init.clone()))
        .unwrap();
    if telemetry {
        session.enable_telemetry().unwrap();
    }
    session.run().unwrap()
}

// ---------------------------------------------------------------------
// the tentpole: remote == embedded, bit for bit

#[test]
fn remote_hybrid_run_is_bit_identical_to_in_process() {
    let cfg = SqlemConfig::new(2, Strategy::Hybrid)
        .with_epsilon(1e-9)
        .with_max_iterations(12)
        .with_prefix("r1_");
    let (points, init) = (blobs(0.0), blob_init(0.0));

    let baseline = run_em(&mut Database::new(), &cfg, &points, &init, true);

    let server = TestServer::start(SharedDatabase::default(), ServerConfig::default());
    let mut conn = connect(&server.addr, "r1_");
    let remote = run_em(&mut conn, &cfg, &points, &init, true);
    drop(conn);
    server.stop();

    assert_eq!(remote.params, baseline.params, "final model diverged");
    assert_eq!(remote.llh_history, baseline.llh_history, "llh diverged");
    assert_eq!(remote.iterations, baseline.iterations);
    assert_eq!(remote.outcome, baseline.outcome);

    // Telemetry passthrough: the remote client pulls the *server's*
    // per-statement metrics, so the cost-model counters (which are
    // exact, unlike wall-clock) must agree entry for entry.
    assert_eq!(
        remote.iteration_reports.len(),
        baseline.iteration_reports.len()
    );
    for (r, b) in remote
        .iteration_reports
        .iter()
        .zip(&baseline.iteration_reports)
    {
        assert_eq!(r.n_scans, b.n_scans, "iteration {}", r.iteration);
        assert_eq!(r.pn_scans, b.pn_scans, "iteration {}", r.iteration);
        assert_eq!(
            r.temp_rows_materialized, b.temp_rows_materialized,
            "iteration {}",
            r.iteration
        );
    }
}

#[test]
fn doubles_cross_the_wire_bit_exact() {
    let server = TestServer::start(SharedDatabase::default(), ServerConfig::default());
    let mut conn = connect(&server.addr, "");
    conn.execute("CREATE TABLE bits (i BIGINT PRIMARY KEY, v DOUBLE)")
        .unwrap();
    let specials = [
        f64::MIN_POSITIVE,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        5e-324, // smallest subnormal
        -1234.5678901234567,
    ];
    let rows: Vec<Vec<Value>> = specials
        .iter()
        .enumerate()
        .map(|(i, &v)| vec![Value::Int(i as i64), Value::Double(v)])
        .collect();
    assert_eq!(conn.bulk_insert_rows("bits", rows).unwrap(), specials.len());
    let back = conn.execute("SELECT v FROM bits ORDER BY i").unwrap();
    for (row, &expect) in back.rows.iter().zip(&specials) {
        let Value::Double(got) = row[0] else {
            panic!("expected a double back, got {:?}", row[0]);
        };
        assert_eq!(got.to_bits(), expect.to_bits(), "{expect} was altered");
    }
    drop(conn);
    server.stop();
}

// ---------------------------------------------------------------------
// concurrency: two clients, one server

#[test]
fn concurrent_clients_match_their_embedded_runs() {
    let cfg_a = SqlemConfig::new(2, Strategy::Hybrid)
        .with_epsilon(1e-9)
        .with_max_iterations(10)
        .with_prefix("ca_");
    let cfg_b = cfg_a.clone().with_prefix("cb_");
    let (points_a, init_a) = (blobs(0.0), blob_init(0.0));
    let (points_b, init_b) = (blobs(3.5), blob_init(3.5));

    let base_a = run_em(&mut Database::new(), &cfg_a, &points_a, &init_a, false);
    let base_b = run_em(&mut Database::new(), &cfg_b, &points_b, &init_b, false);

    let server = TestServer::start(SharedDatabase::default(), ServerConfig::default());
    let addr_a = server.addr.clone();
    let addr_b = server.addr.clone();
    let ta = thread::spawn(move || {
        let mut conn = connect(&addr_a, "ca_");
        run_em(&mut conn, &cfg_a, &points_a, &init_a, false)
    });
    let tb = thread::spawn(move || {
        let mut conn = connect(&addr_b, "cb_");
        run_em(&mut conn, &cfg_b, &points_b, &init_b, false)
    });
    let run_a = ta.join().unwrap();
    let run_b = tb.join().unwrap();
    server.stop();

    assert_eq!(run_a.params, base_a.params, "client A diverged");
    assert_eq!(run_a.llh_history, base_a.llh_history, "client A llh");
    assert_eq!(run_b.params, base_b.params, "client B diverged");
    assert_eq!(run_b.llh_history, base_b.llh_history, "client B llh");
}

// ---------------------------------------------------------------------
// wire flakes and the retry policy

#[test]
fn dropped_connection_surfaces_as_transient() {
    // The server drops the very first accepted connection on the floor:
    // the dial must fail with an error the retry machinery classifies
    // as transient (a reconnect can fix it) — and the next dial works.
    let config = ServerConfig {
        drop_nth_connection: Some(1),
        ..ServerConfig::default()
    };
    let server = TestServer::start(SharedDatabase::default(), config);
    let err = RemoteConnection::connect(&server.addr, ClientConfig::default()).unwrap_err();
    assert!(err.is_transient(), "dropped dial must be transient: {err}");
    let mut conn = connect(&server.addr, "");
    assert!(!conn.has_table("nope").unwrap());
    drop(conn);
    server.stop();
}

#[test]
fn retry_policy_rides_out_idle_disconnect_and_dropped_redial() {
    const ITERS: usize = 5;
    let cfg = SqlemConfig::new(2, Strategy::Hybrid)
        .with_epsilon(0.0)
        .with_max_iterations(ITERS)
        .with_prefix("rf_")
        .with_retry(RetryPolicy::immediate(4));
    let (points, init) = (blobs(0.0), blob_init(0.0));

    // Baseline: the same manual iteration loop, embedded.
    let mut base_db = Database::new();
    let mut base = EmSession::create(&mut base_db, &cfg, 2).unwrap();
    base.load_points(&points).unwrap();
    base.initialize(&InitStrategy::Explicit(init.clone()))
        .unwrap();
    let base_llh: Vec<f64> = (0..ITERS).map(|_| base.iterate_once().unwrap()).collect();
    let base_params = base.params().unwrap();

    // Remote: the server hangs up on sessions idle for 100 ms AND drops
    // the second accepted connection (the re-dial) on the floor, so the
    // client needs *two* transient recoveries to land iteration 2.
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(100),
        drop_nth_connection: Some(2),
        ..ServerConfig::default()
    };
    let server = TestServer::start(SharedDatabase::default(), config);
    let mut conn = connect(&server.addr, "rf_");
    let mut session = EmSession::create(&mut conn, &cfg, 2).unwrap();
    session.load_points(&points).unwrap();
    session
        .initialize(&InitStrategy::Explicit(init.clone()))
        .unwrap();
    let mut llh = Vec::new();
    for i in 0..ITERS {
        if i == 1 {
            // Outlive the server's idle timeout: the next statement
            // finds a dead stream, and the first re-dial is dropped.
            thread::sleep(Duration::from_millis(300));
        }
        llh.push(session.iterate_once().unwrap());
    }
    let params = session.params().unwrap();
    assert!(session.retries() >= 1, "the disconnect must cost a retry");
    drop(session);
    drop(conn);
    server.stop();

    assert_eq!(llh, base_llh, "recovered run must match uninterrupted");
    assert_eq!(params, base_params);
}

// ---------------------------------------------------------------------
// durability composition: restart the server, resume the study

#[test]
fn durable_server_restart_resumes_from_checkpoint() {
    const FULL: usize = 5;
    let dir = std::env::temp_dir().join("sqlwire_restart_test");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let dir = dir.to_str().unwrap().to_string();

    let (points, init) = (blobs(0.0), blob_init(0.0));
    let cfg_full = SqlemConfig::new(2, Strategy::Hybrid)
        .with_epsilon(0.0)
        .with_max_iterations(FULL)
        .with_prefix("dr_")
        .with_checkpoints();
    let baseline = run_em(&mut Database::new(), &cfg_full, &points, &init, false);
    // The tiny dataset may hit an exact fixed point before the cap; all
    // that matters is that phase 1's cap of 2 leaves work outstanding.
    assert!(baseline.iterations > 2);

    // Phase 1: a durable server; the client completes 2 of 5 iterations
    // (checkpointing each one) before the server goes away entirely.
    let cfg_partial = cfg_full.clone().with_max_iterations(2);
    let db = Database::open_durable(&dir).unwrap();
    let server = TestServer::start(SharedDatabase::new(db), ServerConfig::default());
    let mut conn = connect(&server.addr, "dr_");
    let partial = run_em(&mut conn, &cfg_partial, &points, &init, false);
    assert_eq!(partial.iterations, 2);
    drop(conn);
    server.stop();

    // Phase 2: the database directory is all that survived. A restarted
    // server replays the WAL; a fresh client finds the checkpoint and
    // finishes the study — bit-identical to the uninterrupted run.
    let db = Database::open_durable(&dir).unwrap();
    let server = TestServer::start(SharedDatabase::new(db), ServerConfig::default());
    let mut conn = connect(&server.addr, "dr_");
    let mut session = EmSession::create(&mut conn, &cfg_full, 2).unwrap();
    session.load_points(&points).unwrap();
    let done = session
        .resume_from_checkpoint()
        .unwrap()
        .expect("the restarted server must still hold the checkpoint");
    assert_eq!(done, 2, "both completed iterations were checkpointed");
    let resumed = session.run().unwrap();
    drop(session);
    drop(conn);
    server.stop();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(resumed.llh_history, baseline.llh_history, "resumed llh");
    assert_eq!(resumed.params, baseline.params, "resumed final model");
}

// ---------------------------------------------------------------------
// handshake, admission, namespaces, cancellation

#[test]
fn protocol_version_mismatch_is_rejected_permanently() {
    let server = TestServer::start(SharedDatabase::default(), ServerConfig::default());
    let mut stream = TcpStream::connect(&server.addr).unwrap();
    let hello = Request::Hello {
        version: 9999,
        auth_token: String::new(),
        namespace: String::new(),
        resume_token: String::new(),
    };
    write_frame(&mut stream, &hello.encode()).unwrap();
    let resp = Response::decode(&read_frame(&mut stream).unwrap()).unwrap();
    let Response::Err(e) = resp else {
        panic!("expected a handshake rejection, got {resp:?}");
    };
    assert!(!e.is_transient(), "version skew never fixes itself: {e}");
    assert!(e.to_string().contains("version mismatch"), "{e}");
    drop(stream);
    server.stop();
}

#[test]
fn auth_token_mismatch_is_rejected_permanently() {
    let config = ServerConfig {
        auth_token: "sekrit".to_string(),
        ..ServerConfig::default()
    };
    let server = TestServer::start(SharedDatabase::default(), config);
    let err = RemoteConnection::connect(
        &server.addr,
        ClientConfig {
            auth_token: "wrong".to_string(),
            ..ClientConfig::default()
        },
    )
    .unwrap_err();
    assert!(!err.is_transient(), "{err}");
    assert!(err.to_string().contains("auth token"), "{err}");
    let ok = RemoteConnection::connect(
        &server.addr,
        ClientConfig {
            auth_token: "sekrit".to_string(),
            ..ClientConfig::default()
        },
    );
    assert!(ok.is_ok(), "the right token must get in");
    drop(ok);
    server.stop();
}

#[test]
fn held_namespace_is_rejected_transiently_until_released() {
    let server = TestServer::start(SharedDatabase::default(), ServerConfig::default());
    let conn1 = connect(&server.addr, "ns_");
    let err = RemoteConnection::connect(
        &server.addr,
        ClientConfig {
            namespace: "ns_".to_string(),
            ..ClientConfig::default()
        },
    )
    .unwrap_err();
    assert!(
        err.is_transient(),
        "a held namespace frees on disconnect: {err}"
    );
    assert!(err.to_string().contains("ns_"), "{err}");
    drop(conn1); // orderly goodbye frees the namespace
                 // The release is processed by the server session thread; give it a
                 // moment rather than asserting on a race.
    let mut attempt = None;
    for _ in 0..50 {
        match RemoteConnection::connect(
            &server.addr,
            ClientConfig {
                namespace: "ns_".to_string(),
                ..ClientConfig::default()
            },
        ) {
            Ok(c) => {
                attempt = Some(c);
                break;
            }
            Err(e) if e.is_transient() => thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("unexpected permanent rejection: {e}"),
        }
    }
    assert!(attempt.is_some(), "released namespace must be claimable");
    drop(attempt);
    server.stop();
}

#[test]
fn admission_control_rejects_transiently_over_capacity() {
    let config = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    let server = TestServer::start(SharedDatabase::default(), config);
    let conn1 = connect(&server.addr, "");
    let err = RemoteConnection::connect(&server.addr, ClientConfig::default()).unwrap_err();
    assert!(
        err.is_transient(),
        "backpressure must invite a retry: {err}"
    );
    assert!(err.to_string().contains("capacity"), "{err}");
    drop(conn1);
    server.stop();
}

#[test]
fn shed_connections_carry_retry_after_and_are_counted() {
    let config = ServerConfig {
        max_connections: 1,
        shed_retry_after: Duration::from_millis(40),
        ..ServerConfig::default()
    };
    let server = TestServer::start(SharedDatabase::default(), config);
    let conn = connect(&server.addr, "");
    for _ in 0..3 {
        let err = RemoteConnection::connect(&server.addr, ClientConfig::default()).unwrap_err();
        assert!(err.is_transient(), "shedding invites a retry: {err}");
        assert!(err.to_string().contains("retry after 40 ms"), "{err}");
    }
    assert_eq!(server.handle.shed_count(), 3, "every shed must be counted");

    // Releasing the slot readmits the next dial (the session teardown
    // races the redial, so poll briefly).
    drop(conn);
    let mut readmitted = None;
    for _ in 0..100 {
        match RemoteConnection::connect(&server.addr, ClientConfig::default()) {
            Ok(c) => {
                readmitted = Some(c);
                break;
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    let mut conn = readmitted.expect("slot never freed after disconnect");
    assert!(conn.execute("SELECT 1").is_ok());
    drop(conn);
    server.stop();
}

#[test]
fn session_memory_budget_relays_typed_exhaustion() {
    let config = ServerConfig {
        memory_budget: Some(64 * 1024),
        session_memory_budget: Some(256),
        ..ServerConfig::default()
    };
    let server = TestServer::start(SharedDatabase::default(), config);
    let mut conn = connect(&server.addr, "");
    conn.execute("CREATE TABLE big (a BIGINT PRIMARY KEY, b DOUBLE)")
        .unwrap();

    // Twenty staged rows blow the 256-byte session ceiling; the typed
    // error crosses the wire intact and stays transient backpressure.
    let rows: Vec<String> = (0..20).map(|i| format!("({i}, {i}.5)")).collect();
    let err = conn
        .execute(&format!("INSERT INTO big VALUES {}", rows.join(", ")))
        .unwrap_err();
    assert!(
        matches!(err, sqlengine::Error::ResourceExhausted { .. }),
        "expected typed exhaustion over the wire, got: {err}"
    );
    assert!(err.is_transient(), "exhaustion is backpressure: {err}");

    // Charges release at statement end: right-sized statements still fit.
    conn.execute("INSERT INTO big VALUES (1, 1.5)").unwrap();
    let r = conn.execute("SELECT count(*) FROM big").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    conn.execute("DROP TABLE big").unwrap();

    // The global pool saw the session's charges: the gauge is real.
    let peak = server.handle.peak_memory_bytes();
    assert!(peak.is_some_and(|p| p > 0), "global peak gauge: {peak:?}");
    drop(conn);
    server.stop();
}

#[test]
fn cancel_kills_the_target_session() {
    let server = TestServer::start(SharedDatabase::default(), ServerConfig::default());
    let mut victim = connect(&server.addr, "");
    let mut killer = connect(&server.addr, "");
    assert!(victim.execute("SELECT 1").is_ok());

    assert!(killer.cancel_session(victim.session_id()).unwrap());
    let err = victim.execute("SELECT 1").unwrap_err();
    assert!(!err.is_transient(), "{err}");
    assert!(err.to_string().contains("cancelled"), "{err}");

    // Cancelling a session that never existed reports false.
    assert!(!killer.cancel_session(424242).unwrap());
    drop(victim);
    drop(killer);
    server.stop();
}

#[test]
fn statement_lock_timeout_is_transient_backpressure() {
    let shared = SharedDatabase::default();
    let config = ServerConfig {
        lock_timeout: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let server = TestServer::start(shared.clone(), config);
    let mut conn = connect(&server.addr, "");

    // Hold the database lock longer than the server's bounded wait.
    let blocker = shared.clone();
    let hold = thread::spawn(move || {
        blocker.with(|_db| thread::sleep(Duration::from_millis(400)));
    });
    thread::sleep(Duration::from_millis(50)); // let the blocker win the lock
    let err = conn.execute("SELECT 1").unwrap_err();
    assert!(err.is_transient(), "a busy server invites a retry: {err}");
    assert!(err.to_string().contains("timeout"), "{err}");
    hold.join().unwrap();

    // Once the lock frees, the same connection works again.
    assert!(conn.execute("SELECT 1").is_ok());
    drop(conn);
    server.stop();
}

// ---------------------------------------------------------------------
// exactly-once: idempotency keys, resume tokens, deadlines

/// Raw-wire handshake helper: returns the stream and the issued token.
fn raw_handshake(addr: &str, namespace: &str, resume_token: &str) -> (TcpStream, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let hello = Request::Hello {
        version: PROTOCOL_VERSION,
        auth_token: String::new(),
        namespace: namespace.to_string(),
        resume_token: resume_token.to_string(),
    };
    write_frame(&mut stream, &hello.encode()).unwrap();
    let resp = Response::decode(&read_frame(&mut stream).unwrap()).unwrap();
    let Response::HelloAck { resume_token, .. } = resp else {
        panic!("expected HelloAck, got {resp:?}");
    };
    (stream, resume_token)
}

fn raw_roundtrip(stream: &mut TcpStream, req: &Request) -> Response {
    write_frame(stream, &req.encode()).unwrap();
    Response::decode(&read_frame(stream).unwrap()).unwrap()
}

#[test]
fn duplicate_delivery_is_acked_from_the_reply_cache() {
    let server = TestServer::start(SharedDatabase::default(), ServerConfig::default());
    let (mut stream, token) = raw_handshake(&server.addr, "", "");
    assert!(!token.is_empty(), "the server must issue a resume token");

    let create = Request::Query {
        meta: StmtMeta::seq(0),
        sql: "CREATE TABLE dup (i BIGINT PRIMARY KEY)".into(),
    };
    assert!(matches!(
        raw_roundtrip(&mut stream, &create),
        Response::Rows(_)
    ));

    // Deliver the same keyed INSERT twice (what a duplicating network
    // or a replaying client produces). The second must be acked from
    // the reply cache — bit-identical — and never re-executed: a
    // re-execution would raise a duplicate-key error.
    let insert = Request::Query {
        meta: StmtMeta::seq(1),
        sql: "INSERT INTO dup VALUES (1)".into(),
    };
    let first = raw_roundtrip(&mut stream, &insert);
    assert!(matches!(first, Response::Rows(_)), "{first:?}");
    let second = raw_roundtrip(&mut stream, &insert);
    assert!(
        same_encoding(&first, &second),
        "replay must be bit-identical: {first:?} vs {second:?}"
    );

    // Stale sequence number (the CREATE) after newer traffic: still
    // acked from the window, not re-executed (which would raise a
    // duplicate-table error).
    let stale = raw_roundtrip(&mut stream, &create);
    assert!(matches!(stale, Response::Rows(_)), "{stale:?}");

    // Exactly one row made it in.
    let count = raw_roundtrip(
        &mut stream,
        &Request::TableRows {
            table: "dup".into(),
        },
    );
    let Response::Count(n) = count else {
        panic!("expected a count, got {count:?}");
    };
    assert_eq!(n, 1, "the duplicate delivery must not double-insert");
    drop(stream);
    server.stop();
}

#[test]
fn error_replies_replay_identically_from_the_cache() {
    let server = TestServer::start(SharedDatabase::default(), ServerConfig::default());
    let (mut stream, _token) = raw_handshake(&server.addr, "", "");
    let bad = Request::Query {
        meta: StmtMeta::seq(0),
        sql: "SELECT 1 FROM no_such_table".into(),
    };
    let first = raw_roundtrip(&mut stream, &bad);
    assert!(matches!(first, Response::Err(_)), "{first:?}");
    let second = raw_roundtrip(&mut stream, &bad);
    assert!(
        same_encoding(&first, &second),
        "a replayed failure must reproduce the same error"
    );
    drop(stream);
    server.stop();
}

#[test]
fn resume_token_survives_reconnect_and_keeps_the_dedup_window() {
    let server = TestServer::start(SharedDatabase::default(), ServerConfig::default());

    // Session 1: issue a token, execute a keyed statement.
    let (stream1, token) = raw_handshake(&server.addr, "rt_", "");
    let mut s1 = stream1;
    let create = Request::Query {
        meta: StmtMeta::seq(0),
        sql: "CREATE TABLE rt_t (i BIGINT PRIMARY KEY)".into(),
    };
    assert!(matches!(raw_roundtrip(&mut s1, &create), Response::Rows(_)));

    // Session 2 presents the token WITHOUT an orderly goodbye on
    // session 1: the server must cancel the zombie, reattach the
    // namespace, and keep the dedup window — replaying seq 0 is acked
    // from the cache instead of raising a duplicate-table error.
    let (mut s2, token2) = raw_handshake(&server.addr, "rt_", &token);
    assert_eq!(token2, token, "reattach echoes the presented token");
    let replay = raw_roundtrip(&mut s2, &create);
    assert!(
        matches!(replay, Response::Rows(_)),
        "replay after reconnect must be served, got {replay:?}"
    );
    drop(s1);
    drop(s2);
    server.stop();
}

#[test]
fn resume_token_bound_to_other_namespace_is_rejected() {
    let server = TestServer::start(SharedDatabase::default(), ServerConfig::default());
    let (_s1, token) = raw_handshake(&server.addr, "nsa_", "");
    let mut stream = TcpStream::connect(&server.addr).unwrap();
    let hello = Request::Hello {
        version: PROTOCOL_VERSION,
        auth_token: String::new(),
        namespace: "nsb_".to_string(),
        resume_token: token,
    };
    write_frame(&mut stream, &hello.encode()).unwrap();
    let resp = Response::decode(&read_frame(&mut stream).unwrap()).unwrap();
    let Response::Err(e) = resp else {
        panic!("expected a rejection, got {resp:?}");
    };
    assert!(!e.is_transient(), "namespace/token mismatch is permanent");
    drop(stream);
    server.stop();
}

#[test]
fn client_replays_in_flight_statement_after_idle_disconnect() {
    // The server hangs up idle sessions after 100 ms. The client's
    // first post-sleep statement hits a dead wire (transient error);
    // the *retried* statement replays under the same sequence number
    // through the resumed token — observable as: no duplicate-key
    // error, exactly one row, same resume token.
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let server = TestServer::start(SharedDatabase::default(), config);
    let mut conn = connect(&server.addr, "ri_");
    conn.execute("CREATE TABLE ri_t (i BIGINT PRIMARY KEY)")
        .unwrap();
    let token_before = conn.resume_token().to_string();
    thread::sleep(Duration::from_millis(300));
    // Dead wire: the first attempt fails transiently…
    let err = conn.execute("INSERT INTO ri_t VALUES (1)").unwrap_err();
    assert!(err.is_transient(), "{err}");
    // …and the bare retry succeeds (replay or fresh execution — either
    // way exactly once).
    conn.execute("INSERT INTO ri_t VALUES (1)").unwrap();
    assert_eq!(conn.table_rows("ri_t").unwrap(), 1);
    assert_eq!(conn.resume_token(), token_before, "token is stable");
    drop(conn);
    server.stop();
}

#[test]
fn statement_deadline_surfaces_as_typed_transient_error() {
    let shared = SharedDatabase::default();
    let server = TestServer::start(shared.clone(), ServerConfig::default());
    let mut conn = RemoteConnection::connect(
        &server.addr,
        ClientConfig {
            statement_deadline: Some(Duration::from_millis(100)),
            ..ClientConfig::default()
        },
    )
    .unwrap();

    // Hold the database lock well past the client's budget: the server
    // must give up at the *deadline* (not its own 30 s lock timeout)
    // and answer with the typed deadline error.
    let blocker = shared.clone();
    let hold = thread::spawn(move || {
        blocker.with(|_db| thread::sleep(Duration::from_millis(600)));
    });
    thread::sleep(Duration::from_millis(50)); // let the blocker win the lock
    let start = std::time::Instant::now();
    let err = conn.execute("SELECT 1").unwrap_err();
    let waited = start.elapsed();
    assert!(
        matches!(err, sqlengine::Error::Deadline { .. }),
        "expected a typed deadline error, got {err}"
    );
    assert!(err.is_transient(), "deadline errors invite a retry: {err}");
    assert!(err.to_string().contains("100"), "budget in message: {err}");
    assert!(
        waited < Duration::from_millis(500),
        "must give up at the deadline, waited {waited:?}"
    );
    hold.join().unwrap();

    // With the lock free the same statement fits the budget again.
    assert!(conn.execute("SELECT 1").is_ok());
    drop(conn);
    server.stop();
}

//! Property tests for the wire codec: frames and message bodies.
//!
//! Four invariants, over arbitrary messages and byte images:
//!
//! 1. **Round-trip**: every encodable [`Request`]/[`Response`] decodes
//!    back to a message with the identical encoding — doubles included,
//!    bit for bit (NaNs, infinities, subnormals, `-0.0`).
//! 2. **Frame round-trip**: any payload survives framing verbatim.
//! 3. **Truncation**: cutting a framed message at *any* byte yields a
//!    transient error (a reconnect can fix a torn stream) — never a
//!    short or altered payload.
//! 4. **Flip detection**: flipping any single bit of a framed message
//!    is rejected — every byte of a frame is load-bearing (length,
//!    checksum, payload), so nothing can be smuggled past the CRC.
//!
//! Decoders must also never panic on arbitrary garbage: a malicious or
//! corrupt peer gets an [`Error`], not a crashed server.
//!
//! (Gated behind the `proptest` feature: restore the proptest
//! dev-dependency to run.)

use proptest::prelude::*;
use sqlengine::{Error, QueryResult, Value};
use sqlwire::frame::{encode_frame, read_frame};
use sqlwire::proto::{same_encoding, Request, Response};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Arbitrary bit patterns: NaNs, infinities, subnormals and -0.0
        // are all legal doubles and must survive bit-exact.
        any::<u64>().prop_map(|bits| Value::Double(f64::from_bits(bits))),
        "[ -~]{0,24}".prop_map(|s| Value::Str(s.into())),
    ]
}

fn arb_rows() -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(proptest::collection::vec(arb_value(), 0..5), 0..6)
}

fn arb_request() -> impl Strategy<Value = Request> {
    let simple = prop_oneof![
        Just(Request::ClearPrepared),
        Just(Request::CatalogSnapshot),
        Just(Request::MetricsLen),
        Just(Request::NoteRetry),
        Just(Request::Goodbye),
        any::<u64>().prop_map(|id| Request::ExecutePrepared { id }),
        any::<u64>().prop_map(|from| Request::MetricsSince { from }),
        any::<u64>().prop_map(|session| Request::Cancel { session }),
        any::<bool>().prop_map(|on| Request::SetMetrics { on }),
    ];
    let composite = prop_oneof![
        (any::<u32>(), "[ -~]{0,16}", "[a-z0-9_]{0,12}").prop_map(
            |(version, auth_token, namespace)| Request::Hello {
                version,
                auth_token,
                namespace,
            }
        ),
        // Statement text is opaque to the codec; any printable string
        // (quotes, semicolons, whitespace) must round-trip verbatim.
        "[ -~]{0,120}".prop_map(|sql| Request::Query { sql }),
        proptest::collection::vec("[ -~]{0,60}", 0..6)
            .prop_map(|statements| Request::Prepare { statements }),
        ("[a-z][a-z0-9_]{0,10}", arb_rows())
            .prop_map(|(table, rows)| Request::BulkInsert { table, rows }),
        "[a-z][a-z0-9_]{0,10}".prop_map(|table| Request::TableRows { table }),
        "[a-z][a-z0-9_]{0,10}".prop_map(|table| Request::HasTable { table }),
    ];
    prop_oneof![simple, composite]
}

/// Errors the relay must carry faithfully: the structural variants the
/// retry/fallback machinery dispatches on, plus the opaque remainder.
fn arb_error() -> impl Strategy<Value = Error> {
    prop_oneof![
        (any::<u16>(), any::<u16>()).prop_map(|(len, max)| Error::StatementTooLong {
            len: len as usize,
            max: max as usize,
        }),
        "[ -~]{0,40}".prop_map(Error::Arithmetic),
        "[ -~]{0,40}".prop_map(Error::Remote),
        ("[a-z ]{0,16}", "[ -~]{0,40}", any::<bool>()).prop_map(|(ctx, msg, transient)| {
            if transient {
                Error::net_transient(&ctx, msg)
            } else {
                Error::net_permanent(&ctx, msg)
            }
        }),
    ]
}

fn arb_query_result() -> impl Strategy<Value = QueryResult> {
    (
        proptest::collection::vec("[a-z][a-z0-9_]{0,8}", 0..5),
        arb_rows(),
        any::<u32>(),
    )
        .prop_map(|(columns, rows, affected)| QueryResult {
            columns,
            rows: rows.into_iter().map(|r| r.into()).collect(),
            rows_affected: affected as usize,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        any::<bool>().prop_map(Response::Bool),
        any::<u64>().prop_map(Response::Count),
        arb_query_result().prop_map(Response::Rows),
        arb_error().prop_map(Response::Err),
        proptest::collection::vec(any::<u64>(), 0..8).prop_map(Response::PreparedIds),
        (any::<u64>(), arb_error())
            .prop_map(|(index, error)| Response::PrepareErr { index, error }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrip_is_bit_exact(req in arb_request()) {
        let bytes = req.encode();
        let back = Request::decode(&bytes).unwrap();
        // Encoding equality is the bit-exactness oracle: PartialEq on
        // doubles would treat NaN != NaN, the byte image does not.
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn response_roundtrip_is_bit_exact(resp in arb_response()) {
        let bytes = resp.encode();
        let back = Response::decode(&bytes).unwrap();
        prop_assert!(same_encoding(&back, &resp));
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn frame_roundtrip_preserves_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        let framed = encode_frame(&payload);
        let got = read_frame(&mut &framed[..]).unwrap();
        prop_assert_eq!(got, payload);
    }

    #[test]
    fn frame_truncation_is_transient(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        cut_frac in 0.0f64..1.0f64,
    ) {
        let framed = encode_frame(&payload);
        // Strict prefix: cut strictly before the end.
        let cut = ((framed.len() - 1) as f64 * cut_frac) as usize;
        match read_frame(&mut &framed[..cut]) {
            Err(e) => prop_assert!(
                e.is_transient(),
                "a torn stream must invite a reconnect, got: {}", e
            ),
            Ok(_) => prop_assert!(false, "truncated frame decoded at cut {}", cut),
        }
    }

    #[test]
    fn frame_bit_flip_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        pos_frac in 0.0f64..1.0f64,
        bit in 0u8..8u8,
    ) {
        let mut framed = encode_frame(&payload);
        let pos = ((framed.len() - 1) as f64 * pos_frac) as usize;
        framed[pos] ^= 1 << bit;
        // Every byte is load-bearing: length prefix, CRC, or payload.
        prop_assert!(
            read_frame(&mut &framed[..]).is_err(),
            "flip at byte {} bit {} went undetected", pos, bit
        );
    }

    #[test]
    fn decoders_never_panic_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        // Err or (coincidentally) Ok are both fine; panicking is not.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }
}

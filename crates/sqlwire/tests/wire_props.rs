//! Property tests for the wire codec: frames and message bodies.
//!
//! Four invariants, over arbitrary messages and byte images:
//!
//! 1. **Round-trip**: every encodable [`Request`]/[`Response`] decodes
//!    back to a message with the identical encoding — doubles included,
//!    bit for bit (NaNs, infinities, subnormals, `-0.0`).
//! 2. **Frame round-trip**: any payload survives framing verbatim.
//! 3. **Truncation**: cutting a framed message at *any* byte yields a
//!    transient error (a reconnect can fix a torn stream) — never a
//!    short or altered payload.
//! 4. **Flip detection**: flipping any single bit of a framed message
//!    is rejected — every byte of a frame is load-bearing (length,
//!    checksum, payload), so nothing can be smuggled past the CRC.
//!
//! Decoders must also never panic on arbitrary garbage: a malicious or
//! corrupt peer gets an [`Error`], not a crashed server.
//!
//! On top of the codec, the exactly-once machinery gets its own
//! properties: for *any* interleaving of recorded replies, duplicated
//! and stale sequence numbers are answered from the [`ReplyCache`] with
//! the bit-identical original reply (or a proven-applied
//! reconciliation) — never re-execution — including across the
//! cache-rebuild a server restart performs.
//!
//! (Gated behind the `proptest` feature: restore the proptest
//! dev-dependency to run.)

use proptest::prelude::*;
use sqlengine::{Error, QueryResult, Value};
use sqlwire::frame::{encode_frame, read_frame};
use sqlwire::proto::{same_encoding, Request, Response, StmtMeta};
use sqlwire::session::{Admit, ReplyCache};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Arbitrary bit patterns: NaNs, infinities, subnormals and -0.0
        // are all legal doubles and must survive bit-exact.
        any::<u64>().prop_map(|bits| Value::Double(f64::from_bits(bits))),
        "[ -~]{0,24}".prop_map(|s| Value::Str(s.into())),
    ]
}

fn arb_rows() -> impl Strategy<Value = Vec<Vec<Value>>> {
    proptest::collection::vec(proptest::collection::vec(arb_value(), 0..5), 0..6)
}

fn arb_meta() -> impl Strategy<Value = StmtMeta> {
    // Sequence numbers and deadline budgets cover the full u64 range:
    // the codec must not care about semantic plausibility.
    (any::<u64>(), any::<u64>()).prop_map(|(seq, deadline_ms)| StmtMeta { seq, deadline_ms })
}

fn arb_request() -> impl Strategy<Value = Request> {
    let simple = prop_oneof![
        Just(Request::ClearPrepared),
        Just(Request::CatalogSnapshot),
        Just(Request::MetricsLen),
        Just(Request::NoteRetry),
        Just(Request::Goodbye),
        (arb_meta(), any::<u64>()).prop_map(|(meta, id)| Request::ExecutePrepared { meta, id }),
        any::<u64>().prop_map(|from| Request::MetricsSince { from }),
        any::<u64>().prop_map(|session| Request::Cancel { session }),
        any::<bool>().prop_map(|on| Request::SetMetrics { on }),
    ];
    let composite = prop_oneof![
        (
            any::<u32>(),
            "[ -~]{0,16}",
            "[a-z0-9_]{0,12}",
            "[a-z0-9:-]{0,24}"
        )
            .prop_map(
                |(version, auth_token, namespace, resume_token)| Request::Hello {
                    version,
                    auth_token,
                    namespace,
                    resume_token,
                }
            ),
        // Statement text is opaque to the codec; any printable string
        // (quotes, semicolons, whitespace) must round-trip verbatim.
        (arb_meta(), "[ -~]{0,120}").prop_map(|(meta, sql)| Request::Query { meta, sql }),
        proptest::collection::vec("[ -~]{0,60}", 0..6)
            .prop_map(|statements| Request::Prepare { statements }),
        (arb_meta(), "[a-z][a-z0-9_]{0,10}", arb_rows())
            .prop_map(|(meta, table, rows)| Request::BulkInsert { meta, table, rows }),
        "[a-z][a-z0-9_]{0,10}".prop_map(|table| Request::TableRows { table }),
        "[a-z][a-z0-9_]{0,10}".prop_map(|table| Request::HasTable { table }),
    ];
    prop_oneof![simple, composite]
}

/// Errors the relay must carry faithfully: the structural variants the
/// retry/fallback machinery dispatches on, plus the opaque remainder.
fn arb_error() -> impl Strategy<Value = Error> {
    prop_oneof![
        (any::<u16>(), any::<u16>()).prop_map(|(len, max)| Error::StatementTooLong {
            len: len as usize,
            max: max as usize,
        }),
        "[ -~]{0,40}".prop_map(Error::Arithmetic),
        "[ -~]{0,40}".prop_map(Error::Remote),
        ("[a-z ]{0,16}", "[ -~]{0,40}", any::<bool>()).prop_map(|(ctx, msg, transient)| {
            if transient {
                Error::net_transient(&ctx, msg)
            } else {
                Error::net_permanent(&ctx, msg)
            }
        }),
    ]
}

fn arb_query_result() -> impl Strategy<Value = QueryResult> {
    (
        proptest::collection::vec("[a-z][a-z0-9_]{0,8}", 0..5),
        arb_rows(),
        any::<u32>(),
    )
        .prop_map(|(columns, rows, affected)| QueryResult {
            columns,
            rows: rows.into_iter().map(|r| r.into()).collect(),
            rows_affected: affected as usize,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        Just(Response::ReplayApplied),
        any::<bool>().prop_map(Response::Bool),
        any::<u64>().prop_map(Response::Count),
        arb_query_result().prop_map(Response::Rows),
        arb_error().prop_map(Response::Err),
        proptest::collection::vec(any::<u64>(), 0..8).prop_map(Response::PreparedIds),
        (any::<u64>(), arb_error())
            .prop_map(|(index, error)| Response::PrepareErr { index, error }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrip_is_bit_exact(req in arb_request()) {
        let bytes = req.encode();
        let back = Request::decode(&bytes).unwrap();
        // Encoding equality is the bit-exactness oracle: PartialEq on
        // doubles would treat NaN != NaN, the byte image does not.
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn response_roundtrip_is_bit_exact(resp in arb_response()) {
        let bytes = resp.encode();
        let back = Response::decode(&bytes).unwrap();
        prop_assert!(same_encoding(&back, &resp));
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn frame_roundtrip_preserves_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        let framed = encode_frame(&payload);
        let got = read_frame(&mut &framed[..]).unwrap();
        prop_assert_eq!(got, payload);
    }

    #[test]
    fn frame_truncation_is_transient(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        cut_frac in 0.0f64..1.0f64,
    ) {
        let framed = encode_frame(&payload);
        // Strict prefix: cut strictly before the end.
        let cut = ((framed.len() - 1) as f64 * cut_frac) as usize;
        match read_frame(&mut &framed[..cut]) {
            Err(e) => prop_assert!(
                e.is_transient(),
                "a torn stream must invite a reconnect, got: {}", e
            ),
            Ok(_) => prop_assert!(false, "truncated frame decoded at cut {}", cut),
        }
    }

    #[test]
    fn frame_bit_flip_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        pos_frac in 0.0f64..1.0f64,
        bit in 0u8..8u8,
    ) {
        let mut framed = encode_frame(&payload);
        let pos = ((framed.len() - 1) as f64 * pos_frac) as usize;
        framed[pos] ^= 1 << bit;
        // Every byte is load-bearing: length prefix, CRC, or payload.
        prop_assert!(
            read_frame(&mut &framed[..]).is_err(),
            "flip at byte {} bit {} went undetected", pos, bit
        );
    }

    #[test]
    fn decoders_never_panic_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        // Err or (coincidentally) Ok are both fine; panicking is not.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Exactly-once, cache side: record an arbitrary conversation of
    /// replies (any mix of results, errors, applied bits) into a cache
    /// of arbitrary window size, then replay *every* sequence number
    /// seen so far, in arbitrary order. Each must be answered without
    /// re-execution:
    ///
    /// * still cached → the bit-identical original reply;
    /// * evicted but at/below the applied watermark → `ProvenApplied`;
    /// * evicted above the watermark → `NotApplied` (re-executing a
    ///   statement proven effect-free is sound).
    ///
    /// A sequence number beyond everything recorded is `Fresh`.
    #[test]
    fn duplicated_and_stale_sequences_are_acked_from_the_cache(
        replies in proptest::collection::vec((arb_response(), any::<bool>()), 1..40),
        window in 1usize..12,
        probe_order in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        let mut cache = ReplyCache::new(window);
        for (seq, (reply, applied)) in replies.iter().enumerate() {
            // The server only records what admit() classified Fresh.
            prop_assert!(matches!(cache.admit(seq as u64), Admit::Fresh));
            cache.record(seq as u64, reply.clone(), *applied);

            // Duplicate delivery of the statement just executed — the
            // most common chaos outcome (ack lost, client resends) —
            // must echo the identical reply bytes.
            match cache.admit(seq as u64) {
                Admit::Replay(r) => prop_assert!(same_encoding(&r, reply)),
                other => prop_assert!(false, "just-recorded seq not replayed: {:?}", other),
            }
        }

        let n = replies.len() as u64;
        let applied_mark = replies.iter().enumerate()
            .filter(|(_, (_, applied))| *applied)
            .map(|(seq, _)| seq as u64)
            .max();
        prop_assert_eq!(cache.applied_watermark(), applied_mark);
        for probe in probe_order {
            let seq = probe % (n + 2); // every recorded seq + two fresh ones
            match cache.admit(seq) {
                Admit::Fresh => prop_assert!(seq >= n, "recorded seq {} came back Fresh", seq),
                Admit::Replay(r) => {
                    prop_assert!(seq < n);
                    // A replay is always the original reply, bit for bit.
                    prop_assert!(same_encoding(&r, &replies[seq as usize].0));
                }
                Admit::ProvenApplied => {
                    prop_assert!(applied_mark.is_some_and(|a| seq <= a),
                        "ProvenApplied for seq {} above watermark {:?}", seq, applied_mark);
                }
                Admit::NotApplied => {
                    // Only for evicted entries above the applied
                    // watermark — never for one still in the window.
                    prop_assert!(seq < n);
                    prop_assert!(seq < n.saturating_sub(window as u64),
                        "NotApplied for seq {} still inside window", seq);
                    prop_assert!(!applied_mark.is_some_and(|a| seq <= a));
                }
            }
        }
    }

    /// Exactly-once across a server restart: the rebuilt cache has no
    /// reply bytes, only the recovered applied watermark and highest
    /// intent. Every replay at/below the watermark must reconcile as
    /// `ProvenApplied` (never re-execute a committed mutation); every
    /// replay between watermark and the highest intent is proven
    /// effect-free and may re-execute; everything beyond is fresh.
    #[test]
    fn recovered_cache_never_reexecutes_proven_mutations(
        applied in proptest::option::of(0u64..64),
        intent_gap in 0u64..16,
        window in 1usize..12,
        probes in proptest::collection::vec(0u64..96, 1..32),
    ) {
        let max_intent = applied.map(|a| a + intent_gap).or(
            if intent_gap > 0 { Some(intent_gap - 1) } else { None });
        let mut cache = ReplyCache::recovered(window, applied, max_intent);
        let expected = cache.expected();
        for seq in probes {
            match cache.admit(seq) {
                Admit::Fresh => prop_assert!(seq >= expected),
                Admit::Replay(_) =>
                    prop_assert!(false, "recovery cannot resurrect reply bytes"),
                Admit::ProvenApplied =>
                    prop_assert!(applied.is_some_and(|a| seq <= a)),
                Admit::NotApplied => {
                    prop_assert!(seq < expected);
                    prop_assert!(!applied.is_some_and(|a| seq <= a));
                }
            }
        }
    }
}

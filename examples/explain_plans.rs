//! Shows how the engine executes each generated E/M-step statement —
//! `EXPLAIN` output for the hybrid strategy's SELECT bodies. This
//! substantiates the paper's §1.4 claim that the generated statements
//! "can be easily optimized and executed in parallel": every join is a
//! hash join on RID/v or a broadcast of a tiny parameter table.
//!
//! ```text
//! cargo run --release --example explain_plans
//! ```

use datagen::generate_dataset;
use emcore::init::InitStrategy;
use sqlem::{EmSession, SqlemConfig, Strategy};
use sqlengine::Database;

fn main() {
    let (n, p, k) = (1_000, 3, 2);
    let data = generate_dataset(n, p, k, 1);
    let mut db = Database::new();
    let config = SqlemConfig::new(k, Strategy::Hybrid).with_max_iterations(1);
    let mut session = EmSession::create(&mut db, &config, p).unwrap();
    session.load_points(&data.points).unwrap();
    session
        .initialize(&InitStrategy::Random { seed: 1 })
        .unwrap();
    // One iteration so every work table is populated.
    session.iterate_once().unwrap();
    let script = session.script();
    drop(session);

    for stmt in script {
        // EXPLAIN applies to the SELECT bodies of INSERT…SELECT.
        let Some(select_at) = stmt.sql.find("SELECT") else {
            continue;
        };
        if !stmt.sql.starts_with("INSERT") {
            continue;
        }
        let select_sql = &stmt.sql[select_at..];
        match db.execute(&format!("EXPLAIN {select_sql}")) {
            Ok(plan) => {
                println!("-- {}", stmt.purpose);
                for row in &plan.rows {
                    println!("   {}", row[0]);
                }
                println!();
            }
            Err(e) => println!("-- {} (not explainable: {e})\n", stmt.purpose),
        }
    }
}

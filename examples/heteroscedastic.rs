//! Per-cluster covariances in SQL — the §2.1 extension ("not hard to
//! extend this work to handle a different Σ for each cluster") — on data
//! the shared-R model cannot describe: one tight cluster, one diffuse
//! cluster.
//!
//! ```text
//! cargo run --release --example heteroscedastic
//! ```

use datagen::normal::Normal;
use emcore::emfull::FullParams;
use emcore::init::InitStrategy;
use emcore::GmmParams;
use prng::StdRng;
use sqlem::{EmSession, PerClusterConfig, PerClusterSession, SqlemConfig, Strategy};
use sqlengine::Database;

fn main() {
    // A tight service cluster (σ ≈ 0.5) and a diffuse one (σ ≈ 10).
    let mut rng = StdRng::seed_from_u64(3);
    let mut normal = Normal::new();
    let mut pts = Vec::new();
    for _ in 0..2_000 {
        pts.push(vec![
            normal.sample_with(&mut rng, 0.0, 0.5),
            normal.sample_with(&mut rng, 0.0, 0.5),
        ]);
        pts.push(vec![
            normal.sample_with(&mut rng, 30.0, 10.0),
            normal.sample_with(&mut rng, -20.0, 6.0),
        ]);
    }
    println!(
        "{} points: tight blob at (0,0), diffuse blob at (30,-20)\n",
        pts.len()
    );

    // Shared global R (the paper's base model).
    let mut db1 = Database::new();
    let shared_cfg = SqlemConfig::new(2, Strategy::Hybrid)
        .with_epsilon(1e-6)
        .with_max_iterations(30);
    let mut shared = EmSession::create(&mut db1, &shared_cfg, 2).unwrap();
    shared.load_points(&pts).unwrap();
    shared
        .initialize(&InitStrategy::Explicit(GmmParams::new(
            vec![vec![5.0, 0.0], vec![25.0, -15.0]],
            vec![100.0, 100.0],
            vec![0.5, 0.5],
        )))
        .unwrap();
    let shared_run = shared.run().unwrap();
    println!(
        "shared-R SQLEM:   llh = {:>12.1}, pooled variances = {:?}",
        shared_run.llh_history.last().unwrap(),
        shared_run
            .params
            .cov
            .iter()
            .map(|v| (v * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );

    // Per-cluster R (the extension).
    let mut db2 = Database::new();
    let mut full_cfg = PerClusterConfig::new(2);
    full_cfg.epsilon = 1e-6;
    full_cfg.max_iterations = 30;
    let mut full = PerClusterSession::create(&mut db2, &full_cfg, 2).unwrap();
    full.load_points(&pts).unwrap();
    full.set_params(&FullParams {
        means: vec![vec![5.0, 0.0], vec![25.0, -15.0]],
        covs: vec![vec![100.0, 100.0], vec![100.0, 100.0]],
        weights: vec![0.5, 0.5],
    })
    .unwrap();
    let full_run = full.run().unwrap();
    println!(
        "per-cluster SQLEM: llh = {:>12.1}",
        full_run.llh_history.last().unwrap()
    );
    for (j, (m, c)) in full_run
        .params
        .means
        .iter()
        .zip(&full_run.params.covs)
        .enumerate()
    {
        println!(
            "  cluster {j}: mean ≈ ({:.1}, {:.1}), variances ≈ ({:.2}, {:.2})",
            m[0], m[1], c[0], c[1]
        );
    }
    println!(
        "\nΔllh (per-cluster − shared) = {:.1} — the free Σ_j model fits \
         heteroscedastic data strictly better,\nat the robustness cost §2.5 \
         warns about (per-cluster covariances collapse to zero more easily).",
        full_run.llh_history.last().unwrap() - shared_run.llh_history.last().unwrap()
    );
}

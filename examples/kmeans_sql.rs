//! SQL K-means — the paper's §2.2 simplification of SQLEM (`W = 1/k,
//! R = I`, hard assignments) — validated against the in-memory Lloyd's
//! algorithm on the same data and initialization.
//!
//! ```text
//! cargo run --release --example kmeans_sql
//! ```

use datagen::generate_dataset;
use sqlem::{KmeansConfig, KmeansSession};
use sqlengine::Database;

fn main() {
    let (n, p, k) = (5_000, 4, 5);
    let data = generate_dataset(n, p, k, 21);

    // Seed centroids from k spread-out data points.
    let step = n / k;
    let init: Vec<Vec<f64>> = (0..k).map(|j| data.points[j * step].clone()).collect();

    let mut db = Database::new();
    let config = KmeansConfig::new(k);
    let mut session = KmeansSession::create(&mut db, &config, p).expect("create");
    session.load_points(&data.points).expect("load");
    session.set_centroids(&init).expect("init");
    let sql_run = session.run().expect("run");
    println!(
        "SQL K-means: {} iterations, converged = {}, final SSE = {:.1}",
        sql_run.iterations,
        sql_run.converged,
        sql_run.sse_history.last().unwrap()
    );

    let mem_run = emcore::kmeans::kmeans_from(&data.points, init, 20);
    println!(
        "in-memory K-means: {} iterations, inertia = {:.1}",
        mem_run.iterations, mem_run.inertia
    );

    // Same algorithm, same start → same centroids.
    let mut worst: f64 = 0.0;
    for (a, b) in sql_run.centroids.iter().zip(&mem_run.centroids) {
        for (x, y) in a.iter().zip(b) {
            worst = worst.max((x - y).abs());
        }
    }
    println!("max centroid difference SQL vs memory: {worst:.2e}");
    assert!(worst < 1e-9);

    let assignments = session.assignments().expect("assignments");
    let purity = emcore::compare::purity(&data.labels, &assignments, k);
    println!("purity vs generating clusters: {purity:.3}");
}

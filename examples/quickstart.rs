//! Quickstart: cluster a synthetic Gaussian mixture with SQLEM's hybrid
//! strategy and compare what it recovered against the generating spec.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use datagen::generate_dataset;
use emcore::init::InitStrategy;
use sqlem::{EmSession, SqlemConfig, Strategy};
use sqlengine::Database;

fn main() {
    // 5,000 points in 3-d from 4 clusters, plus 20% uniform noise —
    // the paper's synthetic workload (§4.2).
    let (n, p, k) = (5_000, 3, 4);
    let data = generate_dataset(n, p, k, 7);
    println!("generated n = {n}, p = {p}, k = {k} (20% noise)");

    // The whole pipeline runs inside the relational engine: the driver
    // only submits SQL and reads back tiny parameter tables.
    let mut db = Database::new();
    let config = SqlemConfig::new(k, Strategy::Hybrid)
        .with_epsilon(1e-3)
        .with_max_iterations(40);
    let mut session = EmSession::create(&mut db, &config, p).expect("create session");
    session.load_points(&data.points).expect("load");
    session
        .initialize(&InitStrategy::FromSample {
            fraction: 0.1,
            seed: 7,
            em_iterations: 10,
        })
        .expect("init");

    let run = session.run().expect("EM run");
    println!(
        "converged after {} iterations ({:?}); llh trace: {:?}",
        run.iterations, run.outcome, run.llh_history
    );

    println!("\nrecovered clusters (weight | mean):");
    for s in sqlem::summary::summarize(&run.params) {
        println!(
            "  #{}: {:>5.1}% | {:?}",
            s.index,
            s.weight * 100.0,
            s.mean
                .iter()
                .map(|m| (m * 10.0).round() / 10.0)
                .collect::<Vec<_>>()
        );
    }

    println!("\ngenerating spec (weight | mean):");
    for c in &data.spec.clusters {
        println!(
            "       {:>5.1}% | {:?}",
            c.weight * (1.0 - data.spec.noise_fraction) * 100.0,
            c.mean
                .iter()
                .map(|m| (m * 10.0).round() / 10.0)
                .collect::<Vec<_>>()
        );
    }

    // Hard segmentation via the score step (X/XMAX tables).
    let scores = session.scores().expect("scores");
    let purity = emcore::compare::purity(&data.labels, &scores, k);
    println!("\nsegmentation purity vs ground truth: {purity:.3}");
}

//! Customer segmentation on market-basket data — the paper's §4.1
//! experiment at example scale (50k baskets; the `retail` bench binary
//! runs the full 1,545,075).
//!
//! The workload has six basket variables (hour, sales, discount, cost,
//! distinct items, distinct categories) and a ground-truth structure that
//! mirrors the paper's findings: two dominant quick-trip segments
//! (~71% combined) split by shopping hour, core shoppers, lunch crowds,
//! promotion hunters and cherry pickers.
//!
//! ```text
//! cargo run --release --example retail_segmentation
//! ```

use datagen::retail::{retail_dataset, RetailConfig, RETAIL_K, RETAIL_P, RETAIL_SEGMENTS};
use emcore::init::InitStrategy;
use sqlem::{summary, EmSession, SqlemConfig, Strategy};
use sqlengine::Database;

fn main() {
    let data = retail_dataset(&RetailConfig {
        n: 50_000,
        seed: 20000518,
    });
    println!(
        "generated {} baskets, p = {RETAIL_P}, k = {RETAIL_K}",
        data.n()
    );

    let mut db = Database::new();
    let config = SqlemConfig::new(RETAIL_K, Strategy::Hybrid)
        .with_epsilon(1.0)
        .with_max_iterations(10);
    let mut session = EmSession::create(&mut db, &config, RETAIL_P).expect("create");
    session.load_points(&data.points).expect("load");
    session
        .initialize(&InitStrategy::FromSample {
            fraction: 0.05,
            seed: 20000518,
            em_iterations: 5,
        })
        .expect("init");

    let run = session.run().expect("run");
    println!(
        "{} iterations, {:.2}s per iteration\n",
        run.iterations,
        run.secs_per_iteration()
    );

    let vars = ["hour", "sales", "discount", "cost", "items", "categories"];
    println!("{}", summary::format_table(&run.params, &vars));

    println!(
        "top-2 cluster weight: {:.1}%  (paper: ~71% quick-trip shoppers)",
        summary::top_weight(&run.params, 2) * 100.0
    );
    // EM with a sampled initialization sometimes splits a dominant
    // segment across clusters (it is a local optimizer, §2.2); the
    // *profile*-aggregated view recovers the paper's 71% headline.
    let summaries = summary::summarize(&run.params);
    let quick_trip: f64 = summaries
        .iter()
        .filter(|s| s.mean[4] < 4.0 && s.mean[1] < 15.0)
        .map(|s| s.weight)
        .sum();
    println!(
        "clusters with the quick-trip profile (<4 items, <$15): {:.1}% of baskets          (paper: ~71%)",
        quick_trip * 100.0
    );

    // Narrate the two dominant clusters the way §4.1 does.
    for s in summaries.iter().take(2) {
        println!(
            "cluster #{}: {:.0}% of baskets — ~{:.0} items from ~{:.0} sections, \
             ~${:.0} sales, shopped around {:.0}:00",
            s.index,
            s.weight * 100.0,
            s.mean[4],
            s.mean[5],
            s.mean[1],
            s.mean[0],
        );
    }

    let scores = session.scores().expect("scores");
    let purity = emcore::compare::purity(&data.labels, &scores, RETAIL_K);
    println!("\nsegmentation purity vs the generating segments: {purity:.3}");
    println!(
        "(ground-truth segments: {})",
        RETAIL_SEGMENTS
            .iter()
            .map(|s| s.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
}

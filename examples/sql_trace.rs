//! Prints the SQL that SQLEM generates — the paper's actual contribution
//! is this code generator, so seeing its output side by side for all
//! three strategies is the fastest way to understand §3.
//!
//! ```text
//! cargo run --example sql_trace [horizontal|vertical|hybrid] [p] [k]
//! ```

use sqlem::{EmSession, SqlemConfig, Strategy};
use sqlengine::Database;

fn main() {
    let mut args = std::env::args().skip(1);
    let strategy = match args.next().as_deref() {
        Some("horizontal") => Strategy::Horizontal,
        Some("vertical") => Strategy::Vertical,
        None | Some("hybrid") => Strategy::Hybrid,
        Some(other) => panic!("unknown strategy {other}"),
    };
    let p: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(3);
    let k: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(2);

    let mut db = Database::new();
    let config = SqlemConfig::new(k, strategy);
    let mut session = EmSession::create(&mut db, &config, p).expect("create");
    // Load a token dataset so the post-load statements show real values.
    let points: Vec<Vec<f64>> = (0..4)
        .map(|i| (0..p).map(|d| (i * p + d) as f64).collect())
        .collect();
    session.load_points(&points).expect("load");

    println!("-- SQLEM generated SQL: strategy = {strategy}, p = {p}, k = {k}");
    println!(
        "-- longest statement: {} bytes\n",
        session.longest_statement()
    );
    for stmt in session.script() {
        println!("-- {}", stmt.purpose);
        println!("{};\n", stmt.sql);
    }
}

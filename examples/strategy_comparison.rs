//! Runs the same clustering problem under all three §3 strategies,
//! checks they produce the same solution, times them, and demonstrates
//! the horizontal strategy's parser-limit failure mode (§3.3).
//!
//! ```text
//! cargo run --release --example strategy_comparison
//! ```

use datagen::generate_dataset;
use emcore::init::{initialize, InitStrategy};
use sqlem::{EmSession, SqlemConfig, SqlemError, Strategy};
use sqlengine::Database;

fn main() {
    let (n, p, k) = (10_000, 8, 6);
    let data = generate_dataset(n, p, k, 5);
    // One shared initialization so the three runs are exactly comparable.
    let init = initialize(&data.points, k, &InitStrategy::Random { seed: 5 });

    println!("n = {n}, p = {p}, k = {k}\n");
    println!(
        "{:>12} {:>8} {:>12} {:>16} {:>14}",
        "strategy", "iters", "secs/iter", "final llh", "longest stmt"
    );

    let mut params = Vec::new();
    for strategy in Strategy::ALL {
        let mut db = Database::new();
        let config = SqlemConfig::new(k, strategy)
            .with_epsilon(0.0)
            .with_max_iterations(5);
        let mut session = EmSession::create(&mut db, &config, p).expect("create");
        session.load_points(&data.points).expect("load");
        session
            .initialize(&InitStrategy::Explicit(init.clone()))
            .expect("init");
        let longest = session.longest_statement();
        let run = session.run().expect("run");
        println!(
            "{:>12} {:>8} {:>12.4} {:>16.2} {:>14}",
            strategy.name(),
            run.iterations,
            run.secs_per_iteration(),
            run.llh_history.last().unwrap(),
            longest,
        );
        params.push(run.params);
    }

    // Same algorithm, three encodings: solutions must agree.
    let d01 = emcore::compare::max_param_diff(&params[0], &params[1]);
    let d12 = emcore::compare::max_param_diff(&params[1], &params[2]);
    println!(
        "\nmax parameter difference across strategies: {:.2e}",
        d01.max(d12)
    );
    assert!(d01.max(d12) < 1e-6, "strategies disagreed!");

    // Now the §3.3 ceiling: the same problem at kp = 1000 with a 16 KiB
    // parser limit. The hybrid sails through; the horizontal statement is
    // rejected before execution.
    println!("\n-- parser-limit demonstration (p = 40, k = 25, 16 KiB limit) --");
    let wide = generate_dataset(200, 40, 25, 6);
    for strategy in [Strategy::Horizontal, Strategy::Hybrid] {
        let mut db = Database::new();
        db.set_max_statement_len(16 * 1024);
        let config = SqlemConfig::new(25, strategy).with_max_iterations(1);
        let mut session = EmSession::create(&mut db, &config, 40).expect("create");
        session.load_points(&wide.points).expect("load");
        session
            .initialize(&InitStrategy::Random { seed: 6 })
            .expect("init");
        match session.iterate_once() {
            Ok(_) => println!(
                "{:>12}: ran fine ({} byte statements)",
                strategy.name(),
                session.longest_statement()
            ),
            Err(SqlemError::StatementTooLong { len, max, .. }) => println!(
                "{:>12}: rejected — distance statement is {len} bytes, limit {max}",
                strategy.name()
            ),
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}

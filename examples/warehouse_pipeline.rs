//! The data-warehouse scenario that motivates the paper (§1.3): the data
//! already lives in a DBMS table, never leaves it, and downstream
//! analysis happens in SQL against the clustering outputs.
//!
//! This example creates a `baskets` fact table with plain SQL, runs SQLEM
//! directly against it via `load_from_table` (the pivot into Z/Y happens
//! as `INSERT … SELECT`), scores every row, and then answers business
//! questions by *joining the score table back to the fact table* — no
//! data ever crossed into application memory.
//!
//! ```text
//! cargo run --release --example warehouse_pipeline
//! ```

use datagen::retail::{retail_dataset, RetailConfig};
use emcore::init::{initialize, InitStrategy};
use sqlem::{EmSession, SqlemConfig, Strategy};
use sqlengine::{Database, Value};

fn main() {
    let mut db = Database::new();

    // 1. The warehouse fact table, filled by "ETL" (bulk load here).
    db.execute(
        "CREATE TABLE baskets (bid BIGINT PRIMARY KEY, hour DOUBLE, sales DOUBLE, \
         discount DOUBLE, cost DOUBLE, items DOUBLE, categories DOUBLE)",
    )
    .unwrap();
    let data = retail_dataset(&RetailConfig {
        n: 20_000,
        seed: 42,
    });
    let rows = data.points.iter().enumerate().map(|(i, pt)| {
        let mut row = vec![Value::Int(i as i64 + 1)];
        row.extend(pt.iter().map(|&v| Value::Double(v)));
        row
    });
    db.bulk_insert("baskets", rows).unwrap();
    println!(
        "warehouse table `baskets` holds {} rows",
        db.table_len("baskets").unwrap()
    );

    // 2. Cluster in place. `load_from_table` pivots via INSERT…SELECT;
    //    parameters come from a client-side sample (the one thing the
    //    paper's workstation program computes itself).
    let k = 9;
    let config = SqlemConfig::new(k, Strategy::Hybrid)
        .with_epsilon(1.0)
        .with_max_iterations(8);
    let init = initialize(
        &data.points,
        k,
        &InitStrategy::FromSample {
            fraction: 0.1,
            seed: 42,
            em_iterations: 8,
        },
    );
    let mut session = EmSession::create(&mut db, &config, 6).unwrap();
    session
        .load_from_table(
            "baskets",
            "bid",
            &["hour", "sales", "discount", "cost", "items", "categories"],
        )
        .unwrap();
    session.initialize(&InitStrategy::Explicit(init)).unwrap();
    let run = session.run().unwrap();
    println!(
        "clustered in {} iterations ({:.2}s each)",
        run.iterations,
        run.secs_per_iteration()
    );
    session.scores().unwrap();

    // 3. Business questions in SQL, joining scores (table `ys`) back to
    //    the fact table.
    let report = db
        .execute(
            "SELECT ys.score, count(*) AS baskets, avg(b.sales) AS avg_sales, \
                    avg(b.discount) AS avg_discount, avg(b.items) AS avg_items, \
                    avg(b.hour) AS avg_hour \
             FROM baskets b, ys WHERE b.bid = ys.rid \
             GROUP BY ys.score ORDER BY baskets DESC",
        )
        .unwrap();
    println!(
        "\n{:>8} {:>9} {:>10} {:>13} {:>10} {:>9}",
        "segment", "baskets", "avg_sales", "avg_discount", "avg_items", "avg_hour"
    );
    for row in &report.rows {
        println!(
            "{:>8} {:>9} {:>10.2} {:>13.2} {:>10.2} {:>9.1}",
            row[0],
            row[1],
            row[2].as_f64().unwrap(),
            row[3].as_f64().unwrap(),
            row[4].as_f64().unwrap(),
            row[5].as_f64().unwrap(),
        );
    }

    // e.g. "which segment cherry-picks?" — high discount, few items.
    let cherry = db
        .execute(
            "SELECT ys.score FROM baskets b, ys WHERE b.bid = ys.rid \
             GROUP BY ys.score HAVING avg(b.discount) > 3.0 \
             ORDER BY avg(b.discount) DESC",
        )
        .unwrap();
    println!(
        "\nsegments with cherry-picking behaviour (avg discount > $3): {:?}",
        cherry.rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>()
    );
}

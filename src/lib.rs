//! Umbrella crate for the SQLEM reproduction: re-exports all member crates
//! and hosts the cross-crate examples and integration tests.

#![forbid(unsafe_code)]

pub use datagen;
pub use emcore;
pub use sqlem;
pub use sqlengine;

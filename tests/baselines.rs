//! Baseline consistency (paper §4.3): SQLEM, the in-memory EM and the
//! SEM comparator must tell the same statistical story on the same data.

use datagen::generate_dataset;
use emcore::compare::params_close;
use emcore::init::{initialize, InitStrategy};
use emcore::{gaussian, EmConfig};
use sqlem::{EmSession, SqlemConfig, Strategy};
use sqlengine::Database;

#[test]
fn sqlem_and_memory_em_reach_the_same_solution_quality() {
    let (n, p, k) = (3_000, 3, 3);
    let data = generate_dataset(n, p, k, 17);
    let init = initialize(&data.points, k, &InitStrategy::Random { seed: 17 });

    let mut db = Database::new();
    let config = SqlemConfig::new(k, Strategy::Hybrid)
        .with_epsilon(1e-4)
        .with_max_iterations(15);
    let mut session = EmSession::create(&mut db, &config, p).unwrap();
    session.load_points(&data.points).unwrap();
    session
        .initialize(&InitStrategy::Explicit(init.clone()))
        .unwrap();
    let sql_run = session.run().unwrap();

    let mem_run = emcore::em::run_em(
        &data.points,
        init,
        &EmConfig {
            epsilon: 1e-4,
            max_iterations: 15,
        },
    )
    .unwrap();

    assert!(params_close(&sql_run.params, &mem_run.params, 1e-5));
    let sql_llh = sql_run.llh_history.last().unwrap();
    let mem_llh = mem_run.llh_history.last().unwrap();
    assert!(
        ((sql_llh - mem_llh) / mem_llh.abs().max(1.0)).abs() < 1e-8,
        "final llh disagrees: {sql_llh} vs {mem_llh}"
    );
}

#[test]
fn sem_solution_is_competitive_with_full_em() {
    let (n, k) = (8_000, 3);
    // Clean, separated data: SEM's compression assumptions hold.
    let spec = datagen::MixtureSpec::new(
        vec![
            datagen::ClusterSpec::spherical(0.3, vec![0.0, 0.0], 1.0),
            datagen::ClusterSpec::spherical(0.4, vec![15.0, 0.0], 1.0),
            datagen::ClusterSpec::spherical(0.3, vec![0.0, 15.0], 1.0),
        ],
        0.0,
    );
    let data = datagen::mixture::generate(&spec, n, 23);

    let full = emcore::em::run_em(
        &data.points,
        initialize(&data.points, k, &InitStrategy::Random { seed: 23 }),
        &EmConfig {
            epsilon: 1e-6,
            max_iterations: 30,
        },
    )
    .unwrap();

    let sem = emcore::sem::run_sem(
        &data.points,
        &emcore::sem::SemConfig {
            k,
            chunk_size: 1_000,
            compression_threshold: 0.95,
            iterations_per_chunk: 3,
            seed: 23,
        },
    );

    // SEM is an approximation; demand the same cluster structure and a
    // loglikelihood within 2% of full EM's.
    let full_llh = gaussian::loglikelihood(&full.params, &data.points);
    let sem_llh = gaussian::loglikelihood(&sem.params, &data.points);
    assert!(
        sem_llh > full_llh - 0.02 * full_llh.abs(),
        "SEM llh {sem_llh} vs full {full_llh}"
    );
    assert!(params_close(&full.params, &sem.params, 0.5));
    // And it actually compressed the bulk of the data (the point of SEM).
    assert!(sem.compressed > n / 2);
}

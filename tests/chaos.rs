//! Chaos suite: deterministic fault-plan sweeps over the whole EM
//! pipeline (tier-2 robustness).
//!
//! The contract under test, for every statement a session executes and
//! for every strategy: an injected **transient** fault with a retry
//! policy either leaves the run bit-identical to the unfaulted baseline
//! (the fault was retried, or never surfaced) or produces a clean typed
//! error with zero leaked work tables; an injected **permanent** fault
//! always produces the typed error and zero leaked work tables.
//!
//! `SQLEM_CHAOS_STRIDE=N` samples every Nth statement index instead of
//! all of them (the CI `--quick` mode sets it); default is the full
//! sweep.

use emcore::em::em_step;
use emcore::init::InitStrategy;
use emcore::GmmParams;
use sqlem::{EmSession, RetryPolicy, SqlemConfig, SqlemError, SqlemRun, Strategy};
use sqlengine::{Database, Error as SqlError, FaultPlan, FaultRule};

const STRATEGIES: [Strategy; 3] = [Strategy::Hybrid, Strategy::Horizontal, Strategy::Vertical];

fn stride() -> usize {
    std::env::var("SQLEM_CHAOS_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

fn blobs() -> Vec<Vec<f64>> {
    let mut pts = Vec::new();
    for i in 0..20 {
        let t = (i % 4) as f64 * 0.1;
        pts.push(vec![t, t]);
        pts.push(vec![10.0 + t, 10.0 - t]);
    }
    pts
}

fn blob_init() -> GmmParams {
    GmmParams::new(
        vec![vec![3.0, 3.0], vec![7.0, 7.0]],
        vec![10.0, 10.0],
        vec![0.5, 0.5],
    )
}

/// Create → load → initialize → run, with the documented client-side
/// recovery: on any error the session's work tables are dropped.
fn run_all(
    db: &mut Database,
    cfg: &SqlemConfig,
    points: &[Vec<f64>],
    init: &GmmParams,
) -> Result<SqlemRun, SqlemError> {
    let mut session = EmSession::create(db, cfg, init.p())?;
    let result = (|| {
        session.load_points(points)?;
        session.initialize(&InitStrategy::Explicit(init.clone()))?;
        session.run()
    })();
    if result.is_err() {
        let _ = session.cleanup();
    }
    result
}

/// Statement counts of a clean run: (after create+load+initialize,
/// after run). The injector's counter is the sweep's index space.
fn statement_counts(cfg: &SqlemConfig, points: &[Vec<f64>], init: &GmmParams) -> (usize, usize) {
    let mut db = Database::new();
    db.set_fault_plan(FaultPlan::new(Vec::new()));
    let mut session = EmSession::create(&mut db, cfg, init.p()).unwrap();
    session.load_points(points).unwrap();
    session
        .initialize(&InitStrategy::Explicit(init.clone()))
        .unwrap();
    let after_init = session.database().fault_injector().unwrap().executed();
    session.run().unwrap();
    let total = session.database().fault_injector().unwrap().executed();
    (after_init, total)
}

/// Work tables left behind with `prefix` (checkpoint tables are durable
/// by design and excluded).
fn leaked(db: &Database, prefix: &str) -> Vec<String> {
    db.catalog()
        .table_names()
        .into_iter()
        .filter(|t| t.starts_with(prefix) && !t.contains("ckpt"))
        .map(str::to_string)
        .collect()
}

fn assert_injected(err: &SqlemError, transient: bool, ctx: &str) {
    assert!(
        matches!(
            err,
            SqlemError::Sql {
                source: SqlError::Injected { transient: t, .. },
                ..
            } if *t == transient
        ),
        "{ctx}: expected injected {} fault, got: {err}",
        if transient { "transient" } else { "permanent" },
    );
}

/// Transient sweep: a one-shot transient fault at every statement index,
/// with retries. Either the run completes bit-identically to the clean
/// baseline, or it fails typed and leak-free (the few statements outside
/// retry coverage: the bulk load and driver-side reads).
#[test]
fn transient_fault_at_every_statement_retries_or_fails_clean() {
    let (points, init) = (blobs(), blob_init());
    for strategy in STRATEGIES {
        let cfg = SqlemConfig::new(2, strategy)
            .with_epsilon(0.0)
            .with_max_iterations(2)
            .with_prefix("cz_");
        let baseline = run_all(&mut Database::new(), &cfg, &points, &init).unwrap();
        let (_, total) = statement_counts(&cfg, &points, &init);
        let retry_cfg = cfg.clone().with_retry(RetryPolicy::immediate(4));
        for i in (0..total).step_by(stride()) {
            let ctx = format!("{strategy}, transient fault at statement {i}");
            let mut db = Database::new();
            db.set_fault_plan(FaultPlan::single(FaultRule::nth(i).transient().once()));
            match run_all(&mut db, &retry_cfg, &points, &init) {
                Ok(run) => {
                    assert_eq!(run.params, baseline.params, "{ctx}: params diverged");
                    assert_eq!(run.llh_history, baseline.llh_history, "{ctx}: llh diverged");
                }
                Err(e) => {
                    assert_injected(&e, true, &ctx);
                    let left = leaked(&db, "cz_");
                    assert!(left.is_empty(), "{ctx}: leaked tables {left:?}");
                }
            }
        }
    }
}

/// Exhaustion sweep: an injected one-shot out-of-memory rejection at
/// every statement index, with retries. The governor's contract is the
/// transient one — exhaustion is backpressure, not corruption — so the
/// run either completes bit-identically to the unconstrained baseline
/// or fails with the typed [`SqlError::ResourceExhausted`] and zero
/// leaked work tables.
#[test]
fn exhaustion_fault_at_every_statement_retries_or_fails_clean() {
    let (points, init) = (blobs(), blob_init());
    for strategy in STRATEGIES {
        let cfg = SqlemConfig::new(2, strategy)
            .with_epsilon(0.0)
            .with_max_iterations(2)
            .with_prefix("cz_");
        let baseline = run_all(&mut Database::new(), &cfg, &points, &init).unwrap();
        let (_, total) = statement_counts(&cfg, &points, &init);
        let retry_cfg = cfg.clone().with_retry(RetryPolicy::immediate(4));
        for i in (0..total).step_by(stride()) {
            let ctx = format!("{strategy}, exhaustion fault at statement {i}");
            let mut db = Database::new();
            db.set_fault_plan(FaultPlan::single(FaultRule::nth(i).exhausting().once()));
            match run_all(&mut db, &retry_cfg, &points, &init) {
                Ok(run) => {
                    assert_eq!(run.params, baseline.params, "{ctx}: params diverged");
                    assert_eq!(run.llh_history, baseline.llh_history, "{ctx}: llh diverged");
                }
                Err(e) => {
                    assert!(
                        e.is_resource_exhausted(),
                        "{ctx}: expected typed exhaustion, got: {e}"
                    );
                    assert!(e.is_transient(), "{ctx}: exhaustion must stay retryable");
                    let left = leaked(&db, "cz_");
                    assert!(left.is_empty(), "{ctx}: leaked tables {left:?}");
                }
            }
        }
    }
}

/// Permanent sweep: an unretryable fault at every statement index must
/// always surface as the typed injected error, leak-free — even with a
/// generous retry policy installed.
#[test]
fn permanent_fault_at_every_statement_fails_clean() {
    let (points, init) = (blobs(), blob_init());
    for strategy in STRATEGIES {
        let cfg = SqlemConfig::new(2, strategy)
            .with_epsilon(0.0)
            .with_max_iterations(2)
            .with_prefix("cz_")
            .with_retry(RetryPolicy::immediate(4));
        let (_, total) = statement_counts(&cfg, &points, &init);
        for i in (0..total).step_by(stride()) {
            let ctx = format!("{strategy}, permanent fault at statement {i}");
            let mut db = Database::new();
            db.set_fault_plan(FaultPlan::single(FaultRule::nth(i).permanent()));
            let err = run_all(&mut db, &cfg, &points, &init)
                .expect_err(&format!("{ctx}: a permanent fault cannot succeed"));
            assert_injected(&err, false, &ctx);
            let left = leaked(&db, "cz_");
            assert!(left.is_empty(), "{ctx}: leaked tables {left:?}");
        }
    }
}

/// Kill a checkpointing run mid-iteration with a permanent fault, then
/// resume in a fresh session: the completed run must be bit-identical
/// to one that was never interrupted.
#[test]
fn resume_after_mid_iteration_kill_matches_uninterrupted_run() {
    const ITERS: usize = 3;
    let (points, init) = (blobs(), blob_init());
    let cfg = SqlemConfig::new(2, Strategy::Hybrid)
        .with_epsilon(0.0)
        .with_max_iterations(ITERS)
        .with_prefix("rz_")
        .with_checkpoints();
    let baseline = run_all(&mut Database::new(), &cfg, &points, &init).unwrap();
    assert_eq!(
        baseline.iterations, ITERS,
        "baseline must not converge early"
    );

    // Land the fault a few statements into iteration 2: after the
    // iteration-1 checkpoint, before iteration 2 completes.
    let (after_init, total) = statement_counts(&cfg, &points, &init);
    let per_iter = (total - after_init) / ITERS;
    let fault_at = after_init + per_iter + 2;

    let mut db = Database::new();
    db.set_fault_plan(FaultPlan::single(FaultRule::nth(fault_at).permanent()));
    let err = run_all(&mut db, &cfg, &points, &init).unwrap_err();
    assert_injected(&err, false, "mid-iteration kill");
    assert!(leaked(&db, "rz_").is_empty(), "kill leaked work tables");

    db.clear_fault_plan();
    let mut session = EmSession::create(&mut db, &cfg, init.p()).unwrap();
    session.load_points(&points).unwrap();
    let resumed_at = session.resume_from_checkpoint().unwrap();
    let done = resumed_at.expect("a checkpoint must have survived the kill");
    assert!(
        (1..ITERS).contains(&done),
        "kill was mid-run, got {done} completed iterations"
    );
    let run = session.run().unwrap();
    assert_eq!(run.iterations, baseline.iterations);
    assert_eq!(run.llh_history, baseline.llh_history, "resumed history");
    assert_eq!(run.params, baseline.params, "resumed final model");
}

/// §2.5 chaos: the two degenerate numerical regimes must survive a
/// transient fault injected mid-iteration — retried runs stay
/// bit-identical to the clean run and keep tracking the oracle.
fn degenerate_regime_survives_fault(points: &[Vec<f64>], init: &GmmParams, label: &str) {
    const ITERS: usize = 3;
    let mut oracle = init.clone();
    let mut oracle_llh = Vec::new();
    for _ in 0..ITERS {
        let (next, llh) = em_step(&oracle, points).unwrap();
        oracle_llh.push(llh);
        oracle = next;
    }

    for strategy in STRATEGIES {
        let ctx = format!("{label}/{strategy}");
        let cfg = SqlemConfig::new(init.k(), strategy)
            .with_epsilon(0.0)
            .with_max_iterations(ITERS)
            .with_prefix("dz_");
        let clean = run_all(&mut Database::new(), &cfg, points, init).unwrap();

        // Transient blip two statements into iteration 1's E step.
        let (after_init, _) = statement_counts(&cfg, points, init);
        let mut db = Database::new();
        db.set_fault_plan(FaultPlan::single(
            FaultRule::nth(after_init + 2).transient().once(),
        ));
        let faulted = run_all(
            &mut db,
            &cfg.clone().with_retry(RetryPolicy::immediate(3)),
            points,
            init,
        )
        .unwrap();

        assert_eq!(faulted.params, clean.params, "{ctx}: params vs clean run");
        assert_eq!(faulted.llh_history, clean.llh_history, "{ctx}: llh history");
        for (i, (sql, orc)) in faulted.llh_history.iter().zip(&oracle_llh).enumerate() {
            let denom = orc.abs().max(1.0);
            assert!(
                ((sql - orc) / denom).abs() < 1e-9,
                "{ctx} iter {i}: llh {sql} vs oracle {orc}"
            );
        }
        for (j, (ms, mo)) in faulted.params.means.iter().zip(&oracle.means).enumerate() {
            for (a, b) in ms.iter().zip(mo) {
                assert!((a - b).abs() <= 1e-8, "{ctx}: mean of cluster {j} diverged");
            }
        }
        for (a, b) in faulted.params.cov.iter().zip(&oracle.cov) {
            assert!((a - b).abs() <= 1e-8, "{ctx}: covariance diverged");
        }
        for (a, b) in faulted.params.weights.iter().zip(&oracle.weights) {
            assert!((a - b).abs() <= 1e-8, "{ctx}: weights diverged");
        }
    }
}

/// §2.5 inverse-distance fallback (densities underflow to zero) under a
/// mid-iteration transient fault.
#[test]
fn underflow_fallback_survives_transient_fault() {
    let mut points: Vec<Vec<f64>> = Vec::new();
    for i in 0..30 {
        points.push(vec![(i % 7) as f64 * 0.3]);
        points.push(vec![10_000.0 + (i % 7) as f64 * 0.3]);
    }
    for i in 0..6 {
        points.push(vec![2_500.0 + i as f64]); // underflow region
    }
    let init = GmmParams::new(vec![vec![0.0], vec![10_000.0]], vec![1.0], vec![0.5, 0.5]);
    degenerate_regime_survives_fault(&points, &init, "underflow");
}

/// §2.5 zero-covariance skip (a dimension collapses to exactly 0) under
/// a mid-iteration transient fault.
#[test]
fn zero_covariance_survives_transient_fault() {
    let data = datagen::generate_dataset(80, 1, 2, 9);
    let points: Vec<Vec<f64>> = data.points.iter().map(|pt| vec![pt[0], 0.0]).collect();
    let init = emcore::init::initialize(&points, 2, &InitStrategy::Random { seed: 9 });
    degenerate_regime_survives_fault(&points, &init, "zero-cov");
}

//! Network chaos sweep: the exactly-once session protocol under a
//! byte-level adversarial wire.
//!
//! A [`ChaosProxy`] sits between a [`RemoteConnection`] and a *durable*
//! [`Server`] and injects faults at chosen byte offsets of chosen
//! frames. A full hybrid EM run is driven through the proxy while the
//! wire is cut at swept frame positions in each of the four classes the
//! protocol must survive:
//!
//! * **pre-request** — the statement never reached the server;
//! * **mid-request** — the server saw a torn frame;
//! * **post-execute / pre-reply** — the server executed but the ack was
//!   lost (the classic duplicate-effects window);
//! * **mid-reply** — the ack was torn.
//!
//! Every run must converge to the *bit-identical* final model and
//! loglikelihood history, with no duplicate-key errors, and the durable
//! WAL must hold exactly the same number of committed mutations as an
//! uninterrupted run — the zero-double-applied-mutations proof: a
//! statement replayed after a lost ack is answered from the server's
//! reply cache (or reconciled as already-applied), never re-executed.
//!
//! The sweep visits every frame index when `SQLEM_CHAOS_STRIDE=1` (the
//! `ci.sh` chaos-net stage does this); by default it strides so the
//! tier-1 `cargo test` stays quick while still covering all four
//! classes at rotating offsets.
//!
//! Also here: the deadline-propagation path through the proxy, the
//! exhausted-retry-budget taxonomy, and a mid-run server kill + restart
//! (WAL + session-log recovery) that the client rides out.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use emcore::init::InitStrategy;
use emcore::GmmParams;
use sqlem::{EmSession, RetryPolicy, SqlemConfig, SqlemRun, Strategy};
use sqlengine::{Database, SharedDatabase, SqlExecutor};
use sqlwire::{
    ChaosAction, ChaosProxy, ClientConfig, Direction, RemoteConnection, Server, ServerConfig,
    ServerHandle,
};

// ---------------------------------------------------------------------
// harness

/// Two well-separated 2-D blobs, small enough that a full run is cheap
/// but long enough to produce a meaningful frame stream.
fn points() -> Vec<Vec<f64>> {
    let mut pts = Vec::new();
    for i in 0..12 {
        let t = (i % 4) as f64 * 0.25;
        pts.push(vec![t, -t]);
        pts.push(vec![9.0 + t, 9.0 - t]);
    }
    pts
}

fn explicit_init() -> GmmParams {
    GmmParams::new(
        vec![vec![2.0, 2.0], vec![7.0, 7.0]],
        vec![8.0, 8.0],
        vec![0.5, 0.5],
    )
}

fn em_config(retry: Option<RetryPolicy>) -> SqlemConfig {
    let mut cfg = SqlemConfig::new(2, Strategy::Hybrid)
        .with_epsilon(1e-12)
        .with_max_iterations(4)
        .with_prefix("cn_");
    if let Some(policy) = retry {
        cfg = cfg.with_retry(policy);
    }
    cfg
}

/// Drive the full study (create, load, init, run) over one executor.
fn run_em<E: SqlExecutor>(db: &mut E, cfg: &SqlemConfig) -> SqlemRun {
    let mut session = EmSession::create(db, cfg, 2).unwrap();
    session.load_points(&points()).unwrap();
    session
        .initialize(&InitStrategy::Explicit(explicit_init()))
        .unwrap();
    session.run().unwrap()
}

/// A fresh scratch directory for one durable server's data.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlem_chaos_net_{label}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A wire server over a WAL-backed database in `dir`.
struct DurableServer {
    addr: String,
    handle: ServerHandle,
    join: thread::JoinHandle<sqlengine::Result<()>>,
}

impl DurableServer {
    fn start(dir: &Path) -> DurableServer {
        let db = Database::open_durable(dir).unwrap();
        let config = ServerConfig {
            drain_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", SharedDatabase::new(db), config).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle();
        let join = thread::spawn(move || server.run());
        DurableServer { addr, handle, join }
    }

    fn stop(self) {
        self.handle.shutdown();
        self.join.join().unwrap().unwrap();
    }
}

/// Mutation accounting read straight from the write-ahead log: the
/// engine's statement sequence watermark and the number of committed
/// WAL records. A double-applied statement would advance both past the
/// uninterrupted run's values; a lost statement would fall short.
fn wal_stats(dir: &Path) -> (u64, usize) {
    let db = Database::open_durable(dir).unwrap();
    let next_seq = db.wal_next_seq().expect("durable database has a WAL");
    let committed = db
        .wal_recovery_info()
        .map(|r| r.committed.len())
        .unwrap_or(0);
    (next_seq, committed)
}

/// Connect through a possibly-hostile wire: a cut armed on the
/// handshake frames surfaces as a transient connect error, so retry a
/// few times (the rule is consumed by the first attempt).
fn connect(addr: &str) -> RemoteConnection {
    let mut last = None;
    for _ in 0..5 {
        match RemoteConnection::connect(addr, ClientConfig::default()) {
            Ok(conn) => return conn,
            Err(e) => {
                last = Some(e);
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
    panic!("cannot connect to {addr}: {}", last.unwrap());
}

/// Wait for the proxy's relay threads to drain: the final frames of a
/// session (the goodbye and its ack) are written fire-and-forget, so
/// counters and fired rules trail `drop(conn)` by a beat.
fn settle(proxy: &ChaosProxy) -> (u64, u64) {
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut last = (
        proxy.frames_forwarded(Direction::ToServer),
        proxy.frames_forwarded(Direction::ToClient),
    );
    loop {
        thread::sleep(Duration::from_millis(20));
        let now = (
            proxy.frames_forwarded(Direction::ToServer),
            proxy.frames_forwarded(Direction::ToClient),
        );
        if now == last || Instant::now() >= deadline {
            return now;
        }
        last = now;
    }
}

/// Wait for the armed rule to fire — a cut on the very last frame of
/// the conversation races the relay thread.
fn wait_fired(proxy: &ChaosProxy, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(2);
    while proxy.rules_fired() < want && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    proxy.rules_fired()
}

/// Sweep stride: 1 visits every frame (exhaustive — the ci.sh chaos-net
/// stage sets this); the default keeps tier-1 runtime modest while
/// still cutting at several positions per fault class.
fn sweep_stride() -> u64 {
    std::env::var("SQLEM_CHAOS_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(7)
}

fn assert_same_run(label: &str, run: &SqlemRun, baseline: &SqlemRun) {
    assert_eq!(run.params, baseline.params, "{label}: params diverged");
    assert_eq!(
        run.llh_history, baseline.llh_history,
        "{label}: llh history diverged"
    );
    assert_eq!(run.iterations, baseline.iterations, "{label}: iterations");
    assert_eq!(run.outcome, baseline.outcome, "{label}: outcome");
}

// ---------------------------------------------------------------------
// the sweep

#[test]
fn cut_sweep_is_bit_identical_with_zero_double_applies() {
    // Uninterrupted baseline: embedded ground truth, then the same run
    // through a clean proxy against a durable server — this yields the
    // reference frame counts and WAL accounting.
    let embedded = run_em(&mut Database::new(), &em_config(None));

    let base_dir = scratch("sweep_baseline");
    let server = DurableServer::start(&base_dir);
    let proxy = ChaosProxy::start(server.addr.as_str()).unwrap();
    let mut conn = connect(&proxy.addr().to_string());
    let baseline = run_em(&mut conn, &em_config(None));
    drop(conn);
    assert_same_run("clean proxied run vs embedded", &baseline, &embedded);
    let (request_frames, reply_frames) = settle(&proxy);
    assert!(request_frames > 20, "expected a real stream of statements");
    // Strict request/reply, except the goodbye ack: the client closes
    // without reading it, so the proxy may fail to relay that one frame.
    assert!(
        request_frames - reply_frames <= 1,
        "the clean protocol is strictly request/reply ({request_frames} vs {reply_frames})"
    );
    drop(proxy);
    server.stop();
    let (base_seq, base_committed) = wal_stats(&base_dir);
    assert!(base_committed > 0, "mutations must hit the WAL");
    let _ = std::fs::remove_dir_all(&base_dir);

    // Cut offset 12 lands after the 8-byte frame header and 4 payload
    // bytes: a genuinely torn frame for every message in the protocol.
    let classes: [(&str, Direction, ChaosAction); 4] = [
        ("pre-request", Direction::ToServer, ChaosAction::CutBefore),
        ("mid-request", Direction::ToServer, ChaosAction::CutAt(12)),
        ("pre-reply", Direction::ToClient, ChaosAction::CutBefore),
        ("mid-reply", Direction::ToClient, ChaosAction::CutAt(12)),
    ];
    let stride = sweep_stride();
    let retry = RetryPolicy::immediate(6);
    for (class_idx, (name, dir, action)) in classes.iter().enumerate() {
        let frames = match dir {
            Direction::ToServer => request_frames,
            Direction::ToClient => reply_frames,
        };
        // Rotate the starting offset per class so strided runs still
        // cover different residues of the statement stream.
        let mut frame = (class_idx as u64) % stride;
        while frame < frames {
            let label = format!("{name}@{frame}");
            let dir_path = scratch(&format!("sweep_{class_idx}_{frame}"));
            let server = DurableServer::start(&dir_path);
            let proxy = ChaosProxy::start(server.addr.as_str()).unwrap();
            proxy.arm(*dir, frame, *action);
            let mut conn = connect(&proxy.addr().to_string());
            let run = run_em(&mut conn, &em_config(Some(retry.clone())));
            drop(conn);
            // The very last frame of a direction is the session
            // goodbye / its ack — fire-and-forget, so whether it
            // traverses the proxy at all races the teardown. Every
            // earlier frame is part of a strict request/reply exchange
            // and the armed fault MUST have fired on it.
            if frame < frames - 1 {
                assert_eq!(wait_fired(&proxy, 1), 1, "{label}: the fault must fire");
            } else {
                wait_fired(&proxy, 1);
            }
            drop(proxy);
            server.stop();
            assert_same_run(&label, &run, &baseline);
            let (seq, committed) = wal_stats(&dir_path);
            assert_eq!(
                seq, base_seq,
                "{label}: WAL watermark diverged (double- or un-applied mutation)"
            );
            assert_eq!(
                committed, base_committed,
                "{label}: committed WAL record count diverged"
            );
            let _ = std::fs::remove_dir_all(&dir_path);
            frame += stride;
        }
    }
}

#[test]
fn delayed_and_duplicated_wire_traffic_changes_nothing() {
    // A held-back frame is only latency; a duplicated *request* frame
    // must be absorbed by the reply cache. (The duplicate's extra reply
    // is read by the client as the answer to its replayed statement —
    // both copies are bit-identical, so the conversation stays in
    // step.)
    let embedded = run_em(&mut Database::new(), &em_config(None));
    let db = SharedDatabase::default();
    let config = ServerConfig {
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", db, config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());

    let proxy = ChaosProxy::start(addr.as_str()).unwrap();
    proxy.arm(Direction::ToServer, 9, ChaosAction::DelayMs(60));
    proxy.arm(Direction::ToClient, 14, ChaosAction::DelayMs(60));
    let mut conn = connect(&proxy.addr().to_string());
    let run = run_em(&mut conn, &em_config(Some(RetryPolicy::immediate(4))));
    drop(conn);
    assert_eq!(wait_fired(&proxy, 2), 2);
    drop(proxy);
    handle.shutdown();
    join.join().unwrap().unwrap();
    assert_same_run("delayed frames", &run, &embedded);
}

// ---------------------------------------------------------------------
// taxonomy: budgets and deadlines

#[test]
fn exhausted_retry_budget_surfaces_typed_transient_error() {
    let db = SharedDatabase::default();
    let config = ServerConfig {
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", db, config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());

    let proxy = ChaosProxy::start(addr.as_str()).unwrap();
    // One cut mid-stream, *no* retry budget: the run must fail cleanly
    // with an error the caller can classify as worth retrying — not a
    // panic, not a duplicate-effects corruption.
    proxy.arm(Direction::ToServer, 12, ChaosAction::CutBefore);
    let mut conn = connect(&proxy.addr().to_string());
    let err = (|| {
        let mut session = EmSession::create(&mut conn, &em_config(None), 2)?;
        session.load_points(&points())?;
        session.initialize(&InitStrategy::Explicit(explicit_init()))?;
        session.run().map(|_| ())
    })()
    .expect_err("a cut wire with no retry budget must fail the run");
    assert!(
        err.is_transient(),
        "budget exhaustion must stay classified transient: {err}"
    );
    drop(conn);
    drop(proxy);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn statement_deadline_is_enforced_through_the_proxy() {
    let db = SharedDatabase::default();
    let config = ServerConfig {
        drain_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", db.clone(), config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = thread::spawn(move || server.run());

    let proxy = ChaosProxy::start(addr.as_str()).unwrap();
    let mut conn = RemoteConnection::connect(
        &proxy.addr().to_string(),
        ClientConfig {
            statement_deadline: Some(Duration::from_millis(100)),
            ..ClientConfig::default()
        },
    )
    .unwrap();

    // Another "statement" wedges the database well past the budget.
    let blocker = db.clone();
    let hold = thread::spawn(move || {
        blocker.with(|_db| thread::sleep(Duration::from_millis(600)));
    });
    thread::sleep(Duration::from_millis(50));
    let start = Instant::now();
    let err = conn.execute("SELECT 1").unwrap_err();
    assert!(
        matches!(err, sqlengine::Error::Deadline { .. }),
        "expected the typed deadline error, got {err}"
    );
    assert!(err.is_transient(), "deadlines invite a retry: {err}");
    assert!(
        start.elapsed() < Duration::from_millis(500),
        "the server must give up at the client's deadline"
    );
    hold.join().unwrap();
    assert!(
        conn.execute("SELECT 1").is_ok(),
        "budget refreshes per statement"
    );
    drop(conn);
    drop(proxy);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

// ---------------------------------------------------------------------
// kill + restart mid-run

#[test]
fn server_kill_and_restart_mid_run_is_exactly_once() {
    // Reference: one uninterrupted durable run.
    let base_dir = scratch("restart_baseline");
    let server = DurableServer::start(&base_dir);
    let mut conn = connect(&server.addr);
    let baseline = run_em(&mut conn, &em_config(None));
    drop(conn);
    server.stop();
    let (base_seq, base_committed) = wal_stats(&base_dir);
    let _ = std::fs::remove_dir_all(&base_dir);

    // Chaos run: cut the wire mid-stream, and while the client is
    // backing off, kill the server outright and restart it over the
    // same data directory. WAL recovery plus the session log must
    // reconstruct the dedup window so the client's replayed in-flight
    // statement is reconciled — never re-executed.
    let dir = scratch("restart_chaos");
    let server = DurableServer::start(&dir);
    let proxy = Arc::new(ChaosProxy::start(server.addr.as_str()).unwrap());
    proxy.arm(Direction::ToServer, 25, ChaosAction::CutBefore);

    // A dead port: redials during the restart window are refused
    // (transient) instead of reaching the old server.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };

    let watcher_proxy = Arc::clone(&proxy);
    let restarted = Arc::new(AtomicBool::new(false));
    let restarted_flag = Arc::clone(&restarted);
    let watch_dir = dir.clone();
    let watcher = thread::spawn(move || {
        // Wait for the cut to fire, then take the old server down hard.
        while watcher_proxy.rules_fired() == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        watcher_proxy.set_upstream(dead_addr.as_str()).unwrap();
        server.handle.shutdown();
        let gone = Instant::now() + Duration::from_secs(5);
        while server.handle.active_sessions() > 0 && Instant::now() < gone {
            thread::sleep(Duration::from_millis(2));
        }
        server.join.join().unwrap().unwrap();
        // Restart over the same directory: WAL + session-log recovery.
        let revived = DurableServer::start(&watch_dir);
        watcher_proxy.set_upstream(revived.addr.as_str()).unwrap();
        restarted_flag.store(true, Ordering::SeqCst);
        revived
    });

    // Patient backoff: the client must outlast the restart window.
    let retry = RetryPolicy::new(40)
        .with_base_delay(Duration::from_millis(25))
        .with_max_delay(Duration::from_millis(100));
    let mut conn = connect(&proxy.addr().to_string());
    let run = run_em(&mut conn, &em_config(Some(retry)));
    drop(conn);
    let revived = watcher.join().unwrap();
    assert!(
        restarted.load(Ordering::SeqCst),
        "the restart must have happened mid-run"
    );
    assert!(run.retries >= 1, "the client must have ridden out the kill");
    drop(proxy);
    revived.stop();
    assert_same_run("kill+restart", &run, &baseline);
    let (seq, committed) = wal_stats(&dir);
    assert_eq!(
        seq, base_seq,
        "restart run double- or un-applied a mutation"
    );
    assert_eq!(committed, base_committed, "committed WAL counts diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

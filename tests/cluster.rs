//! Sharded scale-out: the scatter/gather coordinator must make a
//! multi-shard cluster indistinguishable from a single node.
//!
//! The [`sqlwire::Coordinator`] hash-partitions every rid-bearing table
//! across N shard executors and fragments each generated statement
//! (scatter partial aggregates, gather ordered reads, run
//! partition-local statements verbatim, replicate broadcast-table
//! mutations). These tests pin the contract from the driver's seat:
//!
//! * a full hybrid EM run over embedded shards — final params, llh
//!   history AND the per-iteration cost-model telemetry (`2k+3` n-scans,
//!   1 pn-scan) bit-identical to a single embedded database, for shard
//!   counts 1, 2 and 4;
//! * the same through two *real* wire servers behind
//!   [`sqlwire::RemoteConnection`]s;
//! * one shard killed mid-run and restarted over its durable directory:
//!   the coordinator surfaces the typed transient error, the driver's
//!   `RetryPolicy` rides out the restart through the shard's resume
//!   token, surviving shards are not double-applied, and the final
//!   model is bit-identical to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use emcore::init::InitStrategy;
use emcore::GmmParams;
use sqlem::{EmSession, RetryPolicy, SqlemConfig, SqlemRun, Strategy};
use sqlengine::{Database, SharedDatabase, SqlExecutor};
use sqlwire::{
    ChaosAction, ChaosProxy, ClientConfig, Coordinator, Direction, RemoteConnection, Server,
    ServerConfig, ServerHandle,
};

// ---------------------------------------------------------------------
// harness

/// Two well-separated 2-D blobs; enough rows that 4 shards all own data.
fn points() -> Vec<Vec<f64>> {
    let mut pts = Vec::new();
    for i in 0..30 {
        let t = (i % 6) as f64 * 0.2;
        pts.push(vec![t, -t]);
        pts.push(vec![9.0 + t, 9.0 - t]);
    }
    pts
}

fn explicit_init() -> GmmParams {
    GmmParams::new(
        vec![vec![2.0, 2.0], vec![7.0, 7.0]],
        vec![8.0, 8.0],
        vec![0.5, 0.5],
    )
}

fn em_config(prefix: &str) -> SqlemConfig {
    SqlemConfig::new(2, Strategy::Hybrid)
        .with_epsilon(1e-12)
        .with_max_iterations(6)
        .with_prefix(prefix)
}

fn run_em<E: SqlExecutor>(db: &mut E, cfg: &SqlemConfig, telemetry: bool) -> SqlemRun {
    let mut session = EmSession::create(db, cfg, 2).unwrap();
    session.load_points(&points()).unwrap();
    session
        .initialize(&InitStrategy::Explicit(explicit_init()))
        .unwrap();
    if telemetry {
        session.enable_telemetry().unwrap();
    }
    session.run().unwrap()
}

fn assert_same_run(label: &str, run: &SqlemRun, baseline: &SqlemRun) {
    assert_eq!(run.params, baseline.params, "{label}: final model diverged");
    assert_eq!(
        run.llh_history, baseline.llh_history,
        "{label}: llh history diverged"
    );
    assert_eq!(run.iterations, baseline.iterations, "{label}: iterations");
    assert_eq!(run.outcome, baseline.outcome, "{label}: outcome");
}

struct TestServer {
    addr: String,
    handle: ServerHandle,
    join: thread::JoinHandle<sqlengine::Result<()>>,
}

impl TestServer {
    fn start(db: SharedDatabase) -> TestServer {
        let config = ServerConfig {
            drain_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", db, config).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle();
        let join = thread::spawn(move || server.run());
        TestServer { addr, handle, join }
    }

    fn start_durable(dir: &Path) -> TestServer {
        TestServer::start(SharedDatabase::new(Database::open_durable(dir).unwrap()))
    }

    fn stop(self) {
        self.handle.shutdown();
        self.join.join().unwrap().unwrap();
    }
}

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlem_cluster_{label}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn connect(addr: &str) -> RemoteConnection {
    let mut last = None;
    for _ in 0..50 {
        match RemoteConnection::connect(addr, ClientConfig::default()) {
            Ok(conn) => return conn,
            Err(e) => {
                last = Some(e);
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
    panic!("could not connect to {addr}: {:?}", last);
}

// ---------------------------------------------------------------------
// the tentpole: sharded == single-node, bit for bit

#[test]
fn sharded_hybrid_run_is_bit_identical_to_embedded() {
    let cfg = em_config("sh_");
    let baseline = run_em(&mut Database::new(), &cfg, true);
    assert!(baseline.iterations >= 2, "need a real run to compare");

    for nshards in [1usize, 2, 4] {
        let shards: Vec<Database> = (0..nshards).map(|_| Database::new()).collect();
        let mut coord = Coordinator::new(shards).unwrap();
        let run = run_em(&mut coord, &cfg, true);
        assert_same_run(&format!("{nshards} shards"), &run, &baseline);

        // Cost-model conformance: the merged per-shard telemetry must
        // reproduce the paper's per-iteration scan counts exactly
        // (2k+3 n-scans + 1 pn-scan for hybrid), not nshards× them.
        assert_eq!(
            run.iteration_reports.len(),
            baseline.iteration_reports.len(),
            "{nshards} shards: telemetry coverage"
        );
        for (r, b) in run
            .iteration_reports
            .iter()
            .zip(&baseline.iteration_reports)
        {
            assert_eq!(
                r.n_scans, b.n_scans,
                "{nshards} shards, iteration {}: n-scans",
                r.iteration
            );
            assert_eq!(
                r.pn_scans, b.pn_scans,
                "{nshards} shards, iteration {}: pn-scans",
                r.iteration
            );
            assert_eq!(
                r.temp_rows_materialized, b.temp_rows_materialized,
                "{nshards} shards, iteration {}: temp rows",
                r.iteration
            );
        }
    }
}

#[test]
fn sharded_run_over_real_servers_matches_embedded() {
    let cfg = em_config("sw_");
    let baseline = run_em(&mut Database::new(), &cfg, false);

    let s0 = TestServer::start(SharedDatabase::default());
    let s1 = TestServer::start(SharedDatabase::default());
    let shards = vec![connect(&s0.addr), connect(&s1.addr)];
    let mut coord = Coordinator::new(shards).unwrap();
    let run = run_em(&mut coord, &cfg, false);
    drop(coord);
    s0.stop();
    s1.stop();

    assert_same_run("2 wire shards", &run, &baseline);
}

// ---------------------------------------------------------------------
// fault tolerance: one shard dies mid-run and comes back

#[test]
fn shard_kill_and_restart_mid_run_is_exactly_once() {
    let cfg = em_config("fk_").with_retry(
        RetryPolicy::new(40)
            .with_base_delay(Duration::from_millis(25))
            .with_max_delay(Duration::from_millis(100)),
    );
    let baseline = run_em(&mut Database::new(), &cfg, false);

    // Shard 0 is a plain wire server; shard 1 is durable and fronted by
    // a chaos proxy so it can be killed and revived at a stable address.
    let dir = scratch("shard1");
    let s0 = TestServer::start(SharedDatabase::default());
    let s1 = TestServer::start_durable(&dir);
    let proxy = Arc::new(ChaosProxy::start(s1.addr.as_str()).unwrap());
    // Cut the wire to shard 1 mid-stream; while the client backs off,
    // take the shard down hard and restart it over the same directory.
    proxy.arm(Direction::ToServer, 60, ChaosAction::CutBefore);

    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let restarted = Arc::new(AtomicBool::new(false));
    let restarted_flag = Arc::clone(&restarted);
    let watcher_proxy = Arc::clone(&proxy);
    let watch_dir = dir.clone();
    let watcher = thread::spawn(move || {
        while watcher_proxy.rules_fired() == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        watcher_proxy.set_upstream(dead_addr.as_str()).unwrap();
        s1.handle.shutdown();
        let gone = Instant::now() + Duration::from_secs(5);
        while s1.handle.active_sessions() > 0 && Instant::now() < gone {
            thread::sleep(Duration::from_millis(2));
        }
        s1.join.join().unwrap().unwrap();
        let revived = TestServer::start_durable(&watch_dir);
        watcher_proxy.set_upstream(revived.addr.as_str()).unwrap();
        restarted_flag.store(true, Ordering::SeqCst);
        revived
    });

    let shards = vec![connect(&s0.addr), connect(&proxy.addr().to_string())];
    let mut coord = Coordinator::new(shards).unwrap();
    let run = run_em(&mut coord, &cfg, false);
    drop(coord);
    let revived = watcher.join().unwrap();
    assert!(
        restarted.load(Ordering::SeqCst),
        "the shard restart must have happened mid-run"
    );
    assert!(
        run.retries >= 1,
        "the driver must have ridden out the shard kill"
    );
    drop(proxy);
    s0.stop();
    revived.stop();
    let _ = std::fs::remove_dir_all(&dir);

    assert_same_run("kill+restart", &run, &baseline);
}

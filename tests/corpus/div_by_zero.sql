-- A reachable division by a literal zero with no CASE guard — the
-- exact failure class the paper's §2.5 fallback expressions exist to
-- prevent.
CREATE TABLE t (a DOUBLE);
SELECT a / 0 FROM t;
DROP TABLE t;

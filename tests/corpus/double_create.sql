-- The same table is created twice with no intervening DROP — the
-- second CREATE would fail at run time after the first already ran.
CREATE TABLE t (a BIGINT);
CREATE TABLE t (a BIGINT);
DROP TABLE t;

-- A work table is created and filled but never dropped: the cleanup
-- section of the script is missing. plancheck must reject this as a
-- WorkTableLeak anchored to the CREATE statement.
CREATE TABLE scratch (a BIGINT, b DOUBLE);
INSERT INTO scratch VALUES (1, 2.0);

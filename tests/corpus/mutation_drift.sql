-- The script author annotated the INSERT as read-only; the derived
-- classification (shared with the WAL layer's is_mutating) says it
-- writes. plancheck must flag the drift, not trust the annotation.
CREATE TABLE t (a BIGINT);
-- expect-readonly
INSERT INTO t VALUES (1);
DROP TABLE t;

-- The INSERT below is far longer than the 120-byte cap the corpus
-- harness checks against — the §3.3 horizontal failure mode in
-- miniature. Must be rejected as TooLong.
CREATE TABLE t (a BIGINT);
INSERT INTO t VALUES (1), (2), (3), (4), (5), (6), (7), (8), (9), (10), (11), (12), (13), (14), (15), (16), (17), (18), (19), (20), (21), (22), (23), (24);
DROP TABLE t;

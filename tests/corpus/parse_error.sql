-- The middle statement is not SQL; the lexer/parser must reject it
-- with a byte position instead of letting it reach the executor.
CREATE TABLE t (a BIGINT);
SELECT FROM WHERE;
DROP TABLE t;

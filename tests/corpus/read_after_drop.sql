-- The SELECT runs after the table has been dropped: a statement-order
-- bug the runtime would only hit mid-script, after DDL has executed.
CREATE TABLE t (a BIGINT);
DROP TABLE t;
SELECT a FROM t;

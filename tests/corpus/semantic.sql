-- The table never exists anywhere in the script or the ambient
-- catalog: a plain semantic error from the analyzer.
SELECT a FROM nowhere;

-- The INSERT references a table that only comes into existence two
-- statements later: the script's statement order is wrong.
INSERT INTO t VALUES (1);
CREATE TABLE t (a BIGINT);
DROP TABLE t;

//! Cost-model conformance tests (tier 1): the paper's §3 scan-count
//! claims, checked against **engine-reported** execution telemetry
//! rather than hard-coded expectations.
//!
//! * §3.6 — one hybrid iteration performs exactly `2k+3` scans of
//!   `n`-row tables plus one scan of a `pn`-row table;
//! * §3.4 — the vertical M step flows through `kpn`-row temporaries;
//! * §3.3 — horizontal computes distances in a single scan of the
//!   `n`-row points table (`z`), touching no `pn`-row table at all.
//!
//! Every count below is derived from [`sqlengine::ExecMetrics`] records
//! produced by the engine while the generated SQL runs — the tests
//! recompute the classification with [`sqlem::scan_threshold`] instead
//! of trusting the driver's own [`sqlem::IterationReport`] numbers,
//! then cross-check that both layers agree.

use datagen::generate_dataset;
use emcore::init::InitStrategy;
use sqlem::{scan_threshold, EmSession, IterationReport, SqlemConfig, Strategy};
use sqlengine::{Database, ExecMetrics};

/// Build a session, run one warm-up iteration (so every work table
/// exists in steady state), enable telemetry and run one measured
/// iteration. Returns the raw engine metrics for the measured iteration.
fn measured_iteration(
    db: &mut Database,
    strategy: Strategy,
    n: usize,
    p: usize,
    k: usize,
) -> (Vec<ExecMetrics>, IterationReport) {
    let data = generate_dataset(n, p, k, 7);
    let config = SqlemConfig::new(k, strategy)
        .with_epsilon(0.0)
        .with_max_iterations(3);
    let mut session = EmSession::create(db, &config, p).unwrap();
    session.load_points(&data.points).unwrap();
    session
        .initialize(&InitStrategy::Random { seed: 11 })
        .unwrap();
    session.iterate_once().unwrap(); // warm-up
    session.enable_telemetry().unwrap();
    let from = session.database().metrics().len();
    session.iterate_once().unwrap();
    let entries = session.database().metrics().entries()[from..].to_vec();
    let report = session
        .iteration_reports()
        .last()
        .expect("telemetry enabled")
        .clone();
    (entries, report)
}

/// Classify one statement's driver scans the way §3.5 counts table
/// passes: build-side scans are free (they feed hash tables over tiny
/// parameter tables), a driver scan of `threshold..=n` rows is an
/// `n`-scan, anything larger is a `pn`-scan.
fn classify(entries: &[ExecMetrics], n: usize, p: usize, k: usize) -> (usize, usize) {
    let threshold = scan_threshold(n, p, k);
    let mut n_scans = 0;
    let mut pn_scans = 0;
    for e in entries {
        for s in e.scans.iter().filter(|s| !s.build) {
            if s.rows > n {
                pn_scans += 1;
            } else if s.rows >= threshold {
                n_scans += 1;
            }
        }
    }
    (n_scans, pn_scans)
}

#[test]
fn hybrid_iteration_costs_2k_plus_3_n_scans_plus_one_pn_scan() {
    for (n, p, k) in [(500, 4, 3), (800, 6, 5), (400, 3, 2), (600, 2, 7)] {
        let mut db = Database::new();
        let (entries, report) = measured_iteration(&mut db, Strategy::Hybrid, n, p, k);
        let (n_scans, pn_scans) = classify(&entries, n, p, k);
        assert_eq!(
            n_scans,
            2 * k + 3,
            "hybrid n-scans for (n={n}, p={p}, k={k})"
        );
        assert_eq!(pn_scans, 1, "hybrid pn-scans for (n={n}, p={p}, k={k})");
        // The driver's per-iteration report must agree with the counts
        // recomputed here straight from the engine records.
        assert_eq!(report.n_scans, n_scans);
        assert_eq!(report.pn_scans, pn_scans);
    }
}

#[test]
fn hybrid_fused_e_step_saves_exactly_one_n_scan() {
    let (n, p, k) = (500, 4, 3);
    let data = generate_dataset(n, p, k, 7);
    let config = SqlemConfig::new(k, Strategy::Hybrid)
        .with_epsilon(0.0)
        .with_max_iterations(3)
        .with_fused_e_step();
    let mut db = Database::new();
    let mut session = EmSession::create(&mut db, &config, p).unwrap();
    session.load_points(&data.points).unwrap();
    session
        .initialize(&InitStrategy::Random { seed: 11 })
        .unwrap();
    session.iterate_once().unwrap();
    session.enable_telemetry().unwrap();
    let from = session.database().metrics().len();
    session.iterate_once().unwrap();
    let entries = session.database().metrics().entries()[from..].to_vec();
    let (n_scans, pn_scans) = classify(&entries, n, p, k);
    assert_eq!(n_scans, 2 * k + 2, "fusing YP+YX removes one n-scan");
    assert_eq!(pn_scans, 1);
}

#[test]
fn vertical_m_step_materializes_kpn_row_temporaries() {
    let (n, p, k) = (300, 4, 3);
    let mut db = Database::new();
    let (entries, report) = measured_iteration(&mut db, Strategy::Vertical, n, p, k);

    // §3.4: the squared-differences temporary (YC) is literally kpn rows.
    let yc = report
        .steps
        .iter()
        .position(|s| s.purpose.contains("YC"))
        .expect("vertical M step has the YC statement");
    assert_eq!(
        entries[yc].rows_inserted,
        k * p * n,
        "YC holds one row per (point, cluster, dimension)"
    );
    // The C' GROUP BY flows kpn join rows even though its output is tiny.
    let ctmp = report
        .steps
        .iter()
        .position(|s| s.purpose.contains("CTMP"))
        .expect("vertical M step has the CTMP statement");
    assert!(
        entries[ctmp].join_probe_rows as usize >= k * p * n,
        "C' join flows at least kpn rows, got {}",
        entries[ctmp].join_probe_rows
    );
    assert_eq!(entries[ctmp].rows_inserted, k * p);

    // The iteration as a whole writes at least kpn temporary rows and
    // repeatedly re-reads pn-row tables — the §3.4 cost the hybrid fixes.
    assert!(report.temp_rows_materialized >= (k * p * n) as u64);
    let (_, pn_scans) = classify(&entries, n, p, k);
    assert!(
        pn_scans >= 4,
        "vertical re-scans pn-row tables, got {pn_scans}"
    );
    assert_eq!(report.pn_scans, pn_scans);
}

#[test]
fn horizontal_distances_are_one_scan_of_the_points_table() {
    let (n, p, k) = (400, 4, 3);
    let mut db = Database::new();
    let (entries, report) = measured_iteration(&mut db, Strategy::Horizontal, n, p, k);

    // §3.3: the wide Mahalanobis expression reads the points table (z)
    // exactly once — one driver scan, n rows, no other table driven.
    let yd = report
        .steps
        .iter()
        .position(|s| s.purpose.contains("one wide expression"))
        .expect("horizontal E step has the wide-expression statement");
    let driver_scans: Vec<_> = entries[yd].scans.iter().filter(|s| !s.build).collect();
    assert_eq!(driver_scans.len(), 1, "single pass over the points table");
    assert_eq!(driver_scans[0].table, "z");
    assert_eq!(driver_scans[0].rows, n);

    // Horizontal never touches a pn-row table (that is its selling
    // point; the price is the Θ(kp)-character expression).
    let (n_scans, pn_scans) = classify(&entries, n, p, k);
    assert_eq!(pn_scans, 0, "horizontal touches no pn-row table");
    assert_eq!(n_scans, 2 * k + 3 + 1, "horizontal pays one extra n-scan");
    assert_eq!(report.pn_scans, 0);
}

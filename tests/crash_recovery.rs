//! Crash-recovery chaos suite: kill the process at every WAL crash
//! point inside a full hybrid EM iteration, reopen the durable
//! database, and require the finished run to be bit-identical to one
//! that was never interrupted.
//!
//! The contract under test (docs/ROBUSTNESS.md "Durability & crash
//! recovery"):
//!
//! * a kill at any WAL byte/record boundary is recovered by replay —
//!   the reopened database holds exactly the committed statement
//!   prefix, and a resumed run finishes bit-identical to the baseline;
//! * a *corrupted* log (bit flip in acknowledged bytes) surfaces as
//!   [`sqlengine::Error::Corruption`] or truncates to a committed
//!   prefix — recovery never invents or alters data;
//! * after recovery plus cleanup no work tables are left behind.
//!
//! The kill tests spawn this test binary again as a child process
//! (filtered to `crash_child`), arm a crashing fault rule inside it,
//! and let `std::process::abort()` simulate `kill -9` mid-statement.
//! `SQLEM_CHAOS_STRIDE=N` samples every Nth kill point (CI `--quick`).

use emcore::init::InitStrategy;
use emcore::GmmParams;
use sqlem::{EmSession, SqlemConfig, SqlemRun, Strategy};
use sqlengine::{Database, Error as SqlError, FaultPlan, FaultRule, FaultSite};
use std::path::{Path, PathBuf};
use std::process::Command;

const ITERS: usize = 3;
const PREFIX: &str = "cr_";

fn stride() -> usize {
    std::env::var("SQLEM_CHAOS_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

fn blobs() -> Vec<Vec<f64>> {
    let mut pts = Vec::new();
    for i in 0..20 {
        let t = (i % 4) as f64 * 0.1;
        pts.push(vec![t, t]);
        pts.push(vec![10.0 + t, 10.0 - t]);
    }
    pts
}

fn blob_init() -> GmmParams {
    GmmParams::new(
        vec![vec![3.0, 3.0], vec![7.0, 7.0]],
        vec![10.0, 10.0],
        vec![0.5, 0.5],
    )
}

fn config() -> SqlemConfig {
    SqlemConfig::new(2, Strategy::Hybrid)
        .with_epsilon(0.0)
        .with_max_iterations(ITERS)
        .with_prefix(PREFIX)
        .with_checkpoints()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlem_crash_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Create → load → initialize → run against an existing database.
fn run_full(db: &mut Database, cfg: &SqlemConfig, init: &GmmParams) -> SqlemRun {
    let mut session = EmSession::create(db, cfg, init.p()).unwrap();
    session.load_points(&blobs()).unwrap();
    session
        .initialize(&InitStrategy::Explicit(init.clone()))
        .unwrap();
    session.run().unwrap()
}

/// Statement counts of a clean run: (after create+load+initialize,
/// after run). The injector's counter is the sweep's index space.
fn statement_counts(cfg: &SqlemConfig, init: &GmmParams) -> (usize, usize) {
    let mut db = Database::new();
    db.set_fault_plan(FaultPlan::new(Vec::new()));
    let mut session = EmSession::create(&mut db, cfg, init.p()).unwrap();
    session.load_points(&blobs()).unwrap();
    session
        .initialize(&InitStrategy::Explicit(init.clone()))
        .unwrap();
    let after_init = session.database().fault_injector().unwrap().executed();
    session.run().unwrap();
    let total = session.database().fault_injector().unwrap().executed();
    (after_init, total)
}

/// Non-checkpoint work tables left behind with the session prefix.
fn leaked(db: &Database, prefix: &str) -> Vec<String> {
    db.catalog()
        .table_names()
        .into_iter()
        .filter(|t| t.starts_with(prefix) && !t.contains("ckpt"))
        .map(str::to_string)
        .collect()
}

fn site_name(site: FaultSite) -> &'static str {
    match site {
        FaultSite::BeforeWalAppend => "before-wal-append",
        FaultSite::AfterWalAppend => "after-wal-append",
        FaultSite::BeforeWalSync => "before-wal-sync",
        _ => unreachable!("not a WAL crash point"),
    }
}

fn site_from_name(name: &str) -> FaultSite {
    match name {
        "before-wal-append" => FaultSite::BeforeWalAppend,
        "after-wal-append" => FaultSite::AfterWalAppend,
        "before-wal-sync" => FaultSite::BeforeWalSync,
        other => panic!("unknown crash site {other:?}"),
    }
}

/// Child half of the kill tests. A no-op unless the parent set the
/// `SQLEM_CRASH_*` environment: then it runs the checkpointed EM
/// session on the durable database with a crashing fault armed, and
/// `std::process::abort()` kills it mid-statement when the rule fires.
#[test]
fn crash_child() {
    let Ok(dir) = std::env::var("SQLEM_CRASH_DIR") else {
        return;
    };
    let site = site_from_name(&std::env::var("SQLEM_CRASH_SITE").unwrap());
    let nth: usize = std::env::var("SQLEM_CRASH_NTH").unwrap().parse().unwrap();

    let mut db = Database::open_durable(&dir).unwrap();
    db.set_fault_plan(FaultPlan::single(
        FaultRule::nth(nth).at_site(site).crashing(),
    ));
    // If the rule never fires (statement `nth` is not a mutating one,
    // so it has no WAL window), the run simply completes.
    run_full(&mut db, &config(), &blob_init());
}

/// Spawn the `crash_child` test in a fresh process. Returns `true` if
/// the child was killed by the armed crash point, `false` if the run
/// completed; anything else (a panic, a wrong exit) fails the test.
fn spawn_child(dir: &Path, site: FaultSite, nth: usize) -> bool {
    let out = Command::new(std::env::current_exe().unwrap())
        .args(["crash_child", "--exact", "--test-threads=1", "--nocapture"])
        .env("SQLEM_CRASH_DIR", dir)
        .env("SQLEM_CRASH_SITE", site_name(site))
        .env("SQLEM_CRASH_NTH", nth.to_string())
        .output()
        .unwrap();
    if out.status.success() {
        return false;
    }
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        assert_eq!(
            out.status.signal(),
            Some(6), // SIGABRT: the simulated power cut
            "{} @ {nth}: child died abnormally but not at the crash point:\n{}",
            site_name(site),
            String::from_utf8_lossy(&out.stderr)
        );
    }
    true
}

/// Reopen the durable database the child left behind and finish the
/// run, resuming from the surviving checkpoint when there is one.
fn recover_and_finish(dir: &Path, cfg: &SqlemConfig, init: &GmmParams, ctx: &str) -> SqlemRun {
    let mut db = Database::open_durable(dir)
        .unwrap_or_else(|e| panic!("{ctx}: a pure kill must never corrupt the log: {e}"));
    let mut session = EmSession::create(&mut db, cfg, init.p()).unwrap();
    session.load_points(&blobs()).unwrap();
    let resumed = session.resume_from_checkpoint().unwrap();
    if resumed.is_none() {
        // Killed before the first checkpoint committed (or mid-
        // checkpoint, which atomically invalidates it): start over.
        session
            .initialize(&InitStrategy::Explicit(init.clone()))
            .unwrap();
    }
    let run = session.run().unwrap();
    session.cleanup().unwrap();
    session.clear_checkpoint().unwrap();
    drop(session);
    let left = leaked(&db, PREFIX);
    assert!(left.is_empty(), "{ctx}: leaked work tables {left:?}");
    run
}

/// The tentpole sweep: for every statement index of one full hybrid EM
/// iteration × every WAL crash point, kill a child process there,
/// reopen, resume, and require bit-identical results.
#[test]
fn kill_at_every_wal_crash_point_recovers_bit_identical() {
    let init = blob_init();
    let cfg = config();
    let baseline = run_full(&mut Database::new(), &cfg, &init);
    assert_eq!(baseline.iterations, ITERS, "baseline must not stop early");

    let (after_init, total) = statement_counts(&cfg, &init);
    let per_iter = (total - after_init) / ITERS;
    assert!(per_iter > 0, "no statements in an iteration?");

    // Iteration 2: after the iteration-1 checkpoint exists, so the
    // sweep exercises both resume-from-checkpoint and fresh-restart
    // recovery (kills inside the checkpoint write destroy it).
    let sweep: Vec<usize> = (after_init + per_iter..after_init + 2 * per_iter + 1)
        .step_by(stride())
        .collect();
    let sites = [
        FaultSite::BeforeWalAppend,
        FaultSite::AfterWalAppend,
        FaultSite::BeforeWalSync,
    ];

    let mut kills = 0usize;
    for site in sites {
        for &nth in &sweep {
            let ctx = format!("kill {} @ statement {nth}", site_name(site));
            let dir = temp_dir(&format!("{}_{nth}", site_name(site)));
            let crashed = spawn_child(&dir, site, nth);
            kills += usize::from(crashed);
            let run = recover_and_finish(&dir, &cfg, &init, &ctx);
            assert_eq!(run.iterations, baseline.iterations, "{ctx}: iterations");
            assert_eq!(run.llh_history, baseline.llh_history, "{ctx}: llh history");
            assert_eq!(run.params, baseline.params, "{ctx}: final model");
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    // The sweep is vacuous if no child ever died: most statements in an
    // EM iteration are mutating, so most indices must have crashed.
    assert!(
        kills * 2 >= sweep.len() * sites.len(),
        "only {kills} kills across {} points — crash points not firing",
        sweep.len() * sites.len()
    );
}

/// A flipped bit anywhere in the acknowledged log must surface as a
/// typed corruption error or truncate to a committed prefix — never
/// silently alter recovered data.
#[test]
fn wal_bit_flip_is_detected_or_truncates_to_a_prefix() {
    let dir = temp_dir("flip");
    const N: i64 = 12;
    {
        let mut db = Database::open_durable(&dir).unwrap();
        db.execute("CREATE TABLE t (a BIGINT PRIMARY KEY)").unwrap();
        for i in 0..N {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
    }
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();

    for pos in (0..bytes.len()).step_by(stride()) {
        for bit in [0x01u8, 0x80u8] {
            let mut bad = bytes.clone();
            bad[pos] ^= bit;
            std::fs::write(&wal, &bad).unwrap();
            match Database::open_durable(&dir) {
                Err(SqlError::Corruption { .. }) => {} // detected
                Err(e) => panic!("flip at byte {pos}: wrong error class: {e}"),
                Ok(mut db) => {
                    // Undetected flips may only tear the tail: the
                    // recovered rows must be a contiguous id prefix.
                    let rows = if db.contains_table("t") {
                        let r = db.execute("SELECT a FROM t ORDER BY a").unwrap();
                        r.rows
                            .iter()
                            .map(|row| match row[0] {
                                sqlengine::Value::Int(v) => v,
                                ref other => panic!("unexpected value {other:?}"),
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let want: Vec<i64> = (0..rows.len() as i64).collect();
                    assert_eq!(
                        rows, want,
                        "flip at byte {pos} bit {bit:#x} altered recovered data"
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Cutting the log at any byte — a torn final write — must reopen
/// without error to a committed statement prefix.
#[test]
fn wal_truncation_at_any_byte_recovers_a_prefix() {
    let dir = temp_dir("trunc");
    const N: i64 = 12;
    {
        let mut db = Database::open_durable(&dir).unwrap();
        db.execute("CREATE TABLE t (a BIGINT PRIMARY KEY)").unwrap();
        for i in 0..N {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
    }
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();

    let mut seen_full = false;
    for cut in (0..=bytes.len()).rev().step_by(stride()) {
        std::fs::write(&wal, &bytes[..cut]).unwrap();
        let mut db = Database::open_durable(&dir)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: truncation must recover: {e}"));
        let rows: Vec<i64> = if db.contains_table("t") {
            db.execute("SELECT a FROM t ORDER BY a")
                .unwrap()
                .rows
                .iter()
                .map(|row| match row[0] {
                    sqlengine::Value::Int(v) => v,
                    ref other => panic!("unexpected value {other:?}"),
                })
                .collect()
        } else {
            Vec::new()
        };
        let want: Vec<i64> = (0..rows.len() as i64).collect();
        assert_eq!(rows, want, "cut at byte {cut} altered recovered data");
        seen_full = seen_full || rows.len() as i64 == N;
    }
    assert!(seen_full, "the uncut log must recover all {N} rows");
    std::fs::remove_dir_all(&dir).ok();
}

/// Compacting mid-run folds the WAL into a snapshot; a subsequent
/// reopen must see the identical catalog, and the EM checkpoint must
/// still resume across the compaction boundary.
#[test]
fn compaction_preserves_checkpoint_across_reopen() {
    let init = blob_init();
    let cfg = config();
    let baseline = run_full(&mut Database::new(), &cfg, &init);

    let dir = temp_dir("compact");
    {
        let mut db = Database::open_durable(&dir).unwrap();
        // Stop at the iteration cap of 2 with a checkpoint, compact,
        // and drop the database mid-job.
        let cfg2 = cfg.clone().with_max_iterations(2);
        let mut session = EmSession::create(&mut db, &cfg2, init.p()).unwrap();
        session.load_points(&blobs()).unwrap();
        session
            .initialize(&InitStrategy::Explicit(init.clone()))
            .unwrap();
        session.run().unwrap();
        drop(session);
        db.compact().unwrap();
        assert!(db.wal_len().unwrap() < 64, "compaction must reset the log");
    }

    let mut db = Database::open_durable(&dir).unwrap();
    let mut session = EmSession::create(&mut db, &cfg, init.p()).unwrap();
    session.load_points(&blobs()).unwrap();
    assert_eq!(
        session.resume_from_checkpoint().unwrap(),
        Some(2),
        "checkpoint must survive compaction + reopen"
    );
    let run = session.run().unwrap();
    assert_eq!(run.llh_history, baseline.llh_history);
    assert_eq!(run.params, baseline.params);
    std::fs::remove_dir_all(&dir).ok();
}

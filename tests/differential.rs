//! Differential tests (tier 1): SQL-generated EM vs. the in-memory
//! oracle, compared **per iteration and per parameter family**.
//!
//! The paper's §1.4 requirement is that pushing EM into SQL must "keep
//! the basic behavior of the EM algorithm unchanged". These tests run
//! each strategy in lockstep with [`emcore::em::em_step`] from the same
//! initial parameters and require, at every one of ≥3 iterations:
//!
//! * the loglikelihood (relative, since llh is `O(n)`),
//! * the mixture weights `W`,
//! * the means `C`,
//! * the diagonal covariances `R`
//!
//! to agree to floating-point noise — including through the two §2.5
//! degenerate regimes, which get dedicated scenarios below: the
//! inverse-distance fallback when every cluster's density underflows,
//! and zero-covariance skipping when a dimension collapses.

use datagen::generate_dataset;
use emcore::em::em_step;
use emcore::init::{initialize, InitStrategy};
use emcore::GmmParams;
use sqlem::{EmSession, SqlemConfig, Strategy};
use sqlengine::Database;

const ITERS: usize = 3;

fn family_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Assert per-family agreement between a SQL-side parameter read-back
/// and the oracle, with a context string for failure messages.
fn assert_params_agree(sql: &GmmParams, oracle: &GmmParams, tol: f64, ctx: &str) {
    for (j, (ms, mo)) in sql.means.iter().zip(&oracle.means).enumerate() {
        let d = family_diff(ms, mo);
        assert!(d <= tol, "{ctx}: mean of cluster {j} diverged by {d}");
    }
    let d = family_diff(&sql.cov, &oracle.cov);
    assert!(d <= tol, "{ctx}: diagonal covariance diverged by {d}");
    let d = family_diff(&sql.weights, &oracle.weights);
    assert!(d <= tol, "{ctx}: weights diverged by {d}");
}

/// Run `ITERS` lockstep iterations from explicit shared parameters.
fn lockstep(strategy: Strategy, points: &[Vec<f64>], init: GmmParams, ctx: &str) {
    let (p, k) = (init.p(), init.k());
    let mut db = Database::new();
    let config = SqlemConfig::new(k, strategy)
        .with_epsilon(0.0)
        .with_max_iterations(ITERS);
    let mut session = EmSession::create(&mut db, &config, p).unwrap();
    session.load_points(points).unwrap();
    session
        .initialize(&InitStrategy::Explicit(init.clone()))
        .unwrap();

    let mut oracle = init;
    for iter in 0..ITERS {
        let sql_llh = session.iterate_once().unwrap();
        let (next, oracle_llh) = em_step(&oracle, points).unwrap();
        oracle = next;
        let denom = oracle_llh.abs().max(1.0);
        assert!(
            ((sql_llh - oracle_llh) / denom).abs() < 1e-9,
            "{ctx} iter {iter}: llh {sql_llh} vs oracle {oracle_llh}"
        );
        let sql_params = session.params().unwrap();
        assert_params_agree(&sql_params, &oracle, 1e-8, &format!("{ctx} iter {iter}"));
    }
}

#[test]
fn every_strategy_tracks_the_oracle_per_iteration() {
    let (n, p, k) = (300, 3, 2);
    let data = generate_dataset(n, p, k, 42);
    let init = initialize(&data.points, k, &InitStrategy::Random { seed: 42 });
    for strategy in [Strategy::Hybrid, Strategy::Horizontal, Strategy::Vertical] {
        lockstep(strategy, &data.points, init.clone(), &format!("{strategy}"));
    }
}

/// §2.5 inverse-distance fallback: clusters at 0 and 10 000 with unit
/// variance, and a batch of points near 2 500 — every cluster density
/// underflows for those points (`exp(-0.5·2500²) = 0`), so both sides
/// must switch to `x_ij = (1/δ_ij)/Σ(1/δ_il)` and skip the points in
/// the llh sum.
#[test]
fn underflow_fallback_agrees_with_oracle() {
    let mut points: Vec<Vec<f64>> = Vec::new();
    for i in 0..60 {
        points.push(vec![(i % 7) as f64 * 0.3]);
        points.push(vec![10_000.0 + (i % 7) as f64 * 0.3]);
    }
    for i in 0..8 {
        points.push(vec![2_500.0 + i as f64]); // the underflow region
    }
    let init = GmmParams::new(vec![vec![0.0], vec![10_000.0]], vec![1.0], vec![0.5, 0.5]);

    // Sanity: this scenario really exercises the fallback — the oracle's
    // responsibility routine reports an unrepresentable density product.
    let mut x = vec![0.0; 2];
    assert!(
        emcore::gaussian::responsibilities(&init, &[2_500.0], &mut x).is_none(),
        "expected densities to underflow at distance 2500"
    );
    assert!((x[0] + x[1] - 1.0).abs() < 1e-12, "fallback normalizes");
    assert!(
        x[0] > x[1],
        "closer cluster gets more inverse-distance mass"
    );

    for strategy in [Strategy::Hybrid, Strategy::Horizontal, Strategy::Vertical] {
        lockstep(
            strategy,
            &points,
            init.clone(),
            &format!("underflow/{strategy}"),
        );
    }
}

/// §2.5 zero-covariance skip: the second dimension is constant, so after
/// the first M step its covariance collapses to exactly 0. Iterations 2
/// and 3 then divide by the guarded `CASE WHEN r = 0 THEN 1` covariance
/// and skip the dimension in `|R|` — on both sides identically.
///
/// The constant is 0.0 on purpose: `C = Σx·0/Σx` and `R = Σx·(0−0)²/n`
/// are exact in floating point no matter the summation order, so SQL
/// and oracle both land on a covariance of *exactly* 0 — any other
/// constant leaves ~1e-32 residue on one side and the exact-zero skip
/// becomes a coin flip.
#[test]
fn zero_covariance_dimension_agrees_with_oracle() {
    let data = generate_dataset(200, 1, 2, 9);
    let points: Vec<Vec<f64>> = data
        .points
        .iter()
        .map(|pt| vec![pt[0], 0.0]) // constant second dimension
        .collect();
    let init = initialize(&points, 2, &InitStrategy::Random { seed: 9 });

    // Sanity: the collapse actually happens after one oracle step.
    let (after_one, _) = em_step(&init, &points).unwrap();
    assert_eq!(after_one.cov[1], 0.0, "constant dimension collapses to 0");

    for strategy in [Strategy::Hybrid, Strategy::Horizontal, Strategy::Vertical] {
        lockstep(
            strategy,
            &points,
            init.clone(),
            &format!("zero-cov/{strategy}"),
        );
    }
}

//! Cross-crate end-to-end tests: datagen → sqlem (all strategies) →
//! emcore oracle/metrics.

use datagen::generate_dataset;
use emcore::compare::{max_param_diff, purity};
use emcore::init::{initialize, InitStrategy};
use sqlem::{EmSession, SqlemConfig, Strategy};
use sqlengine::Database;

/// Full pipeline: generate → load → initialize from a sample → run →
/// score, with quality gates on the recovered model.
#[test]
fn full_pipeline_recovers_well_separated_mixture() {
    let (n, p, k) = (4_000, 3, 4);
    let data = generate_dataset(n, p, k, 77);
    let mut db = Database::new();
    let config = SqlemConfig::new(k, Strategy::Hybrid)
        .with_epsilon(1e-3)
        .with_max_iterations(15);
    let mut session = EmSession::create(&mut db, &config, p).unwrap();
    session.load_points(&data.points).unwrap();
    // EM refines, it does not search globally (§2.2: "it can get stuck in
    // a locally optimal solution"); start from a coarse perturbation of
    // the true structure, as a practitioner's sampled initialization
    // would provide on well-separated data.
    let rough = emcore::GmmParams {
        means: data
            .spec
            .clusters
            .iter()
            .enumerate()
            .map(|(j, c)| c.mean.iter().map(|m| m + 1.0 + 0.3 * j as f64).collect())
            .collect(),
        cov: vec![4.0; p],
        weights: vec![1.0 / k as f64; k],
    };
    session.initialize(&InitStrategy::Explicit(rough)).unwrap();
    let run = session.run().unwrap();
    run.params.validate().unwrap();

    // Every generating mean has a recovered mean within 3 global σ-units
    // of it (lattice spacing is 6, cluster σ = 1 — noise shifts means a
    // bit toward the bounding box).
    for spec_cluster in &data.spec.clusters {
        let nearest = run
            .params
            .means
            .iter()
            .map(|m| {
                m.iter()
                    .zip(&spec_cluster.mean)
                    .map(|(a, b)| (a - b).powi(2))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            nearest < 3.0,
            "no recovered mean near spec mean {:?} (best {nearest})",
            spec_cluster.mean
        );
    }

    // Hard segmentation separates the true clusters well despite noise.
    let scores = session.scores().unwrap();
    let pur = purity(&data.labels, &scores, k);
    assert!(pur > 0.9, "purity {pur}");
}

/// The engine's partition parallelism must not change the result.
#[test]
fn parallel_engine_produces_identical_clustering_story() {
    let (n, p, k) = (6_000, 3, 3);
    let data = generate_dataset(n, p, k, 31);
    let init = initialize(&data.points, k, &InitStrategy::Random { seed: 31 });
    let mut results = Vec::new();
    for workers in [1usize, 4] {
        let mut db = Database::new();
        db.set_workers(workers);
        let config = SqlemConfig::new(k, Strategy::Hybrid)
            .with_epsilon(0.0)
            .with_max_iterations(4);
        let mut session = EmSession::create(&mut db, &config, p).unwrap();
        session.load_points(&data.points).unwrap();
        session
            .initialize(&InitStrategy::Explicit(init.clone()))
            .unwrap();
        results.push(session.run().unwrap().params);
    }
    // FP summation order differs across partitions; the solutions must
    // still agree far beyond statistical noise.
    let d = max_param_diff(&results[0], &results[1]);
    assert!(d < 1e-6, "parallel diverged from serial by {d}");
}

/// The paper's §1.3 requirement: results must not depend on input order.
#[test]
fn input_order_does_not_change_the_solution() {
    let (n, p, k) = (2_000, 2, 3);
    let data = generate_dataset(n, p, k, 55);
    let mut reversed = data.points.clone();
    reversed.reverse();
    let init = initialize(&data.points, k, &InitStrategy::Random { seed: 55 });

    let run_on = |points: &[Vec<f64>]| {
        let mut db = Database::new();
        let config = SqlemConfig::new(k, Strategy::Hybrid)
            .with_epsilon(0.0)
            .with_max_iterations(5);
        let mut session = EmSession::create(&mut db, &config, p).unwrap();
        session.load_points(points).unwrap();
        session
            .initialize(&InitStrategy::Explicit(init.clone()))
            .unwrap();
        session.run().unwrap().params
    };
    let a = run_on(&data.points);
    let b = run_on(&reversed);
    // Identical multiset of points ⇒ identical solution up to FP
    // summation order.
    let d = max_param_diff(&a, &b);
    assert!(d < 1e-6, "order-dependent result: {d}");
}

/// Two sessions with different prefixes can run interleaved in one
/// database without clobbering each other.
#[test]
fn interleaved_prefixed_sessions() {
    let data_a = generate_dataset(500, 2, 2, 1);
    let data_b = generate_dataset(700, 3, 3, 2);
    let init_a = initialize(&data_a.points, 2, &InitStrategy::Random { seed: 1 });
    let init_b = initialize(&data_b.points, 3, &InitStrategy::Random { seed: 2 });

    let mut db = Database::new();
    // Interleave: create A, create B, run A one step, run B one step…
    // (requires sequential &mut access, so scopes alternate).
    {
        let cfg = SqlemConfig::new(2, Strategy::Hybrid).with_prefix("a_");
        let mut sa = EmSession::create(&mut db, &cfg, 2).unwrap();
        sa.load_points(&data_a.points).unwrap();
        sa.initialize(&InitStrategy::Explicit(init_a)).unwrap();
        sa.iterate_once().unwrap();
    }
    {
        let cfg = SqlemConfig::new(3, Strategy::Vertical).with_prefix("b_");
        let mut sb = EmSession::create(&mut db, &cfg, 3).unwrap();
        sb.load_points(&data_b.points).unwrap();
        sb.initialize(&InitStrategy::Explicit(init_b)).unwrap();
        sb.iterate_once().unwrap();
    }
    // A's tables are untouched by B's run.
    assert_eq!(db.table_len("a_z").unwrap(), 500);
    assert_eq!(db.table_len("b_y").unwrap(), 700 * 3);
    let r = db.execute("SELECT count(*) FROM a_yx").unwrap();
    assert_eq!(r.scalar_f64(), Some(500.0));
}

/// K-means (SQL) and EM (SQL) broadly agree on well-separated data: the
/// EM means match the K-means centroids.
#[test]
fn sql_kmeans_and_sql_em_agree_on_separated_data() {
    let (n, p, k) = (1_500, 2, 3);
    let data = generate_dataset(n, p, k, 9);

    let mut db1 = Database::new();
    let em_cfg = SqlemConfig::new(k, Strategy::Hybrid)
        .with_epsilon(1e-6)
        .with_max_iterations(20);
    let mut em = EmSession::create(&mut db1, &em_cfg, p).unwrap();
    em.load_points(&data.points).unwrap();
    em.initialize(&InitStrategy::FromSample {
        fraction: 0.2,
        seed: 9,
        em_iterations: 5,
    })
    .unwrap();
    let em_run = em.run().unwrap();

    let mut db2 = Database::new();
    let km_cfg = sqlem::KmeansConfig::new(k);
    let mut km = sqlem::KmeansSession::create(&mut db2, &km_cfg, p).unwrap();
    km.load_points(&data.points).unwrap();
    km.set_centroids(&em_run.params.means).unwrap();
    let km_run = km.run().unwrap();

    // Seeded at EM's solution, K-means stays there (both are local
    // optima of closely related objectives on well-separated blobs).
    for (em_mean, km_c) in em_run.params.means.iter().zip(&km_run.centroids) {
        let dist: f64 = em_mean
            .iter()
            .zip(km_c)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dist < 1.0, "EM mean and K-means centroid diverged: {dist}");
    }
}

//! End-to-end tests for the paper's noted extensions: categorical
//! attributes via binary expansion (§3.7) and per-cluster covariances
//! (§2.1).

use datagen::categorical::{CategoricalEncoder, MixedRow};
use emcore::emfull::FullParams;
use emcore::init::InitStrategy;
use emcore::GmmParams;
use prng::{Rng, StdRng};
use sqlem::{EmSession, PerClusterConfig, PerClusterSession, SqlemConfig, Strategy};
use sqlengine::Database;

/// §3.7 end to end: two behavioural segments that differ in a categorical
/// attribute; after one-hot expansion, SQLEM's centroids read back as the
/// per-segment category probabilities.
#[test]
fn categorical_expansion_clusters_and_reads_back_probabilities() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut rows = Vec::new();
    // Segment A: small baskets, 80% cash. Segment B: big baskets, 90% card.
    for i in 0..400 {
        let noise: f64 = rng.random::<f64>();
        if i % 2 == 0 {
            rows.push(MixedRow {
                numeric: vec![5.0 + noise],
                categorical: vec![if rng.random::<f64>() < 0.8 {
                    "cash"
                } else {
                    "card"
                }
                .to_string()],
            });
        } else {
            rows.push(MixedRow {
                numeric: vec![50.0 + noise * 5.0],
                categorical: vec![if rng.random::<f64>() < 0.9 {
                    "card"
                } else {
                    "cash"
                }
                .to_string()],
            });
        }
    }
    let encoder = CategoricalEncoder::fit(&rows);
    let points = encoder.transform(&rows);
    let p = encoder.expanded_p();
    assert_eq!(p, 3); // 1 numeric + {card, cash}

    let mut db = Database::new();
    let config = SqlemConfig::new(2, Strategy::Hybrid)
        .with_epsilon(1e-6)
        .with_max_iterations(20);
    let mut session = EmSession::create(&mut db, &config, p).unwrap();
    session.load_points(&points).unwrap();
    let init = GmmParams::new(
        vec![vec![15.0, 0.5, 0.5], vec![40.0, 0.5, 0.5]],
        vec![100.0, 0.25, 0.25],
        vec![0.5, 0.5],
    );
    session.initialize(&InitStrategy::Explicit(init)).unwrap();
    let run = session.run().unwrap();

    // Identify the small-basket cluster and decode its centroid.
    let small = if run.params.means[0][0] < run.params.means[1][0] {
        0
    } else {
        1
    };
    let probs = encoder.centroid_probabilities(&run.params.means[small]);
    let cash = probs[0].iter().find(|(l, _)| *l == "cash").unwrap().1;
    assert!(
        (cash - 0.8).abs() < 0.07,
        "small-basket cash probability {cash}, expected ≈ 0.8"
    );
    let big = 1 - small;
    let probs = encoder.centroid_probabilities(&run.params.means[big]);
    let card = probs[0].iter().find(|(l, _)| *l == "card").unwrap().1;
    assert!(
        (card - 0.9).abs() < 0.07,
        "big-basket card probability {card}, expected ≈ 0.9"
    );
}

/// §2.1 end to end: per-cluster covariances beat the shared-R model on
/// heteroscedastic data, measured by loglikelihood on the same points.
#[test]
fn per_cluster_covariance_fits_heteroscedastic_data_better() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut normal = datagen::normal::Normal::new();
    let mut pts = Vec::new();
    for _ in 0..600 {
        pts.push(vec![normal.sample_with(&mut rng, 0.0, 0.5)]);
        pts.push(vec![normal.sample_with(&mut rng, 40.0, 8.0)]);
    }

    // Shared-R SQLEM.
    let mut db1 = Database::new();
    let shared_cfg = SqlemConfig::new(2, Strategy::Hybrid)
        .with_epsilon(1e-6)
        .with_max_iterations(30);
    let mut shared = EmSession::create(&mut db1, &shared_cfg, 1).unwrap();
    shared.load_points(&pts).unwrap();
    shared
        .initialize(&InitStrategy::Explicit(GmmParams::new(
            vec![vec![10.0], vec![30.0]],
            vec![100.0],
            vec![0.5, 0.5],
        )))
        .unwrap();
    let shared_run = shared.run().unwrap();

    // Per-cluster SQLEM.
    let mut db2 = Database::new();
    let mut full_cfg = PerClusterConfig::new(2);
    full_cfg.epsilon = 1e-6;
    full_cfg.max_iterations = 30;
    let mut full = PerClusterSession::create(&mut db2, &full_cfg, 1).unwrap();
    full.load_points(&pts).unwrap();
    full.set_params(&FullParams {
        means: vec![vec![10.0], vec![30.0]],
        covs: vec![vec![100.0], vec![100.0]],
        weights: vec![0.5, 0.5],
    })
    .unwrap();
    let full_run = full.run().unwrap();

    let shared_llh = *shared_run.llh_history.last().unwrap();
    let full_llh = *full_run.llh_history.last().unwrap();
    assert!(
        full_llh > shared_llh + 100.0,
        "per-cluster llh {full_llh} should clearly beat shared {shared_llh}"
    );

    // And the recovered spreads differ by the right magnitude: the wide
    // cluster's variance is ~(8/0.5)² = 256× the tight one's.
    let (tight, wide) = if full_run.params.covs[0][0] < full_run.params.covs[1][0] {
        (0, 1)
    } else {
        (1, 0)
    };
    let ratio = full_run.params.covs[wide][0] / full_run.params.covs[tight][0];
    assert!(
        (50.0..=1500.0).contains(&ratio),
        "variance ratio {ratio}, expected ~256"
    );
}

/// The fused hybrid (§5 future work) runs the full quickstart pipeline
/// and matches the classic hybrid on final parameters.
#[test]
fn fused_hybrid_full_pipeline() {
    let data = datagen::generate_dataset(1_500, 3, 3, 13);
    let init = emcore::init::initialize(&data.points, 3, &InitStrategy::Random { seed: 13 });
    let run_with = |fused: bool| {
        let mut db = Database::new();
        let mut config = SqlemConfig::new(3, Strategy::Hybrid)
            .with_epsilon(1e-4)
            .with_max_iterations(12);
        if fused {
            config = config.with_fused_e_step();
        }
        let mut s = EmSession::create(&mut db, &config, 3).unwrap();
        s.load_points(&data.points).unwrap();
        s.initialize(&InitStrategy::Explicit(init.clone())).unwrap();
        let run = s.run().unwrap();
        let scores = s.scores().unwrap();
        (run, scores)
    };
    let (classic, classic_scores) = run_with(false);
    let (fused, fused_scores) = run_with(true);
    assert_eq!(classic.iterations, fused.iterations);
    assert!(emcore::compare::max_param_diff(&classic.params, &fused.params) < 1e-8);
    assert_eq!(classic_scores, fused_scores);
}

//! Overload suite: end-to-end EM runs under a byte-accurate memory
//! budget (tier-2 robustness for the resource governor).
//!
//! The contract under test (docs/ROBUSTNESS.md "Resource governance"):
//!
//! * under a tight budget every concurrent session either completes
//!   **bit-identically** to the unconstrained baseline (degrading
//!   gracefully by shrinking its bulk-load chunks) or fails with the
//!   typed, transient [`sqlengine::Error::ResourceExhausted`] — and
//!   either way leaves zero work tables behind;
//! * a budget below the smallest unit of work (one staged row) is a
//!   clean typed failure, never a panic or a partial load;
//! * on a durable database the budget changes WAL *framing* (more,
//!   smaller bulk-insert frames) but not WAL *meaning*: recovery
//!   reaches the same logical state as an unconstrained run;
//! * with no budget installed, the gauges still report but results
//!   are unchanged — governance is observe-only by default.

use emcore::init::InitStrategy;
use emcore::GmmParams;
use sqlem::{EmSession, RetryPolicy, SqlemConfig, SqlemError, SqlemRun, Strategy};
use sqlengine::{Database, MemoryBudget, SharedDatabase, SqlExecutor};
use std::path::PathBuf;

/// Points are deliberately wide (p = 6) so the bulk load's staging
/// buffer — n rows of width p+1 — dominates every other statement's
/// footprint. That opens a budget window where EM statements fit but
/// the one-shot load does not, forcing the chunk-shrink ladder.
const P: usize = 6;
const N: usize = 48;

fn points() -> Vec<Vec<f64>> {
    (0..N)
        .map(|i| {
            let t = (i % 5) as f64 * 0.2;
            let base = if i % 2 == 0 { 0.0 } else { 12.0 };
            (0..P).map(|d| base + t + d as f64 * 0.01).collect()
        })
        .collect()
}

fn init_params() -> GmmParams {
    GmmParams::new(
        vec![vec![2.0; P], vec![9.0; P]],
        vec![8.0; P],
        vec![0.5, 0.5],
    )
}

fn config(prefix: &str) -> SqlemConfig {
    SqlemConfig::new(2, Strategy::Hybrid)
        .with_epsilon(0.0)
        .with_max_iterations(2)
        .with_prefix(prefix)
}

/// Create → load → initialize → run → cleanup. Work tables are dropped
/// on success *and* on error, so any table left behind is a leak.
fn run_session<E: SqlExecutor>(
    db: &mut E,
    cfg: &SqlemConfig,
    pts: &[Vec<f64>],
    init: &GmmParams,
) -> Result<SqlemRun, SqlemError> {
    let mut session = EmSession::create(db, cfg, init.p())?;
    let result = (|| {
        session.load_points(pts)?;
        session.initialize(&InitStrategy::Explicit(init.clone()))?;
        session.run()
    })();
    match result {
        Ok(run) => {
            session.cleanup()?;
            Ok(run)
        }
        Err(e) => {
            let _ = session.cleanup();
            Err(e)
        }
    }
}

/// Largest per-statement `peak_mem_bytes` gauge of an unconstrained
/// run of `cfg` — the smallest budget under which that exact run
/// cannot fail.
fn probe_peak(cfg: &SqlemConfig, pts: &[Vec<f64>], init: &GmmParams) -> u64 {
    let mut db = Database::new();
    db.enable_metrics();
    run_session(&mut db, cfg, pts, init).unwrap();
    db.take_metrics()
        .iter()
        .map(|m| m.peak_mem_bytes)
        .max()
        .unwrap()
}

/// A budget that admits every statement of the workload *except* the
/// unchunked bulk load: big enough for the run with single-row chunks,
/// too small for the full staging buffer. Asserts the window exists.
fn tight_budget(pts: &[Vec<f64>], init: &GmmParams) -> u64 {
    let rest = probe_peak(&config("pr_").with_load_chunk_rows(1), pts, init);
    let full = probe_peak(&config("pr_"), pts, init);
    let budget = rest + rest / 8;
    assert!(
        full > budget,
        "workload is not load-dominated: full-load peak {full} <= budget {budget}"
    );
    budget
}

/// Work tables left behind with `prefix` (checkpoint tables are
/// durable by design and excluded).
fn leaked(db: &Database, prefix: &str) -> Vec<String> {
    db.catalog()
        .table_names()
        .into_iter()
        .filter(|t| t.starts_with(prefix) && !t.contains("ckpt"))
        .map(str::to_string)
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlem_overload_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Four sessions race through `SharedDatabase` clones under one global
/// budget sized below the unchunked load. Every session must either
/// finish bit-identical to the unconstrained baseline or fail typed —
/// and at least one must have degraded (shrunk its load chunks) rather
/// than failed.
#[test]
fn concurrent_sessions_under_tight_budget_match_baseline_or_fail_typed() {
    const CLIENTS: usize = 4;
    let (pts, init) = (points(), init_params());
    let baseline = run_session(&mut Database::new(), &config("ob_"), &pts, &init).unwrap();
    let budget = tight_budget(&pts, &init);

    let shared = SharedDatabase::default();
    shared.with(|db| db.set_memory_budget(Some(MemoryBudget::new(budget))));

    let results: Vec<(String, Result<SqlemRun, SqlemError>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let mut client = shared.clone();
                let (pts, init) = (&pts, &init);
                s.spawn(move || {
                    let prefix = format!("ov{c}_");
                    let cfg = config(&prefix).with_retry(RetryPolicy::immediate(4));
                    let result = run_session(&mut client, &cfg, pts, init);
                    (prefix, result)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut shrinks = 0;
    let mut completed = 0;
    for (prefix, result) in &results {
        match result {
            Ok(run) => {
                assert_eq!(run.params, baseline.params, "{prefix}: params diverged");
                assert_eq!(
                    run.llh_history, baseline.llh_history,
                    "{prefix}: llh diverged"
                );
                shrinks += run.load_shrinks;
                completed += 1;
            }
            Err(e) => {
                assert!(e.is_resource_exhausted(), "{prefix}: untyped failure: {e}");
                assert!(e.is_transient(), "{prefix}: exhaustion must stay retryable");
            }
        }
        let left = shared.with(|db| leaked(db, prefix));
        assert!(left.is_empty(), "{prefix}: leaked tables {left:?}");
    }
    assert!(completed > 0, "no session survived the budget");
    assert!(shrinks > 0, "the budget never forced a chunk shrink");
}

/// A budget below one staged row starves every session: all must fail
/// with the typed transient error and leave nothing behind.
#[test]
fn starvation_budget_fails_every_session_typed_and_leak_free() {
    const CLIENTS: usize = 3;
    let (pts, init) = (points(), init_params());
    let shared = SharedDatabase::default();
    shared.with(|db| db.set_memory_budget(Some(MemoryBudget::new(64))));

    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let mut client = shared.clone();
            let (pts, init) = (&pts, &init);
            s.spawn(move || {
                let prefix = format!("os{c}_");
                let err = run_session(&mut client, &config(&prefix), pts, init)
                    .expect_err("a 64-byte budget cannot stage a row");
                assert!(err.is_resource_exhausted(), "{prefix}: {err}");
                assert!(err.is_transient(), "{prefix}: must stay retryable");
                let left = client.with(|db| leaked(db, &prefix));
                assert!(left.is_empty(), "{prefix}: leaked tables {left:?}");
            });
        }
    });
}

/// The whole service tier at once: an admission cap *and* a global
/// memory budget on one server. Dials into the saturated cap are shed
/// with the transient retry-after error and absorbed by redialing;
/// admitted sessions run EM under the budget and must match the
/// unconstrained baseline bit for bit (degrading via chunk shrinks)
/// or fail typed — never anything in between.
#[test]
fn overloaded_server_sheds_dials_and_admitted_sessions_degrade() {
    use sqlwire::{ClientConfig, RemoteConnection, Server, ServerConfig};
    use std::time::Duration;

    fn dial(addr: &str, namespace: &str) -> RemoteConnection {
        let cfg = ClientConfig {
            namespace: namespace.to_string(),
            ..ClientConfig::default()
        };
        loop {
            match RemoteConnection::connect(addr, cfg.clone()) {
                Ok(conn) => return conn,
                Err(e) if e.is_transient() => std::thread::sleep(Duration::from_millis(5)),
                Err(e) => panic!("permanent dial failure: {e}"),
            }
        }
    }

    let (pts, init) = (points(), init_params());
    let baseline = run_session(&mut Database::new(), &config("ob_"), &pts, &init).unwrap();
    let budget = tight_budget(&pts, &init);

    let shared = SharedDatabase::default();
    let server = Server::bind(
        "127.0.0.1:0",
        shared.clone(),
        ServerConfig {
            max_connections: 2,
            memory_budget: Some(budget),
            shed_retry_after: Duration::from_millis(10),
            drain_timeout: Duration::from_secs(2),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let accept_loop = std::thread::spawn(move || server.run());

    // Saturate the cap, then dial into it: every extra dial must be
    // shed with the transient backpressure error and counted.
    let holders: Vec<_> = (0..2).map(|_| dial(&addr, "")).collect();
    for _ in 0..3 {
        let err = RemoteConnection::connect(&addr, ClientConfig::default()).unwrap_err();
        assert!(err.is_transient(), "shedding invites a retry: {err}");
        assert!(err.to_string().contains("retry after"), "{err}");
    }
    assert!(handle.shed_count() >= 3, "sheds: {}", handle.shed_count());
    drop(holders);

    // Three EM clients contend for the two slots, redialing through
    // residual shedding, each under the shared global budget.
    let results: Vec<(String, Result<SqlemRun, SqlemError>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|c| {
                let (addr, pts, init) = (&addr, &pts, &init);
                s.spawn(move || {
                    let prefix = format!("ow{c}_");
                    let mut conn = dial(addr, &prefix);
                    let cfg = config(&prefix).with_retry(RetryPolicy::immediate(4));
                    let result = run_session(&mut conn, &cfg, pts, init);
                    (prefix, result)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut shrinks = 0;
    let mut completed = 0;
    for (prefix, result) in &results {
        match result {
            Ok(run) => {
                assert_eq!(run.params, baseline.params, "{prefix}: params diverged");
                assert_eq!(
                    run.llh_history, baseline.llh_history,
                    "{prefix}: llh diverged"
                );
                shrinks += run.load_shrinks;
                completed += 1;
            }
            Err(e) => {
                assert!(e.is_resource_exhausted(), "{prefix}: untyped failure: {e}");
                assert!(e.is_transient(), "{prefix}: exhaustion must stay retryable");
            }
        }
        let left = shared.with(|db| leaked(db, prefix));
        assert!(left.is_empty(), "{prefix}: leaked tables {left:?}");
    }
    assert!(completed > 0, "no session survived the overloaded server");
    assert!(shrinks > 0, "the budget never forced a chunk shrink");
    assert!(
        handle.peak_memory_bytes().is_some_and(|p| p > 0),
        "the global pool gauge never moved"
    );

    handle.shutdown();
    accept_loop.join().unwrap().unwrap();
}

/// WAL parity: a budget-constrained durable run logs more (smaller)
/// bulk-insert frames than an unconstrained one, but recovery replays
/// both logs to the same logical state, and the runs themselves are
/// bit-identical.
#[test]
fn durable_runs_with_and_without_budget_recover_to_identical_state() {
    let (pts, init) = (points(), init_params());
    let budget = tight_budget(&pts, &init);

    let run_durable = |tag: &str, budget: Option<u64>| -> (PathBuf, SqlemRun) {
        let dir = temp_dir(tag);
        let mut db = Database::open_durable(&dir).unwrap();
        db.set_memory_budget(budget.map(MemoryBudget::new));
        let run = run_session(&mut db, &config("ow_"), &pts, &init).unwrap();
        assert!(leaked(&db, "ow_").is_empty(), "{tag}: leaked work tables");
        (dir, run)
    };
    let (plain_dir, plain) = run_durable("plain", None);
    let (budget_dir, constrained) = run_durable("budget", Some(budget));

    assert_eq!(constrained.params, plain.params, "budget changed the model");
    assert_eq!(constrained.llh_history, plain.llh_history, "llh diverged");
    assert_eq!(plain.load_shrinks, 0, "unconstrained run must not shrink");
    assert!(
        constrained.load_shrinks > 0,
        "the budget never forced a chunk shrink"
    );

    // Replay both logs: identical catalogs, no resurrected work tables.
    let recovered_plain = Database::open_durable(&plain_dir).unwrap();
    let recovered_budget = Database::open_durable(&budget_dir).unwrap();
    let mut tables_plain = recovered_plain.catalog().table_names();
    let mut tables_budget = recovered_budget.catalog().table_names();
    tables_plain.sort_unstable();
    tables_budget.sort_unstable();
    assert_eq!(tables_plain, tables_budget, "recovered catalogs differ");
    assert!(leaked(&recovered_plain, "ow_").is_empty());
    assert!(leaked(&recovered_budget, "ow_").is_empty());

    std::fs::remove_dir_all(&plain_dir).ok();
    std::fs::remove_dir_all(&budget_dir).ok();
}

/// With no budget installed the governor is observe-only: gauges
/// report real peaks but the run, its chunking, and its results are
/// byte-for-byte what they were before governance existed.
#[test]
fn without_budget_gauges_report_and_behavior_is_unchanged() {
    let (pts, init) = (points(), init_params());
    let cfg = config("og_");
    let plain = run_session(&mut Database::new(), &cfg, &pts, &init).unwrap();

    let mut db = Database::new();
    db.enable_metrics();
    assert_eq!(db.memory_budget_bytes(), None);
    let gauged = run_session(&mut db, &cfg, &pts, &init).unwrap();

    assert_eq!(gauged.params, plain.params, "metrics changed the model");
    assert_eq!(gauged.llh_history, plain.llh_history, "llh diverged");
    assert_eq!(gauged.load_shrinks, 0, "no budget, no degradation");
    let metrics = db.take_metrics();
    assert!(
        metrics.iter().any(|m| m.peak_mem_bytes > 0),
        "gauges must report without a budget"
    );
}

//! Static-analysis conformance tests (tier 1 for this layer):
//!
//! 1. **Static == dynamic.** The symbolic per-iteration scan counts
//!    derived by [`sqlem::analyze_strategy`] — without executing a
//!    single statement — must equal the counts recomputed from the
//!    engine's [`sqlengine::ExecMetrics`] records of a real steady-state
//!    iteration, on the same `(n, p, k)` grid `tests/cost_model.rs`
//!    uses. Not just the totals: the ordered `(table, rows)` sequence of
//!    every counted scan must match event for event.
//! 2. **Negative corpus.** Every broken script under `tests/corpus/`
//!    is rejected with a *typed*, *positioned* diagnostic — the right
//!    [`DiagnosticKind`] variant anchored to a statement index and a
//!    byte offset.
//! 3. **Golden reports.** The rendered [`sqlem::PlanReport`] for each
//!    strategy at `p=3, k=2` is pinned as a snapshot under
//!    `tests/snapshots/` (refresh with `UPDATE_SNAPSHOTS=1`).

use std::fs;
use std::path::PathBuf;

use datagen::generate_dataset;
use emcore::init::InitStrategy;
use sqlem::{
    analyze_strategy, scan_threshold, CostCheck, EmSession, PlanReport, ScanClass, SqlemConfig,
    Strategy,
};
use sqlengine::{
    check_script, CheckEnv, Database, DiagnosticKind, ExecMetrics, ScriptSpec, ScriptStmt,
};

// ---------------------------------------------------------------------------
// Part 1: static scan derivation == engine telemetry, exactly.
// ---------------------------------------------------------------------------

/// Run one measured steady-state iteration (same protocol as
/// `tests/cost_model.rs`: warm-up iteration, then telemetry on) and
/// return the engine metrics for it.
fn measured_iteration(
    db: &mut Database,
    strategy: Strategy,
    fused: bool,
    n: usize,
    p: usize,
    k: usize,
) -> Vec<ExecMetrics> {
    let data = generate_dataset(n, p, k, 7);
    let mut config = SqlemConfig::new(k, strategy)
        .with_epsilon(0.0)
        .with_max_iterations(3);
    if fused {
        config = config.with_fused_e_step();
    }
    let mut session = EmSession::create(db, &config, p).unwrap();
    session.load_points(&data.points).unwrap();
    session
        .initialize(&InitStrategy::Random { seed: 11 })
        .unwrap();
    session.iterate_once().unwrap(); // warm-up
    session.enable_telemetry().unwrap();
    let from = session.database().metrics().len();
    session.iterate_once().unwrap();
    session.database().metrics().entries()[from..].to_vec()
}

/// The ordered `(table, rows)` sequence of every *counted* driver scan
/// in the measured iteration — build-side and sub-threshold scans are
/// free, exactly as `tests/cost_model.rs` classifies them.
fn dynamic_scan_events(
    entries: &[ExecMetrics],
    n: usize,
    p: usize,
    k: usize,
) -> Vec<(String, usize)> {
    let threshold = scan_threshold(n, p, k);
    entries
        .iter()
        .flat_map(|e| e.scans.iter())
        .filter(|s| !s.build && s.rows >= threshold)
        .map(|s| (s.table.clone(), s.rows))
        .collect()
}

/// Analyze a strategy against a *fresh, empty* database — the static
/// side never sees the session that actually ran.
fn static_report(strategy: Strategy, fused: bool, p: usize, k: usize) -> PlanReport {
    let mut db = Database::new();
    let mut config = SqlemConfig::new(k, strategy);
    if fused {
        config = config.with_fused_e_step();
    }
    analyze_strategy(&mut db, &config, p).unwrap()
}

/// One strategy's slice of the conformance grid.
type GridRow = (Strategy, bool, &'static [(usize, usize, usize)]);

#[test]
fn static_scan_counts_match_engine_telemetry_on_the_cost_model_grid() {
    let grid: &[GridRow] = &[
        (
            Strategy::Hybrid,
            false,
            &[(500, 4, 3), (800, 6, 5), (400, 3, 2), (600, 2, 7)],
        ),
        (Strategy::Hybrid, true, &[(500, 4, 3)]),
        (Strategy::Vertical, false, &[(300, 4, 3)]),
        (Strategy::Horizontal, false, &[(400, 4, 3)]),
    ];
    for &(strategy, fused, points) in grid {
        for &(n, p, k) in points {
            let mut db = Database::new();
            let entries = measured_iteration(&mut db, strategy, fused, n, p, k);

            // Dynamic truth: counts recomputed from raw engine records.
            let threshold = scan_threshold(n, p, k);
            let dynamic = dynamic_scan_events(&entries, n, p, k);
            let dyn_n = dynamic.iter().filter(|(_, r)| *r <= n).count();
            let dyn_pn = dynamic.len() - dyn_n;

            // Static derivation: abstract interpretation of the script,
            // fresh database, nothing executed.
            let report = static_report(strategy, fused, p, k);
            assert!(
                report.ok(),
                "{strategy} p={p} k={k} should analyze clean:\n{}",
                report.render()
            );
            let cost = report
                .cost
                .as_ref()
                .expect("steady-state iteration cost derived");
            assert_eq!(
                (cost.n_scans, cost.pn_scans),
                (dyn_n, dyn_pn),
                "{strategy} (fused={fused}) static vs dynamic scan counts \
                 for (n={n}, p={p}, k={k})"
            );
            assert!(
                matches!(report.cost_check, CostCheck::Verified { .. }),
                "{strategy} closed form should verify, got: {}",
                report.cost_check
            );

            // Event for event: every counted symbolic scan, evaluated at
            // this concrete (n, p, k), must reproduce the engine's
            // (table, rows) sequence in order.
            let evaluated: Vec<(String, usize)> = cost
                .scans
                .iter()
                .filter(|(_, class)| *class != ScanClass::Free)
                .map(|(ev, _)| (ev.table.clone(), ev.rows.eval(n, p, k) as usize))
                .collect();
            assert_eq!(
                evaluated, dynamic,
                "{strategy} (fused={fused}) symbolic scan events vs engine \
                 records for (n={n}, p={p}, k={k}, threshold={threshold})"
            );
        }
    }
}

#[test]
fn every_static_verdict_matches_the_paper_closed_form() {
    // The closed forms the grid test cross-checks against telemetry,
    // asserted symbolically for a wider (p, k) sweep — no execution at
    // all, so this sweep is cheap.
    for k in 2..=8 {
        for p in 2..=6 {
            for (strategy, fused, expect) in [
                (Strategy::Hybrid, false, (2 * k + 3, 1)),
                (Strategy::Hybrid, true, (2 * k + 2, 1)),
                (Strategy::Horizontal, false, (2 * k + 4, 0)),
                (Strategy::Vertical, false, (1, 9)),
            ] {
                let report = static_report(strategy, fused, p, k);
                let cost = report.cost.as_ref().unwrap();
                assert_eq!(
                    (cost.n_scans, cost.pn_scans),
                    expect,
                    "{strategy} fused={fused} p={p} k={k}"
                );
                assert!(matches!(report.cost_check, CostCheck::Verified { .. }));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Part 2: the negative corpus.
// ---------------------------------------------------------------------------

fn corpus_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name)
}

/// Parse a corpus file into a [`ScriptSpec`]: statements split on `;`,
/// `--` comment lines stripped, with one annotation understood —
/// `-- expect-readonly` / `-- expect-mutating` set the *next*
/// statement's `expected_mutating` claim.
fn parse_corpus(text: &str) -> ScriptSpec {
    let mut statements = Vec::new();
    let mut expect: Option<bool> = None;
    for chunk in text.split(';') {
        let mut lines = Vec::new();
        for line in chunk.lines() {
            let t = line.trim();
            if let Some(comment) = t.strip_prefix("--") {
                if comment.trim().starts_with("expect-readonly") {
                    expect = Some(false);
                } else if comment.trim().starts_with("expect-mutating") {
                    expect = Some(true);
                }
                continue;
            }
            if !t.is_empty() {
                lines.push(t);
            }
        }
        let sql = lines.join(" ");
        if sql.is_empty() {
            continue;
        }
        let mut stmt = ScriptStmt::new(format!("stmt{}", statements.len()), sql);
        stmt.expected_mutating = expect.take();
        statements.push(stmt);
    }
    ScriptSpec {
        statements,
        ..ScriptSpec::default()
    }
}

#[test]
fn corpus_scripts_are_rejected_with_typed_positioned_diagnostics() {
    type Matcher = fn(&DiagnosticKind) -> bool;
    let corpus: &[(&str, Matcher)] = &[
        (
            "leak.sql",
            |k| matches!(k, DiagnosticKind::WorkTableLeak { table } if table == "scratch"),
        ),
        (
            "read_after_drop.sql",
            |k| matches!(k, DiagnosticKind::ReadAfterDrop { table } if table == "t"),
        ),
        (
            "use_before_create.sql",
            |k| matches!(k, DiagnosticKind::UseBeforeCreate { table } if table == "t"),
        ),
        (
            "double_create.sql",
            |k| matches!(k, DiagnosticKind::DoubleCreate { table } if table == "t"),
        ),
        ("div_by_zero.sql", |k| {
            matches!(k, DiagnosticKind::DivisionByZero { .. })
        }),
        ("mutation_drift.sql", |k| {
            matches!(
                k,
                DiagnosticKind::MutationMismatch {
                    expected: false,
                    derived: true
                }
            )
        }),
        ("parse_error.sql", |k| matches!(k, DiagnosticKind::Parse(_))),
        ("semantic.sql", |k| matches!(k, DiagnosticKind::Semantic(_))),
        ("oversized.sql", |k| {
            matches!(k, DiagnosticKind::TooLong { max: 120, .. })
        }),
    ];
    let env = CheckEnv {
        max_statement_len: 120,
        ..CheckEnv::default()
    };
    for (file, matches_kind) in corpus {
        let text = fs::read_to_string(corpus_path(file)).unwrap();
        let spec = parse_corpus(&text);
        assert!(
            !spec.statements.is_empty(),
            "{file}: corpus file parsed to an empty script"
        );
        let report = check_script(&spec, &env);
        assert!(!report.ok(), "{file}: broken script accepted");
        let diag = report
            .errors()
            .find(|d| matches_kind(&d.kind))
            .unwrap_or_else(|| {
                panic!(
                    "{file}: expected diagnostic kind not found; got: {:?}",
                    report.diagnostics
                )
            });
        assert!(
            diag.stmt.is_some(),
            "{file}: diagnostic not anchored to a statement: {diag}"
        );
        assert!(
            diag.pos.is_some(),
            "{file}: diagnostic has no byte position: {diag}"
        );
    }
}

#[test]
fn corpus_diagnostics_point_at_the_offending_token() {
    // Spot-check two byte positions end to end: the diagnostic's offset
    // must actually land on the named token inside the statement text.
    let env = CheckEnv::default();

    let text = fs::read_to_string(corpus_path("read_after_drop.sql")).unwrap();
    let spec = parse_corpus(&text);
    let report = check_script(&spec, &env);
    let diag = report
        .errors()
        .find(|d| matches!(&d.kind, DiagnosticKind::ReadAfterDrop { .. }))
        .unwrap();
    let stmt = &spec.statements[diag.stmt.unwrap()].sql;
    let at = diag.pos.unwrap();
    assert_eq!(&stmt[at..at + 1], "t", "position lands on the table name");

    let text = fs::read_to_string(corpus_path("div_by_zero.sql")).unwrap();
    let spec = parse_corpus(&text);
    let report = check_script(&spec, &env);
    let diag = report
        .errors()
        .find(|d| matches!(&d.kind, DiagnosticKind::DivisionByZero { .. }))
        .unwrap();
    let stmt = &spec.statements[diag.stmt.unwrap()].sql;
    let at = diag.pos.unwrap();
    assert_eq!(&stmt[at..at + 1], "0", "position lands on the zero literal");
}

// ---------------------------------------------------------------------------
// Part 3: golden rendered reports.
// ---------------------------------------------------------------------------

const P: usize = 3;
const K: usize = 2;

fn check_report_snapshot(name: &str, strategy: Strategy, fused: bool) {
    let report = static_report(strategy, fused, P, K);
    let rendered = report.render();
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.txt"));
    if std::env::var("UPDATE_SNAPSHOTS").is_ok() {
        fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read snapshot {} ({e}); run with UPDATE_SNAPSHOTS=1 to create it",
            path.display()
        )
    });
    if rendered != expected {
        let diverge = rendered
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| rendered.lines().count().min(expected.lines().count()));
        panic!(
            "snapshot {name} diverges at line {}:\n  got:      {:?}\n  expected: {:?}\n\
             (run with UPDATE_SNAPSHOTS=1 to refresh)",
            diverge + 1,
            rendered.lines().nth(diverge).unwrap_or(""),
            expected.lines().nth(diverge).unwrap_or(""),
        );
    }
}

#[test]
fn plancheck_report_snapshot_hybrid() {
    check_report_snapshot("plancheck_hybrid_p3_k2", Strategy::Hybrid, false);
}

#[test]
fn plancheck_report_snapshot_hybrid_fused() {
    check_report_snapshot("plancheck_hybrid_fused_p3_k2", Strategy::Hybrid, true);
}

#[test]
fn plancheck_report_snapshot_horizontal() {
    check_report_snapshot("plancheck_horizontal_p3_k2", Strategy::Horizontal, false);
}

#[test]
fn plancheck_report_snapshot_vertical() {
    check_report_snapshot("plancheck_vertical_p3_k2", Strategy::Vertical, false);
}

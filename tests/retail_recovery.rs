//! The §4.1 retail experiment as a quality-gated test: SQLEM with k = 9
//! on generated market-basket data must recover the published segment
//! structure.

use datagen::retail::{retail_dataset, RetailConfig, RETAIL_K, RETAIL_P};
use emcore::init::InitStrategy;
use sqlem::{summary, EmSession, SqlemConfig, Strategy};
use sqlengine::Database;

/// EM refines a reasonable starting point; it is not a global optimizer
/// (§2.2). The paper's analysts initialized from samples plus business
/// knowledge and report the structure EM settled on. To make the test
/// deterministic we start from a *coarsely perturbed* version of the
/// generating segment means (what a decent sampled init looks like) and
/// gate on EM recovering the published structure from there.
fn rough_init() -> emcore::GmmParams {
    let segments = &datagen::retail::RETAIL_SEGMENTS;
    let means: Vec<Vec<f64>> = segments
        .iter()
        .enumerate()
        .map(|(j, s)| {
            s.mean
                .iter()
                .zip(&s.sd)
                .map(|(m, sd)| m + sd * (0.8 - 0.2 * j as f64))
                .collect()
        })
        .collect();
    // Global diagonal covariance and uniform weights: the standard
    // ignorant start for R and W.
    emcore::GmmParams {
        means,
        cov: vec![9.0, 200.0, 10.0, 120.0, 6.0, 3.0],
        weights: vec![1.0 / RETAIL_K as f64; RETAIL_K],
    }
}

fn run_retail(n: usize, seed: u64) -> (sqlem::SqlemRun, Vec<usize>, datagen::Dataset) {
    let data = retail_dataset(&RetailConfig { n, seed });
    let mut db = Database::new();
    let config = SqlemConfig::new(RETAIL_K, Strategy::Hybrid)
        .with_epsilon(1.0)
        .with_max_iterations(8);
    let mut session = EmSession::create(&mut db, &config, RETAIL_P).unwrap();
    session.load_points(&data.points).unwrap();
    session
        .initialize(&InitStrategy::Explicit(rough_init()))
        .unwrap();
    let run = session.run().unwrap();
    let scores = session.scores().unwrap();
    (run, scores, data)
}

#[test]
fn recovers_the_71_percent_quick_trip_story() {
    let (run, _, _) = run_retail(15_000, 20000518);
    run.params.validate().unwrap();

    // Paper: "about 71% of its clientele in two clusters". The recovered
    // top-2 weight should be in that neighbourhood.
    let top2 = summary::top_weight(&run.params, 2);
    assert!(
        (0.55..=0.85).contains(&top2),
        "top-2 weight {top2}, expected ≈ 0.71"
    );

    // The two dominant clusters are quick trips (few, cheap items) split
    // by shopping hour: one near noon, one late afternoon.
    let summaries = summary::summarize(&run.params);
    let (a, b) = (&summaries[0], &summaries[1]);
    for s in [a, b] {
        assert!(s.mean[4] < 5.0, "quick-trip items {:.1}", s.mean[4]);
        assert!(s.mean[1] < 15.0, "quick-trip sales {:.1}", s.mean[1]);
    }
    let (noon, evening) = if a.mean[0] < b.mean[0] {
        (a, b)
    } else {
        (b, a)
    };
    assert!(
        (10.0..=14.0).contains(&noon.mean[0]),
        "noon cluster hour {:.1}",
        noon.mean[0]
    );
    assert!(
        (15.5..=20.0).contains(&evening.mean[0]),
        "evening cluster hour {:.1}",
        evening.mean[0]
    );
}

#[test]
fn recovers_core_and_lunch_segments() {
    let (run, _, _) = run_retail(15_000, 20000518);
    let summaries = summary::summarize(&run.params);

    // Paper: core shoppers average ~9 products from ~6 sections; some
    // recovered cluster must show that profile.
    assert!(
        summaries
            .iter()
            .any(|s| s.mean[4] > 7.0 && s.mean[5] > 4.5 && s.weight > 0.02),
        "no core-shopper cluster found"
    );
    // Paper: a ~10% lunch cluster near noon with ~5 products/4 sections.
    assert!(
        summaries.iter().any(|s| {
            (10.5..=13.5).contains(&s.mean[0])
                && (3.0..=7.0).contains(&s.mean[4])
                && s.weight > 0.04
        }),
        "no lunch cluster found"
    );
    // Cherry pickers: high sales, high discount, few items.
    assert!(
        summaries.iter().any(|s| s.mean[2] > 5.0 && s.mean[4] < 5.0),
        "no cherry-picking cluster found"
    );
}

#[test]
fn segmentation_purity_is_high() {
    let (_, scores, data) = run_retail(12_000, 3);
    let purity = emcore::compare::purity(&data.labels, &scores, RETAIL_K);
    // Segments overlap (the two quick-trip clusters share the basket
    // profile), so demand good-but-not-perfect purity.
    assert!(purity > 0.75, "purity {purity}");
}

#[test]
fn weights_cover_every_generated_basket() {
    let (run, scores, data) = run_retail(8_000, 8);
    assert!(run.params.weights_normalized());
    assert_eq!(scores.len(), data.n());
    // Every basket got a real segment id.
    assert!(scores.iter().all(|&s| s < RETAIL_K));
}

//! Golden-SQL snapshot tests (tier 1): the exact text every generator
//! emits for a small fixed problem size, pinned under
//! `tests/snapshots/*.sql`.
//!
//! The generated SQL **is** the paper's artifact — Figures 5–10 are SQL
//! listings — so accidental drift in the emitted text (a lost CASE
//! guard, a changed join predicate, a renamed work table) is a
//! correctness bug even when the numbers still happen to come out right.
//! These tests freeze the full script per strategy: DDL, post-load
//! seeding, E step, M step, scoring and the llh query.
//!
//! To update after an intentional generator change:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test snapshots
//! ```
//!
//! then review the diff like any other code change.

use sqlem::{build_generator, Generator, SqlemConfig, Strategy};

/// Problem size for the snapshots: small enough to read, large enough
/// that per-dimension/per-cluster unrolling (y1..y3, c1..c2) shows up.
const P: usize = 3;
const K: usize = 2;
const N: usize = 1000;

/// Render a generator's full script as one annotated SQL document.
fn render(generator: &dyn Generator) -> String {
    let mut out = String::new();
    let mut section = |title: &str, stmts: &[sqlem::Stmt]| {
        out.push_str(&format!("-- ==== {title} ====\n"));
        for s in stmts {
            out.push_str(&format!("-- {}\n{};\n\n", s.purpose, s.sql));
        }
    };
    section("create tables", &generator.create_tables());
    section("post load (n = 1000)", &generator.post_load(N));
    section("E step", &generator.e_step());
    section("M step", &generator.m_step());
    section("score", &generator.score_step());
    out.push_str("-- ==== loglikelihood ====\n");
    out.push_str(&format!("{};\n", generator.llh_sql()));
    out
}

fn check_snapshot(name: &str, config: &SqlemConfig) {
    let generator = build_generator(config, P);
    let rendered = render(generator.as_ref());
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.sql"));
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read snapshot {}: {e}", path.display()));
    if rendered != golden {
        let diverges = rendered
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| rendered.lines().count().min(golden.lines().count()));
        panic!(
            "generated SQL for `{name}` drifted from tests/snapshots/{name}.sql \
             (first difference at line {}).\n  golden:    {:?}\n  generated: {:?}\n\
             If the change is intentional, re-pin with \
             UPDATE_SNAPSHOTS=1 cargo test --test snapshots",
            diverges + 1,
            golden.lines().nth(diverges).unwrap_or("<eof>"),
            rendered.lines().nth(diverges).unwrap_or("<eof>"),
        );
    }
}

#[test]
fn horizontal_sql_matches_snapshot() {
    check_snapshot(
        "horizontal_p3_k2",
        &SqlemConfig::new(K, Strategy::Horizontal),
    );
}

#[test]
fn vertical_sql_matches_snapshot() {
    check_snapshot("vertical_p3_k2", &SqlemConfig::new(K, Strategy::Vertical));
}

#[test]
fn hybrid_sql_matches_snapshot() {
    check_snapshot("hybrid_p3_k2", &SqlemConfig::new(K, Strategy::Hybrid));
}

#[test]
fn hybrid_fused_sql_matches_snapshot() {
    check_snapshot(
        "hybrid_fused_p3_k2",
        &SqlemConfig::new(K, Strategy::Hybrid).with_fused_e_step(),
    );
}

#[test]
fn snapshots_parse_under_default_engine_limits() {
    // Every pinned statement must survive the engine's own parser and
    // analyzer limits — a snapshot that cannot even parse is stale.
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        return; // files are being rewritten concurrently by the other tests
    }
    for name in [
        "horizontal_p3_k2",
        "vertical_p3_k2",
        "hybrid_p3_k2",
        "hybrid_fused_p3_k2",
    ] {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/snapshots")
            .join(format!("{name}.sql"));
        let script = std::fs::read_to_string(&path).unwrap();
        let db = sqlengine::Database::new();
        // DDL + post-load must run; E/M statements reference tables the
        // DDL creates, so the whole script prepares in order.
        let mut symbolic = db.symbolic_catalog();
        // The engine's parser takes bare statements: drop the `-- …`
        // annotation lines the snapshot renderer adds.
        let bare: String = script
            .lines()
            .filter(|l| !l.trim_start().starts_with("--"))
            .collect::<Vec<_>>()
            .join("\n");
        for (i, stmt) in bare
            .split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .enumerate()
        {
            db.prepare_with(&mut symbolic, stmt)
                .unwrap_or_else(|e| panic!("{name} statement {i} does not prepare: {e}"));
        }
    }
}

-- ==== create tables ====
-- DDL: drop z
DROP TABLE IF EXISTS z;

-- DDL: create z
CREATE TABLE z (rid BIGINT PRIMARY KEY, y1 DOUBLE, y2 DOUBLE, y3 DOUBLE);

-- DDL: drop c1
DROP TABLE IF EXISTS c1;

-- DDL: create c1
CREATE TABLE c1 (y1 DOUBLE, y2 DOUBLE, y3 DOUBLE);

-- DDL: drop c2
DROP TABLE IF EXISTS c2;

-- DDL: create c2
CREATE TABLE c2 (y1 DOUBLE, y2 DOUBLE, y3 DOUBLE);

-- DDL: drop yd
DROP TABLE IF EXISTS yd;

-- DDL: create yd
CREATE TABLE yd (rid BIGINT PRIMARY KEY, d1 DOUBLE, d2 DOUBLE);

-- DDL: drop yp
DROP TABLE IF EXISTS yp;

-- DDL: create yp
CREATE TABLE yp (rid BIGINT PRIMARY KEY, p1 DOUBLE, p2 DOUBLE, sump DOUBLE, suminvd DOUBLE, d1 DOUBLE, d2 DOUBLE);

-- DDL: drop yx
DROP TABLE IF EXISTS yx;

-- DDL: create yx
CREATE TABLE yx (rid BIGINT PRIMARY KEY, x1 DOUBLE, x2 DOUBLE, llh DOUBLE);

-- DDL: drop r
DROP TABLE IF EXISTS r;

-- DDL: create r
CREATE TABLE r (y1 DOUBLE, y2 DOUBLE, y3 DOUBLE);

-- DDL: drop rk
DROP TABLE IF EXISTS rk;

-- DDL: create rk
CREATE TABLE rk (i BIGINT PRIMARY KEY, y1 DOUBLE, y2 DOUBLE, y3 DOUBLE);

-- DDL: drop w
DROP TABLE IF EXISTS w;

-- DDL: create w
CREATE TABLE w (w1 DOUBLE, w2 DOUBLE, llh DOUBLE);

-- DDL: drop gmm
DROP TABLE IF EXISTS gmm;

-- DDL: create gmm
CREATE TABLE gmm (n BIGINT, twopipdiv2 DOUBLE, detr DOUBLE, sqrtdetr DOUBLE);

-- ==== post load (n = 1000) ====
-- seed GMM (n, (2π)^{p/2})
INSERT INTO gmm VALUES (1000, 15.749609945722419, 0, 0);

-- ==== E step ====
-- E: |R| and sqrt|R| into GMM
UPDATE gmm FROM r SET detr = (CASE WHEN r.y1 = 0 THEN 1 ELSE r.y1 END) * (CASE WHEN r.y2 = 0 THEN 1 ELSE r.y2 END) * (CASE WHEN r.y3 = 0 THEN 1 ELSE r.y3 END), sqrtdetr = detr ** 0.5;

-- refresh yd: drop
DROP TABLE IF EXISTS yd;

-- refresh yd: create
CREATE TABLE yd (rid BIGINT PRIMARY KEY, d1 DOUBLE, d2 DOUBLE);

-- E: Mahalanobis distances (YD, one wide expression)
INSERT INTO yd SELECT rid, (z.y1 - c1.y1) ** 2 / (CASE WHEN r.y1 = 0 THEN 1 ELSE r.y1 END) + (z.y2 - c1.y2) ** 2 / (CASE WHEN r.y2 = 0 THEN 1 ELSE r.y2 END) + (z.y3 - c1.y3) ** 2 / (CASE WHEN r.y3 = 0 THEN 1 ELSE r.y3 END), (z.y1 - c2.y1) ** 2 / (CASE WHEN r.y1 = 0 THEN 1 ELSE r.y1 END) + (z.y2 - c2.y2) ** 2 / (CASE WHEN r.y2 = 0 THEN 1 ELSE r.y2 END) + (z.y3 - c2.y3) ** 2 / (CASE WHEN r.y3 = 0 THEN 1 ELSE r.y3 END) FROM z, c1, c2, r;

-- refresh yp: drop
DROP TABLE IF EXISTS yp;

-- refresh yp: create
CREATE TABLE yp (rid BIGINT PRIMARY KEY, p1 DOUBLE, p2 DOUBLE, sump DOUBLE, suminvd DOUBLE, d1 DOUBLE, d2 DOUBLE);

-- E: normal probabilities (YP)
INSERT INTO yp SELECT rid, w1 / (twopipdiv2 * sqrtdetr) * exp(-0.5 * d1) AS p1, w2 / (twopipdiv2 * sqrtdetr) * exp(-0.5 * d2) AS p2, p1 + p2 AS sump, 1 / (d1 + 1.0E-100) + 1 / (d2 + 1.0E-100) AS suminvd, d1, d2 FROM yd, gmm, w;

-- refresh yx: drop
DROP TABLE IF EXISTS yx;

-- refresh yx: create
CREATE TABLE yx (rid BIGINT PRIMARY KEY, x1 DOUBLE, x2 DOUBLE, llh DOUBLE);

-- E: responsibilities (YX)
INSERT INTO yx SELECT rid, CASE WHEN sump > 0 THEN p1 / sump ELSE (1 / (d1 + 1.0E-100)) / suminvd END, CASE WHEN sump > 0 THEN p2 / sump ELSE (1 / (d2 + 1.0E-100)) / suminvd END, CASE WHEN sump > 0 THEN ln(sump) END FROM yp;

-- ==== M step ====
-- M: clear C1
DELETE FROM c1;

-- M: mean of cluster 1 (C1)
INSERT INTO c1 SELECT sum(z.y1 * x1) / sum(x1), sum(z.y2 * x1) / sum(x1), sum(z.y3 * x1) / sum(x1) FROM z, yx WHERE z.rid = yx.rid;

-- M: clear C2
DELETE FROM c2;

-- M: mean of cluster 2 (C2)
INSERT INTO c2 SELECT sum(z.y1 * x2) / sum(x2), sum(z.y2 * x2) / sum(x2), sum(z.y3 * x2) / sum(x2) FROM z, yx WHERE z.rid = yx.rid;

-- M: clear W
DELETE FROM w;

-- M: accumulate W' and llh
INSERT INTO w SELECT sum(x1), sum(x2), sum(llh) FROM yx;

-- M: W = W'/n
UPDATE w FROM gmm SET w1 = w1 / gmm.n, w2 = w2 / gmm.n;

-- M: clear RK
DELETE FROM rk;

-- M: covariance contribution of cluster 1 (RK)
INSERT INTO rk SELECT 1, sum(x1 * (z.y1 - c1.y1) ** 2), sum(x1 * (z.y2 - c1.y2) ** 2), sum(x1 * (z.y3 - c1.y3) ** 2) FROM z, c1, yx WHERE z.rid = yx.rid;

-- M: covariance contribution of cluster 2 (RK)
INSERT INTO rk SELECT 2, sum(x2 * (z.y1 - c2.y1) ** 2), sum(x2 * (z.y2 - c2.y2) ** 2), sum(x2 * (z.y3 - c2.y3) ** 2) FROM z, c2, yx WHERE z.rid = yx.rid;

-- M: clear R
DELETE FROM r;

-- M: global covariance R = ΣRK/n
INSERT INTO r SELECT sum(y1 / gmm.n), sum(y2 / gmm.n), sum(y3 / gmm.n) FROM rk, gmm;

-- ==== score ====
-- refresh x: drop
DROP TABLE IF EXISTS x;

-- refresh x: create
CREATE TABLE x (rid BIGINT, i BIGINT, x DOUBLE, PRIMARY KEY (rid, i));

-- score: pivot x1 into X
INSERT INTO x SELECT rid, 1, x1 FROM yx;

-- score: pivot x2 into X
INSERT INTO x SELECT rid, 2, x2 FROM yx;

-- refresh xmax: drop
DROP TABLE IF EXISTS xmax;

-- refresh xmax: create
CREATE TABLE xmax (rid BIGINT PRIMARY KEY, maxx DOUBLE);

-- score: per-point max responsibility (XMAX)
INSERT INTO xmax SELECT rid, max(x) FROM x GROUP BY rid;

-- refresh ys: drop
DROP TABLE IF EXISTS ys;

-- refresh ys: create
CREATE TABLE ys (rid BIGINT PRIMARY KEY, score BIGINT);

-- score: argmax cluster (YS)
INSERT INTO ys SELECT x.rid, min(x.i) FROM x, xmax WHERE x.rid = xmax.rid AND x.x = xmax.maxx GROUP BY x.rid;

-- ==== loglikelihood ====
SELECT llh FROM w;

-- ==== create tables ====
-- DDL: drop z
DROP TABLE IF EXISTS z;

-- DDL: create z
CREATE TABLE z (rid BIGINT PRIMARY KEY, y1 DOUBLE, y2 DOUBLE, y3 DOUBLE);

-- DDL: drop y
DROP TABLE IF EXISTS y;

-- DDL: create y
CREATE TABLE y (rid BIGINT, v BIGINT, val DOUBLE, PRIMARY KEY (rid, v));

-- DDL: drop yd
DROP TABLE IF EXISTS yd;

-- DDL: create yd
CREATE TABLE yd (rid BIGINT PRIMARY KEY, d1 DOUBLE, d2 DOUBLE);

-- DDL: drop yx
DROP TABLE IF EXISTS yx;

-- DDL: create yx
CREATE TABLE yx (rid BIGINT PRIMARY KEY, p1 DOUBLE, p2 DOUBLE, sump DOUBLE, suminvd DOUBLE, x1 DOUBLE, x2 DOUBLE, llh DOUBLE);

-- DDL: drop c
DROP TABLE IF EXISTS c;

-- DDL: create c
CREATE TABLE c (i BIGINT PRIMARY KEY, y1 DOUBLE, y2 DOUBLE, y3 DOUBLE);

-- DDL: drop rk
DROP TABLE IF EXISTS rk;

-- DDL: create rk
CREATE TABLE rk (i BIGINT PRIMARY KEY, y1 DOUBLE, y2 DOUBLE, y3 DOUBLE);

-- DDL: drop r
DROP TABLE IF EXISTS r;

-- DDL: create r
CREATE TABLE r (y1 DOUBLE, y2 DOUBLE, y3 DOUBLE);

-- DDL: drop cr
DROP TABLE IF EXISTS cr;

-- DDL: create cr
CREATE TABLE cr (v BIGINT PRIMARY KEY, c1 DOUBLE, c2 DOUBLE, r DOUBLE);

-- DDL: drop w
DROP TABLE IF EXISTS w;

-- DDL: create w
CREATE TABLE w (w1 DOUBLE, w2 DOUBLE, llh DOUBLE);

-- DDL: drop gmm
DROP TABLE IF EXISTS gmm;

-- DDL: create gmm
CREATE TABLE gmm (n BIGINT, twopipdiv2 DOUBLE, detr DOUBLE, sqrtdetr DOUBLE);

-- ==== post load (n = 1000) ====
-- seed GMM (n, (2π)^{p/2})
INSERT INTO gmm VALUES (1000, 15.749609945722419, 0, 0);

-- seed CR skeleton
INSERT INTO cr VALUES (1, 0, 0, 0), (2, 0, 0, 0), (3, 0, 0, 0);

-- ==== E step ====
-- E: |R| and sqrt|R| into GMM
UPDATE gmm FROM r SET detr = (CASE WHEN r.y1 = 0 THEN 1 ELSE r.y1 END) * (CASE WHEN r.y2 = 0 THEN 1 ELSE r.y2 END) * (CASE WHEN r.y3 = 0 THEN 1 ELSE r.y3 END), sqrtdetr = detr ** 0.5;

-- E: transpose C1 into CR
UPDATE cr FROM c SET c1 = CASE WHEN cr.v = 1 THEN c.y1 WHEN cr.v = 2 THEN c.y2 WHEN cr.v = 3 THEN c.y3 END WHERE c.i = 1;

-- E: transpose C2 into CR
UPDATE cr FROM c SET c2 = CASE WHEN cr.v = 1 THEN c.y1 WHEN cr.v = 2 THEN c.y2 WHEN cr.v = 3 THEN c.y3 END WHERE c.i = 2;

-- E: transpose R into CR (zero-guarded)
UPDATE cr FROM r SET r = CASE WHEN cr.v = 1 THEN (CASE WHEN r.y1 = 0 THEN 1 ELSE r.y1 END) WHEN cr.v = 2 THEN (CASE WHEN r.y2 = 0 THEN 1 ELSE r.y2 END) WHEN cr.v = 3 THEN (CASE WHEN r.y3 = 0 THEN 1 ELSE r.y3 END) END;

-- refresh yd: drop
DROP TABLE IF EXISTS yd;

-- refresh yd: create
CREATE TABLE yd (rid BIGINT PRIMARY KEY, d1 DOUBLE, d2 DOUBLE);

-- E: Mahalanobis distances (YD, vertical)
INSERT INTO yd SELECT rid, sum((y.val - cr.c1) ** 2 / cr.r), sum((y.val - cr.c2) ** 2 / cr.r) FROM y, cr WHERE y.v = cr.v GROUP BY rid;

-- refresh yx: drop
DROP TABLE IF EXISTS yx;

-- refresh yx: create
CREATE TABLE yx (rid BIGINT PRIMARY KEY, p1 DOUBLE, p2 DOUBLE, sump DOUBLE, suminvd DOUBLE, x1 DOUBLE, x2 DOUBLE, llh DOUBLE);

-- E: fused probabilities + responsibilities (YX)
INSERT INTO yx SELECT rid, w1 / (twopipdiv2 * sqrtdetr) * exp(-0.5 * d1) AS p1, w2 / (twopipdiv2 * sqrtdetr) * exp(-0.5 * d2) AS p2, p1 + p2 AS sump, 1 / (d1 + 1.0E-100) + 1 / (d2 + 1.0E-100) AS suminvd, CASE WHEN sump > 0 THEN p1 / sump ELSE (1 / (d1 + 1.0E-100)) / suminvd END AS x1, CASE WHEN sump > 0 THEN p2 / sump ELSE (1 / (d2 + 1.0E-100)) / suminvd END AS x2, CASE WHEN sump > 0 THEN ln(sump) END FROM yd, gmm, w;

-- ==== M step ====
-- M: clear C
DELETE FROM c;

-- M: mean of cluster 1 (C)
INSERT INTO c SELECT 1, sum(z.y1 * x1) / sum(x1), sum(z.y2 * x1) / sum(x1), sum(z.y3 * x1) / sum(x1) FROM z, yx WHERE z.rid = yx.rid;

-- M: mean of cluster 2 (C)
INSERT INTO c SELECT 2, sum(z.y1 * x2) / sum(x2), sum(z.y2 * x2) / sum(x2), sum(z.y3 * x2) / sum(x2) FROM z, yx WHERE z.rid = yx.rid;

-- M: clear W
DELETE FROM w;

-- M: accumulate W' and llh
INSERT INTO w SELECT sum(x1), sum(x2), sum(llh) FROM yx;

-- M: W = W'/n
UPDATE w FROM gmm SET w1 = w1 / gmm.n, w2 = w2 / gmm.n;

-- M: clear RK
DELETE FROM rk;

-- M: covariance contribution of cluster 1 (RK)
INSERT INTO rk SELECT 1, sum(x1 * (z.y1 - c.y1) ** 2), sum(x1 * (z.y2 - c.y2) ** 2), sum(x1 * (z.y3 - c.y3) ** 2) FROM z, c, yx WHERE z.rid = yx.rid AND c.i = 1;

-- M: covariance contribution of cluster 2 (RK)
INSERT INTO rk SELECT 2, sum(x2 * (z.y1 - c.y1) ** 2), sum(x2 * (z.y2 - c.y2) ** 2), sum(x2 * (z.y3 - c.y3) ** 2) FROM z, c, yx WHERE z.rid = yx.rid AND c.i = 2;

-- M: clear R
DELETE FROM r;

-- M: global covariance R = ΣRK/n
INSERT INTO r SELECT sum(y1 / gmm.n), sum(y2 / gmm.n), sum(y3 / gmm.n) FROM rk, gmm;

-- ==== score ====
-- refresh x: drop
DROP TABLE IF EXISTS x;

-- refresh x: create
CREATE TABLE x (rid BIGINT, i BIGINT, x DOUBLE, PRIMARY KEY (rid, i));

-- score: pivot x1 into X
INSERT INTO x SELECT rid, 1, x1 FROM yx;

-- score: pivot x2 into X
INSERT INTO x SELECT rid, 2, x2 FROM yx;

-- refresh xmax: drop
DROP TABLE IF EXISTS xmax;

-- refresh xmax: create
CREATE TABLE xmax (rid BIGINT PRIMARY KEY, maxx DOUBLE);

-- score: per-point max responsibility (XMAX)
INSERT INTO xmax SELECT rid, max(x) FROM x GROUP BY rid;

-- refresh ys: drop
DROP TABLE IF EXISTS ys;

-- refresh ys: create
CREATE TABLE ys (rid BIGINT PRIMARY KEY, score BIGINT);

-- score: argmax cluster (YS)
INSERT INTO ys SELECT x.rid, min(x.i) FROM x, xmax WHERE x.rid = xmax.rid AND x.x = xmax.maxx GROUP BY x.rid;

-- ==== loglikelihood ====
SELECT llh FROM w;

-- ==== create tables ====
-- DDL: drop y
DROP TABLE IF EXISTS y;

-- DDL: create y
CREATE TABLE y (rid BIGINT, v BIGINT, val DOUBLE, PRIMARY KEY (rid, v));

-- DDL: drop yd
DROP TABLE IF EXISTS yd;

-- DDL: create yd
CREATE TABLE yd (rid BIGINT, i BIGINT, d DOUBLE, PRIMARY KEY (rid, i));

-- DDL: drop yp
DROP TABLE IF EXISTS yp;

-- DDL: create yp
CREATE TABLE yp (rid BIGINT, i BIGINT, p DOUBLE, PRIMARY KEY (rid, i));

-- DDL: drop ysump
DROP TABLE IF EXISTS ysump;

-- DDL: create ysump
CREATE TABLE ysump (rid BIGINT PRIMARY KEY, sump DOUBLE, suminvd DOUBLE, llh DOUBLE);

-- DDL: drop yx
DROP TABLE IF EXISTS yx;

-- DDL: create yx
CREATE TABLE yx (rid BIGINT, i BIGINT, x DOUBLE, PRIMARY KEY (rid, i));

-- DDL: drop c
DROP TABLE IF EXISTS c;

-- DDL: create c
CREATE TABLE c (i BIGINT, v BIGINT, val DOUBLE, PRIMARY KEY (i, v));

-- DDL: drop r
DROP TABLE IF EXISTS r;

-- DDL: create r
CREATE TABLE r (v BIGINT PRIMARY KEY, val DOUBLE);

-- DDL: drop w
DROP TABLE IF EXISTS w;

-- DDL: create w
CREATE TABLE w (i BIGINT PRIMARY KEY, w DOUBLE);

-- DDL: drop gmm
DROP TABLE IF EXISTS gmm;

-- DDL: create gmm
CREATE TABLE gmm (n BIGINT, twopipdiv2 DOUBLE, detr DOUBLE, sqrtdetr DOUBLE);

-- DDL: drop ctmp
DROP TABLE IF EXISTS ctmp;

-- DDL: create ctmp
CREATE TABLE ctmp (i BIGINT, v BIGINT, cv DOUBLE, PRIMARY KEY (i, v));

-- DDL: drop wv
DROP TABLE IF EXISTS wv;

-- DDL: create wv
CREATE TABLE wv (i BIGINT PRIMARY KEY, sw DOUBLE);

-- DDL: drop yc
DROP TABLE IF EXISTS yc;

-- DDL: create yc
CREATE TABLE yc (rid BIGINT, i BIGINT, v BIGINT, sq DOUBLE, PRIMARY KEY (rid, i, v));

-- DDL: drop dett
DROP TABLE IF EXISTS dett;

-- DDL: create dett
CREATE TABLE dett (d DOUBLE);

-- DDL: drop xmax
DROP TABLE IF EXISTS xmax;

-- DDL: create xmax
CREATE TABLE xmax (rid BIGINT PRIMARY KEY, maxx DOUBLE);

-- DDL: drop ys
DROP TABLE IF EXISTS ys;

-- DDL: create ys
CREATE TABLE ys (rid BIGINT PRIMARY KEY, score BIGINT);

-- ==== post load (n = 1000) ====
-- seed GMM (n, (2π)^{p/2})
INSERT INTO gmm VALUES (1000, 15.749609945722419, 0, 0);

-- ==== E step ====
-- refresh dett: drop
DROP TABLE IF EXISTS dett;

-- refresh dett: create
CREATE TABLE dett (d DOUBLE);

-- E: |R| staged through exp(Σ ln r) (DETT)
INSERT INTO dett SELECT exp(sum(CASE WHEN val = 0 THEN 0 ELSE ln(val) END)) FROM r;

-- E: detR/sqrtdetR into GMM
UPDATE gmm FROM dett SET detr = dett.d, sqrtdetr = detr ** 0.5;

-- refresh yd: drop
DROP TABLE IF EXISTS yd;

-- refresh yd: create
CREATE TABLE yd (rid BIGINT, i BIGINT, d DOUBLE, PRIMARY KEY (rid, i));

-- E: Mahalanobis distances (YD)
INSERT INTO yd SELECT rid, c.i, sum((y.val - c.val) ** 2 / (CASE WHEN r.val = 0 THEN 1 ELSE r.val END)) AS d FROM y, c, r WHERE y.v = c.v AND c.v = r.v GROUP BY rid, c.i;

-- refresh yp: drop
DROP TABLE IF EXISTS yp;

-- refresh yp: create
CREATE TABLE yp (rid BIGINT, i BIGINT, p DOUBLE, PRIMARY KEY (rid, i));

-- E: normal probabilities (YP)
INSERT INTO yp SELECT rid, yd.i, w / (twopipdiv2 * sqrtdetr) * exp(-0.5 * d) AS p FROM yd, w, gmm WHERE yd.i = w.i;

-- refresh ysump: drop
DROP TABLE IF EXISTS ysump;

-- refresh ysump: create
CREATE TABLE ysump (rid BIGINT PRIMARY KEY, sump DOUBLE, suminvd DOUBLE, llh DOUBLE);

-- E: per-point sums (YSUMP)
INSERT INTO ysump SELECT yd.rid, sum(yp.p), sum(1 / (yd.d + 1.0E-100)), CASE WHEN sum(yp.p) > 0 THEN ln(sum(yp.p)) END FROM yd, yp WHERE yd.rid = yp.rid AND yd.i = yp.i GROUP BY yd.rid;

-- refresh yx: drop
DROP TABLE IF EXISTS yx;

-- refresh yx: create
CREATE TABLE yx (rid BIGINT, i BIGINT, x DOUBLE, PRIMARY KEY (rid, i));

-- E: responsibilities (YX)
INSERT INTO yx SELECT yp.rid, yp.i, CASE WHEN ysump.sump > 0 THEN yp.p / ysump.sump ELSE (1 / (yd.d + 1.0E-100)) / ysump.suminvd END FROM yp, ysump, yd WHERE yp.rid = ysump.rid AND yp.rid = yd.rid AND yp.i = yd.i;

-- ==== M step ====
-- refresh ctmp: drop
DROP TABLE IF EXISTS ctmp;

-- refresh ctmp: create
CREATE TABLE ctmp (i BIGINT, v BIGINT, cv DOUBLE, PRIMARY KEY (i, v));

-- M: C' = Σ y·x (CTMP, kpn-row join)
INSERT INTO ctmp SELECT yx.i, y.v, sum(y.val * yx.x) FROM y, yx WHERE y.rid = yx.rid GROUP BY yx.i, y.v;

-- refresh wv: drop
DROP TABLE IF EXISTS wv;

-- refresh wv: create
CREATE TABLE wv (i BIGINT PRIMARY KEY, sw DOUBLE);

-- M: W' = Σ x (WV)
INSERT INTO wv SELECT i, sum(x) FROM yx GROUP BY i;

-- M: clear C
DELETE FROM c;

-- M: C = C'/W'
INSERT INTO c SELECT ctmp.i, ctmp.v, ctmp.cv / wv.sw FROM ctmp, wv WHERE ctmp.i = wv.i;

-- M: clear W
DELETE FROM w;

-- M: W = Σ x / n
INSERT INTO w SELECT i, sum(x / gmm.n) FROM yx, gmm GROUP BY i;

-- refresh yc: drop
DROP TABLE IF EXISTS yc;

-- refresh yc: create
CREATE TABLE yc (rid BIGINT, i BIGINT, v BIGINT, sq DOUBLE, PRIMARY KEY (rid, i, v));

-- M: squared differences (YC, kpn rows materialized)
INSERT INTO yc SELECT y.rid, c.i, y.v, (y.val - c.val) ** 2 FROM y, c WHERE y.v = c.v;

-- M: clear R
DELETE FROM r;

-- M: R = Σ x·(y−C)² / n
INSERT INTO r SELECT yc.v, sum(yc.sq * yx.x / gmm.n) FROM yc, yx, gmm WHERE yc.rid = yx.rid AND yc.i = yx.i GROUP BY yc.v;

-- ==== score ====
-- refresh xmax: drop
DROP TABLE IF EXISTS xmax;

-- refresh xmax: create
CREATE TABLE xmax (rid BIGINT PRIMARY KEY, maxx DOUBLE);

-- score: per-point max responsibility (XMAX)
INSERT INTO xmax SELECT rid, max(x) FROM yx GROUP BY rid;

-- refresh ys: drop
DROP TABLE IF EXISTS ys;

-- refresh ys: create
CREATE TABLE ys (rid BIGINT PRIMARY KEY, score BIGINT);

-- score: argmax cluster (YS)
INSERT INTO ys SELECT yx.rid, min(yx.i) FROM yx, xmax WHERE yx.rid = xmax.rid AND yx.x = xmax.maxx GROUP BY yx.rid;

-- ==== loglikelihood ====
SELECT sum(llh) FROM ysump;
